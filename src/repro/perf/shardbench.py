"""Sharded-vs-serial wall-clock measurement on a full-size chip.

``python -m repro.perf.shardbench`` runs the same fixed-seed workload
through the serial engine, the in-process windowed executor (shards=1)
and the multiprocess executor (shards >= 2), times each, cross-checks
the digests, and writes a ``BENCH_shard_<timestamp>.json`` artifact.

The artifact is deliberately *honest* about parallel speedup: it records
``os.cpu_count()`` and the measured hub event fraction next to the wall
times, because both bound what sharding can ever buy:

* with one CPU (containers, CI runners) every extra worker is pure
  overhead — the sharded runs will be SLOWER than serial, and the
  artifact says so rather than hiding it;
* every worker redundantly simulates the hub domain (main ring, MACTs,
  memory controllers — see docs/sharding.md), so with hub fraction
  ``h`` the Amdahl-style ceiling at ``W`` workers is ``1 / (h + (1-h)/W)``
  even on ideal hardware.

Schema (``"schema": "repro.perf.shard/1"``)::

    {
      "schema": "repro.perf.shard/1",
      "created": "...Z",
      "code_digest": "...",
      "host": {"python": ..., "platform": ..., "machine": ..., "cpu_count": 1},
      "geometry": {"sub_rings": 16, "cores_per_sub_ring": 16,
                   "threads_per_core": 4, "instrs_per_thread": 150},
      "workload": "wordcount", "seed": 0, "quantum": 2.0,
      "hub_event_fraction": 0.56,
      "amdahl_ceilings": {"2": 1.28, "4": 1.49},
      "runs": [{"mode": "serial", "shards": 0, "wall_s": ..., "digest": ...},
               {"mode": "in-process", "shards": 1, ...},
               {"mode": "multiprocess", "shards": 2, ...}, ...],
      "speedups": {"1": 0.93, "2": 0.47, "4": 0.25},
      "digest_check": "ok"
    }
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time
from pathlib import Path
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigError
from .bench import _host_info

__all__ = ["run_shardbench", "main"]

SHARD_SCHEMA = "repro.perf.shard/1"


def _digest(chip: Any, result: Any) -> str:
    from ..exp.cache import canonical_json

    payload = {"result": result.to_dict(), "stats": chip.registry.dump()}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


def _one_run(shards: int, *, sub_rings: int, cores: int, threads: int,
             instrs: int, seed: int, workload: str,
             quantum: Optional[float]) -> Dict[str, Any]:
    """Build, load and run one chip; returns wall time + digest (+ hub%)."""
    from ..chip.smarco import SmarCoChip
    from ..config import smarco_scaled
    from ..workloads.base import get_profile

    chip = SmarCoChip(smarco_scaled(sub_rings, cores), seed=seed,
                      shards=shards)
    chip.load_profile(get_profile(workload), threads_per_core=threads,
                      instrs_per_thread=instrs)
    t0 = time.perf_counter()
    if shards:
        result = chip.run_sharded(quantum=quantum)
    else:
        result = chip.run()
    wall = time.perf_counter() - t0
    record: Dict[str, Any] = {
        "mode": ("serial" if shards == 0 else
                 "in-process" if shards == 1 else "multiprocess"),
        "shards": shards,
        "wall_s": wall,
        "digest": _digest(chip, result),
        "instructions": result.instructions,
    }
    if shards == 1:
        # the in-process run exposes per-domain event counts, which is
        # where the hub replication ceiling comes from
        events = {dom.name: dom.sim.events_executed
                  for dom in chip.shard_plan.domains}
        total = sum(events.values())
        record["events_by_domain"] = events
        record["hub_event_fraction"] = (
            events.get("hub", 0) / total if total else 0.0)
    return record


def run_shardbench(*, sub_rings: int = 16, cores: int = 16,
                   threads: int = 4, instrs: int = 150, seed: int = 0,
                   workload: str = "wordcount",
                   quantum: Optional[float] = None,
                   shard_counts: Sequence[int] = (1, 2, 4)) -> Dict[str, Any]:
    """Measure serial vs sharded wall clock; returns the artifact dict."""
    from ..exp.cache import code_version

    if 0 in shard_counts:
        raise ConfigError("shard_counts lists sharded runs; the serial "
                          "reference run is always included")
    runs: List[Dict[str, Any]] = []
    common = dict(sub_rings=sub_rings, cores=cores, threads=threads,
                  instrs=instrs, seed=seed, workload=workload,
                  quantum=quantum)
    runs.append(_one_run(0, **common))
    for shards in shard_counts:
        runs.append(_one_run(shards, **common))

    serial = runs[0]
    speedups = {str(r["shards"]): serial["wall_s"] / r["wall_s"]
                for r in runs[1:]}
    # digest contract: shards=1 must equal serial bit-for-bit; the
    # multiprocess runs must all agree with each other (canonical order)
    problems = []
    mp_digests = {r["digest"] for r in runs if r["shards"] >= 2}
    for r in runs[1:]:
        if r["shards"] == 1 and r["digest"] != serial["digest"]:
            problems.append("in-process digest diverged from serial")
    if len(mp_digests) > 1:
        problems.append("multiprocess digests disagree across shard counts")

    hub_fraction = next((r["hub_event_fraction"] for r in runs
                         if "hub_event_fraction" in r), None)
    ceilings = {}
    if hub_fraction is not None:
        ceilings = {str(r["shards"]):
                    1.0 / (hub_fraction + (1.0 - hub_fraction) / r["shards"])
                    for r in runs if r["shards"] >= 2}

    host = _host_info()
    host["cpu_count"] = os.cpu_count() or 1
    return {
        "schema": SHARD_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "code_digest": code_version(),
        "host": host,
        "geometry": {"sub_rings": sub_rings, "cores_per_sub_ring": cores,
                     "threads_per_core": threads,
                     "instrs_per_thread": instrs},
        "workload": workload,
        "seed": seed,
        "quantum": quantum,
        "hub_event_fraction": hub_fraction,
        "amdahl_ceilings": ceilings,
        "runs": runs,
        "speedups": speedups,
        "digest_check": "ok" if not problems else "; ".join(problems),
    }


def render(artifact: Dict[str, Any]) -> str:
    lines = [
        f"shardbench  {artifact['geometry']['sub_rings']}x"
        f"{artifact['geometry']['cores_per_sub_ring']} chip, "
        f"workload={artifact['workload']}, "
        f"cpus={artifact['host']['cpu_count']}",
        f"{'mode':<14} {'shards':>6} {'wall s':>9} {'speedup':>8}  digest",
    ]
    serial_wall = artifact["runs"][0]["wall_s"]
    for r in artifact["runs"]:
        speedup = serial_wall / r["wall_s"] if r["shards"] else 1.0
        lines.append(f"{r['mode']:<14} {r['shards']:>6} {r['wall_s']:>9.2f} "
                     f"{speedup:>7.2f}x  {r['digest']}")
    if artifact["hub_event_fraction"] is not None:
        lines.append(
            f"hub event fraction {artifact['hub_event_fraction']:.1%}; "
            "replicated-hub ceilings: " + ", ".join(
                f"{w} workers -> {c:.2f}x"
                for w, c in sorted(artifact["amdahl_ceilings"].items())))
    lines.append(f"digest check: {artifact['digest_check']}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.shardbench",
        description="measure sharded-vs-serial chip wall clock and write "
                    "a BENCH_shard artifact")
    parser.add_argument("--sub-rings", type=int, default=16)
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per sub-ring")
    parser.add_argument("--threads-per-core", type=int, default=4)
    parser.add_argument("--instrs", type=int, default=150)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload", default="wordcount")
    parser.add_argument("--quantum", type=float, default=None)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                        help="sharded configurations to time (serial "
                             "reference always runs)")
    parser.add_argument("--out", type=Path, default=Path("results/perf"))
    args = parser.parse_args(argv)

    artifact = run_shardbench(
        sub_rings=args.sub_rings, cores=args.cores,
        threads=args.threads_per_core, instrs=args.instrs, seed=args.seed,
        workload=args.workload, quantum=args.quantum,
        shard_counts=tuple(args.shards))
    print(render(artifact))
    args.out.mkdir(parents=True, exist_ok=True)
    stamp = artifact["created"].replace("-", "").replace(":", "")
    path = args.out / f"BENCH_shard_{stamp}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"\nshard BENCH artifact written to {path}")
    return 0 if artifact["digest_check"] == "ok" else 1


if __name__ == "__main__":
    raise SystemExit(main())
