"""BENCH records: the simulator's own performance trajectory.

A *bench record* is the JSON snapshot one ``repro-smarco perf`` invocation
writes — wall time, events/sec and work-units/sec for every kernel in the
micro-suite, plus enough provenance (code digest, python version, platform,
peak RSS) to interpret the numbers later.  Files are named
``BENCH_<UTC timestamp>.json`` so a results directory sorts into a
trajectory; :func:`compare_benches` diffs two records and flags
regressions, which is what the ``perf --compare`` CI gate runs.

Schema (``"schema": "repro.perf/1"``)::

    {
      "schema": "repro.perf/1",
      "created": "2026-08-05T12:00:00Z",      # UTC, second resolution
      "code_digest": "0a1b...",               # repro.exp.cache.code_version()
      "size": "tiny" | "small" | "default",
      "repeat": 3,                            # best-of-N timing discipline
      "host": {"python": "3.11.7", "platform": "Linux-...", "machine": "x86_64"},
      "peak_rss_kb": 123456,                  # ru_maxrss after the suite
      "kernels": {
        "<kernel>": {
          "wall_s": 0.42,                     # best-of-N wall time
          "events": 100000,                   # simulator events executed
          "events_per_sec": 238095.2,
          "units": 100000,                    # kernel-specific work units
          "unit": "events",                   # what `units` counts
          "units_per_sec": 238095.2,
          ...                                 # kernel-specific extras
        }, ...
      }
    }

Every field the comparator reads is covered by
``tests/perf/test_bench_schema.py``'s round-trip test.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ConfigError

__all__ = [
    "SCHEMA",
    "BenchRecord",
    "KernelComparison",
    "BenchComparison",
    "compare_benches",
    "load_bench",
    "peak_rss_kb",
]

SCHEMA = "repro.perf/1"


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


def _host_info() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


@dataclass
class BenchRecord:
    """One ``perf`` invocation's results, serialisable to a BENCH file."""

    code_digest: str
    size: str
    repeat: int
    kernels: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    created: str = ""
    host: Dict[str, str] = field(default_factory=_host_info)
    peak_rss_kb: int = 0

    def __post_init__(self) -> None:
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "created": self.created,
            "code_digest": self.code_digest,
            "size": self.size,
            "repeat": self.repeat,
            "host": dict(self.host),
            "peak_rss_kb": self.peak_rss_kb,
            "kernels": {name: dict(data)
                        for name, data in self.kernels.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ConfigError(
                f"not a BENCH record (schema {schema!r}, expected {SCHEMA!r})")
        return cls(
            code_digest=data["code_digest"],
            size=data["size"],
            repeat=data["repeat"],
            kernels={name: dict(k) for name, k in data["kernels"].items()},
            created=data["created"],
            host=dict(data.get("host", {})),
            peak_rss_kb=int(data.get("peak_rss_kb", 0)),
        )

    def write(self, out_dir: Path) -> Path:
        """Write ``BENCH_<timestamp>.json`` under ``out_dir``."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        stamp = self.created.replace("-", "").replace(":", "")
        path = out_dir / f"BENCH_{stamp}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path

    # -- presentation -------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"perf suite [{self.size}] x{self.repeat}  "
            f"code={self.code_digest}  rss={self.peak_rss_kb} KiB",
            f"{'kernel':<22} {'wall s':>9} {'events/s':>12} "
            f"{'units/s':>12} unit",
        ]
        for name, k in self.kernels.items():
            lines.append(
                f"{name:<22} {k['wall_s']:>9.4f} {k['events_per_sec']:>12,.0f}"
                f" {k['units_per_sec']:>12,.0f} {k['unit']}")
        return "\n".join(lines)


def load_bench(path: Path) -> BenchRecord:
    """Load and validate one BENCH file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read BENCH file {path}: {exc}") from exc
    return BenchRecord.from_dict(data)


# -- comparison (the CI regression gate) ------------------------------------


@dataclass
class KernelComparison:
    """units/sec movement of one kernel between two BENCH records."""

    name: str
    baseline_ups: float
    current_ups: float
    #: >1 is faster than baseline, <1 slower
    ratio: float
    regressed: bool

    @property
    def change_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0


@dataclass
class BenchComparison:
    """The ``perf --compare`` verdict over two BENCH records."""

    baseline: BenchRecord
    current: BenchRecord
    threshold_pct: float
    kernels: List[KernelComparison] = field(default_factory=list)
    #: kernels present in only one of the two records
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[KernelComparison]:
        return [k for k in self.kernels if k.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"perf compare  baseline={self.baseline.created} "
            f"({self.baseline.code_digest})  current={self.current.created} "
            f"({self.current.code_digest})  threshold={self.threshold_pct:g}%",
            f"{'kernel':<22} {'baseline u/s':>14} {'current u/s':>14} "
            f"{'change':>9}",
        ]
        for k in self.kernels:
            flag = "  REGRESSED" if k.regressed else ""
            lines.append(
                f"{k.name:<22} {k.baseline_ups:>14,.0f} "
                f"{k.current_ups:>14,.0f} {k.change_pct:>+8.1f}%{flag}")
        for name in self.missing:
            lines.append(f"{name:<22} (present in only one record, skipped)")
        lines.append("verdict: " + ("ok" if self.ok else
                                    f"{len(self.regressions)} regression(s)"))
        return "\n".join(lines)


def compare_benches(baseline: BenchRecord, current: BenchRecord,
                    threshold_pct: float = 30.0) -> BenchComparison:
    """Diff two BENCH records kernel-by-kernel.

    A kernel *regresses* when its units/sec drops more than
    ``threshold_pct`` percent below the baseline.  Kernels present in only
    one record are reported but never fail the comparison (the suite is
    allowed to grow).
    """
    if threshold_pct <= 0:
        raise ConfigError(
            f"threshold must be positive percent, got {threshold_pct}")
    comparison = BenchComparison(baseline=baseline, current=current,
                                 threshold_pct=threshold_pct)
    names = set(baseline.kernels) | set(current.kernels)
    for name in sorted(names):
        if name not in baseline.kernels or name not in current.kernels:
            comparison.missing.append(name)
            continue
        base_ups = float(baseline.kernels[name]["units_per_sec"])
        cur_ups = float(current.kernels[name]["units_per_sec"])
        ratio = cur_ups / base_ups if base_ups else float("inf")
        regressed = ratio < 1.0 - threshold_pct / 100.0
        comparison.kernels.append(KernelComparison(
            name=name, baseline_ups=base_ups, current_ups=cur_ups,
            ratio=ratio, regressed=regressed))
    return comparison
