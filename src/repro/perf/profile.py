"""cProfile integration: find where a kernel actually spends its time.

This is the mode that drove the hot-path optimization pass: run one suite
kernel under :mod:`cProfile`, aggregate by function, and print the top
offenders by cumulative and internal time.  The output is plain text so
it can be pasted into ``docs/performance.md`` optimization notes.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Dict, Tuple

from ..errors import ConfigError
from .kernels import KERNELS, SIZES

__all__ = ["profile_kernel"]


def profile_kernel(name: str, size: str = "small",
                   top: int = 20) -> Tuple[Dict[str, Any], str]:
    """Run ``name`` once under cProfile.

    Returns ``(kernel_result, report_text)`` where the report holds the
    ``top`` functions sorted by cumulative time and again by internal
    (self) time.
    """
    if name not in KERNELS:
        raise ConfigError(f"unknown perf kernel {name!r} "
                          f"(have: {', '.join(KERNELS)})")
    if size not in SIZES:
        raise ConfigError(f"unknown suite size {size!r} "
                          f"(have: {', '.join(SIZES)})")
    params = dict(SIZES[size][name])
    fn = KERNELS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(params)
    finally:
        profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs()
    buf.write(f"== {name} [{size}] by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buf.write(f"\n== {name} [{size}] by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return result, buf.getvalue()
