"""The fixed microbenchmark suite the ``perf`` subcommand runs.

Each kernel isolates one simulator hot path:

* ``engine_churn``     — raw event-queue throughput: callback chains that
  reschedule themselves with a 0/1/2-cycle delay mix (the kernel the
  ISSUE's >=1.5x events/sec target is measured on);
* ``process_signal``   — generator processes ping-ponging over
  :class:`~repro.sim.engine.EventSignal` (spawn/resume overhead);
* ``link_greedy``      — :class:`~repro.noc.link.SlicedLink` greedy slice
  allocation under a mixed-size reservation stream;
* ``ring_saturation``  — a 16-stop ring saturated with seeded random
  traffic (router + segment + borrow paths);
* ``hierring_saturation`` — cross-ring traffic over the full
  :class:`~repro.noc.hierring.HierarchicalRingNoC` (bridge chains);
* ``mact_batching``    — a seeded request stream through the MACT
  (bitmap merge, deadline timers, capacity evictions);
* ``sched_assign``     — the scheduler dispatch hot loop (submit /
  assign / release-context) across every registered policy;
* ``chip_fig17``       — the Fig 17 single-TCG rig through
  :func:`repro.chip.run.execute` (also yields the golden result digest);
* ``chip_fig23``       — a scaled-down Fig 23 full-chip run (golden
  digest of the whole chip: cores, MACT, NoC, DRAM);
* ``ckpt_roundtrip``   — capture -> serialise -> restore of a paused
  chip session through the versioned checkpoint container (the warm-
  start materialization hot path; digest proves the restored session
  still finishes bit-identically);
* ``shard_sync``       — the chip_fig23 workload through the sharded
  executor (domain partition + boundary channels + windowed sync) at
  quantum 1, the worst-case window count; its digest must equal
  ``chip_fig23``'s, which is the serial-equivalence guarantee of
  docs/sharding.md measured as a perf kernel;
* ``traffic_arrivals`` — the open-loop cluster tier on a synthetic chip
  calibration: bursty arrivals through the subring-aware balancer into
  queueing chip servers, every latency folded through the streaming
  quantile sketch (``repro.traffic`` + ``repro.analysis.quantiles`` hot
  paths, no chip-simulation time);
* ``energy_accounting`` — seeded synthetic scoped stats folded through
  the activity-proportional energy model (stat classification, per-path
  attribution, DVFS/node scaling, power gating) across the full
  operating-point grid — the post-run accounting cost every smarco/
  compare run now pays, measured in isolation.

Kernels are deterministic: fixed seeds, no wall-clock feedback into the
simulation — so their *results* (events, units, digests) are identical
run-to-run and the only thing that moves between BENCH records is time.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Any, Callable, Dict, List

from ..errors import ConfigError

__all__ = [
    "KERNELS",
    "SIZES",
    "kernel_names",
    "run_kernel",
    "run_suite",
    "result_digest",
]

#: per-kernel workload knobs for each suite size; ``tiny`` is the CI smoke
#: setting (sub-second suite), ``default`` the one the perf trajectory and
#: optimization work use.
SIZES: Dict[str, Dict[str, Dict[str, int]]] = {
    "tiny": {
        "engine_churn": {"events": 20_000, "chains": 8},
        "process_signal": {"rounds": 2_000, "pairs": 4},
        "link_greedy": {"reservations": 10_000},
        "ring_saturation": {"packets": 1_000},
        "hierring_saturation": {"packets": 400},
        "mact_batching": {"requests": 5_000},
        "sched_assign": {"tasks": 400},
        "chip_fig17": {"instrs": 60},
        "chip_fig23": {"instrs": 40},
        "ckpt_roundtrip": {"cycle": 300, "rounds": 2},
        "shard_sync": {"instrs": 40, "quantum": 1},
        "traffic_arrivals": {"requests": 2_000, "chips": 2},
        "energy_accounting": {"rounds": 20},
    },
    "small": {
        "engine_churn": {"events": 200_000, "chains": 16},
        "process_signal": {"rounds": 20_000, "pairs": 8},
        "link_greedy": {"reservations": 100_000},
        "ring_saturation": {"packets": 8_000},
        "hierring_saturation": {"packets": 3_000},
        "mact_batching": {"requests": 50_000},
        "sched_assign": {"tasks": 3_000},
        "chip_fig17": {"instrs": 300},
        "chip_fig23": {"instrs": 120},
        "ckpt_roundtrip": {"cycle": 800, "rounds": 5},
        "shard_sync": {"instrs": 120, "quantum": 1},
        "traffic_arrivals": {"requests": 20_000, "chips": 4},
        "energy_accounting": {"rounds": 200},
    },
    "default": {
        "engine_churn": {"events": 1_000_000, "chains": 32},
        "process_signal": {"rounds": 100_000, "pairs": 16},
        "link_greedy": {"reservations": 500_000},
        "ring_saturation": {"packets": 30_000},
        "hierring_saturation": {"packets": 10_000},
        "mact_batching": {"requests": 200_000},
        "sched_assign": {"tasks": 12_000},
        "chip_fig17": {"instrs": 600},
        "chip_fig23": {"instrs": 250},
        "ckpt_roundtrip": {"cycle": 1500, "rounds": 10},
        "shard_sync": {"instrs": 250, "quantum": 1},
        "traffic_arrivals": {"requests": 150_000, "chips": 8},
        "energy_accounting": {"rounds": 1_000},
    },
}


def result_digest(outcome: Any) -> str:
    """Canonical digest of a run outcome (result dict + stats dump).

    Two simulator builds produce the same digest iff their fixed-seed
    runs are bit-identical — the property every hot-path optimization in
    this package must preserve (``tests/perf/test_golden_digest.py``).
    """
    from ..exp.cache import canonical_json

    payload = {"result": outcome.result.to_dict(), "stats": outcome.stats}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


# -- kernels ----------------------------------------------------------------


def _k_engine_churn(params: Dict[str, int]) -> Dict[str, Any]:
    """Callback chains rescheduling themselves with a 0/1/2 delay mix."""
    from ..sim.engine import Simulator

    sim = Simulator()
    target = params["events"]
    chains = params["chains"]
    # 50% zero-delay, matching the measured schedule mix of a real chip
    # run (signal fires / process wakeups are zero-delay; timed hops are
    # not) — see docs/performance.md
    delays = (0, 1, 0, 2, 0, 3)
    schedule = sim.schedule
    fired = [0]

    def hop() -> None:
        n = fired[0] + 1
        fired[0] = n
        if n + chains <= target:
            schedule(delays[n % 6], hop)

    for c in range(chains):
        sim.schedule(c % 3, hop)
    sim.run()
    return {"events": sim.events_executed,
            "units": sim.events_executed, "unit": "events"}


def _k_process_signal(params: Dict[str, int]) -> Dict[str, Any]:
    """Pairs of processes ping-ponging payloads over EventSignals."""
    from ..sim.engine import Simulator

    sim = Simulator()
    rounds = params["rounds"]
    pairs = params["pairs"]
    done = [0]

    def player(my_sig, other_sig):
        count = 0
        while count < rounds:
            value = yield my_sig
            count += 1
            yield 1
            other_sig.fire(value + 1)
        done[0] += 1

    for p in range(pairs):
        a = sim.signal(f"a{p}")
        b = sim.signal(f"b{p}")
        sim.spawn(player(a, b), f"ping{p}")
        sim.spawn(player(b, a), f"pong{p}")
        # kick off after both players are parked on their signals
        sim.schedule(0, a.fire, 0)
    sim.run()
    if done[0] != 2 * pairs:
        raise ConfigError("process_signal kernel did not converge")
    return {"events": sim.events_executed,
            "units": rounds * pairs * 2, "unit": "handoffs"}


def _k_link_greedy(params: Dict[str, int]) -> Dict[str, Any]:
    """Mixed-size reservation stream through one greedy SlicedLink."""
    from ..noc.link import SlicedLink

    link = SlicedLink("bench", width_bytes=64, slice_bytes=2, policy="greedy")
    n = params["reservations"]
    rng = random.Random(1234)
    sizes = [rng.choice((1, 2, 4, 8, 8, 16, 32, 64)) for _ in range(n)]
    now = 0.0
    for i, size in enumerate(sizes):
        start, finish = link.reserve(size, now)
        if i % 4 == 0:
            now = start  # advance with the congestion wave
    flits = int(link.bytes_moved.value // link.slice_bytes)
    return {"events": 0, "units": n, "unit": "reservations",
            "flits": flits}


def _k_ring_saturation(params: Dict[str, int]) -> Dict[str, Any]:
    """Seeded random traffic over a 16-stop standalone ring."""
    from ..noc.packet import NodeId, Packet, PacketKind
    from ..noc.ring import Ring
    from ..sim.engine import Simulator

    sim = Simulator()
    stops = 16
    ring = Ring(sim, "bench", stops, datapath_bytes=8, fixed_per_dir=1,
                bidi_datapaths=2, slice_bytes=2)
    rng = random.Random(99)
    n = params["packets"]
    delivered = [0]

    def on_delivered(_pkt, _now):
        delivered[0] += 1

    def inject(src: int, dst: int, size: int) -> None:
        pkt = Packet(src=NodeId("core", 0, src), dst=NodeId("core", 0, dst),
                     size_bytes=size, kind=PacketKind.MEM_READ,
                     on_delivered=on_delivered)
        ring.send(pkt, src, dst)

    for i in range(n):
        src = rng.randrange(stops)
        dst = (src + rng.randrange(1, stops)) % stops
        size = rng.choice((4, 8, 16, 32, 64))
        sim.schedule(i % 257, inject, src, dst, size)
    sim.run()
    if delivered[0] != n:
        raise ConfigError(
            f"ring kernel lost packets: {delivered[0]}/{n} delivered")
    slice_bytes = ring.segments[0].cw.slice_bytes
    flits = int(ring.total_bytes() // slice_bytes)
    return {"events": sim.events_executed, "units": flits, "unit": "flits",
            "packets": n}


def _k_hierring_saturation(params: Dict[str, int]) -> Dict[str, Any]:
    """Cross-ring core-to-core and core-to-MC traffic over the full NoC."""
    from ..noc.hierring import HierarchicalRingNoC
    from ..noc.packet import NodeId, Packet, PacketKind
    from ..sim.engine import Simulator

    sim = Simulator()
    sub_rings, cores = 4, 4
    noc = HierarchicalRingNoC(sim, sub_rings, cores, mem_channels=2)
    rng = random.Random(7)
    n = params["packets"]

    def inject(src: "NodeId", dst: "NodeId", size: int) -> None:
        noc.send(Packet(src=src, dst=dst, size_bytes=size,
                        kind=PacketKind.MEM_READ))

    for i in range(n):
        src = NodeId("core", rng.randrange(sub_rings), rng.randrange(cores))
        if rng.random() < 0.5:
            dst = NodeId("mc", index=rng.randrange(2))
        else:
            dst = NodeId("core", rng.randrange(sub_rings),
                         rng.randrange(cores))
            if dst == src:
                dst = NodeId("core", (src.ring + 1) % sub_rings, src.index)
        sim.schedule(i % 101, inject, src, dst, rng.choice((8, 16, 32, 64)))
    sim.run()
    if noc.delivered.value != n:
        raise ConfigError(
            f"hierring kernel lost packets: {noc.delivered.value}/{n}")
    slice_bytes = noc.main_ring.segments[0].cw.slice_bytes
    flits = int(noc.total_bytes() // slice_bytes)
    return {"events": sim.events_executed, "units": flits, "unit": "flits",
            "packets": n}


def _k_mact_batching(params: Dict[str, int]) -> Dict[str, Any]:
    """Seeded small-request stream through the collection table."""
    from ..mem.mact import MACT
    from ..mem.request import MemRequest
    from ..sim.engine import Simulator

    sim = Simulator()
    batches: List[Any] = []
    mact = MACT(sim, send=batches.append)
    rng = random.Random(4242)
    n = params["requests"]
    completed = [0]

    def on_complete(_req, _now):
        completed[0] += 1

    def submit(addr: int, size: int, is_write: bool) -> None:
        req = MemRequest(addr=addr, size=size, is_write=is_write,
                         on_complete=on_complete)
        mact.submit(req)
        req.complete(sim.now)   # memory side is out of scope here

    window = 1 << 14
    for i in range(n):
        addr = rng.randrange(window)
        size = rng.choice((1, 2, 4, 8))
        sim.schedule(i // 8, submit, addr, size, rng.random() < 0.3)
    sim.run()
    mact.flush_all()
    if completed[0] < n:
        raise ConfigError(f"mact kernel lost requests: {completed[0]}/{n}")
    return {"events": sim.events_executed, "units": n, "unit": "requests",
            "batches": len(batches)}


def _k_sched_assign(params: Dict[str, int]) -> Dict[str, Any]:
    """The scheduler dispatch hot loop across every registered policy.

    Seeded task windows stream through submit -> assign -> release for
    each policy in registry order (windowed so the laxity chain tables
    stay under their hardware capacity).  An order-sensitive checksum of
    the assignment sequence keeps the kernel's determinism contract: any
    ordering change in any policy shows up as a result mismatch.
    """
    from ..sched.policy import create_policy, list_policies
    from ..sched.task import Task, TaskPriority
    from ..sim.rng import RngTree

    n = params["tasks"]               # per policy
    contexts, window = 32, 128
    assignments = 0
    checksum = 0
    for name in list_policies():
        sched = create_policy(name)
        rng = RngTree(2025).stream(f"bench.{name}")
        for cid in range(contexts):
            sched.release_context(cid)
        submitted = 0
        while submitted < n or sched.pending:
            while submitted < n and sched.pending < window:
                pri = (TaskPriority.HIGH if rng.random() < 0.25
                       else TaskPriority.NORMAL)
                sched.submit(Task(
                    work_cycles=rng.uniform(1_000, 90_000),
                    deadline=1_000_000, priority=pri,
                    payload={"criticality": rng.random()}))
                submitted += 1
            pair = sched.assign()
            if pair is None:
                raise ConfigError(
                    f"sched_assign: {name} stalled with "
                    f"{sched.pending} pending tasks")
            context, task = pair
            assignments += 1
            checksum = (checksum * 31 + int(task.work_cycles)) % (1 << 61)
            sched.release_context(context)
    return {"events": 0, "units": assignments, "unit": "assigns",
            "checksum": checksum}


def _k_chip_fig17(params: Dict[str, int]) -> Dict[str, Any]:
    """The Fig 17 rig: one TCG core, fixed-latency memory, fixed seed."""
    from ..chip.run import execute
    from ..exp import RunRequest

    request = RunRequest(kind="tcg", workload="kmp", seed=0,
                         instrs_per_thread=params["instrs"])
    outcome = execute(request)
    return {"events": 0, "units": outcome.result.instructions,
            "unit": "instrs", "digest": result_digest(outcome)}


def _k_chip_fig23(params: Dict[str, int]) -> Dict[str, Any]:
    """A scaled-down Fig 23 full-chip run (2 sub-rings x 4 cores)."""
    from ..chip.run import execute
    from ..config import smarco_scaled
    from ..exp import RunRequest

    request = RunRequest(kind="smarco", workload="wordcount", seed=0,
                         smarco_config=smarco_scaled(2, 4),
                         threads_per_core=4,
                         instrs_per_thread=params["instrs"])
    outcome = execute(request)
    return {"events": 0, "units": outcome.result.instructions,
            "unit": "instrs", "digest": result_digest(outcome)}


def _k_ckpt_roundtrip(params: Dict[str, int]) -> Dict[str, Any]:
    """Full checkpoint round trips of a paused scaled-down chip.

    Each round is the warm-start materialization path end to end:
    capture the session, serialise the container to JSON, parse it back
    and restore into a freshly rebuilt system.  The final restored
    session is finished and digested so any restore corruption fails
    the cross-repeat determinism check instead of going unnoticed.
    """
    import json

    from ..chip.session import RunSession
    from ..config import smarco_scaled
    from ..exp import RunRequest
    from ..mem.request import set_request_id_state
    from ..noc.packet import set_packet_id_state
    from ..sched.task import set_task_id_state
    from ..sim.checkpoint import Checkpoint

    # pin the module id counters so the serialised byte count (part of
    # the cross-repeat determinism check) doesn't drift with whatever
    # ran earlier in this process
    set_request_id_state(0)
    set_packet_id_state(0)
    set_task_id_state(0)
    request = RunRequest(kind="smarco", workload="kmp", seed=5,
                         smarco_config=smarco_scaled(2, 4),
                         threads_per_core=4, instrs_per_thread=120)
    session = RunSession(request)
    session.run_to(params["cycle"])
    rounds = params["rounds"]
    size = 0
    restored = session
    for _ in range(rounds):
        payload = json.dumps(session.checkpoint().to_dict())
        size = len(payload)
        restored = RunSession.restore(
            Checkpoint.from_dict(json.loads(payload)))
    return {"events": 0, "units": rounds, "unit": "roundtrips",
            "bytes": size, "digest": result_digest(restored.finish())}


def _k_shard_sync(params: Dict[str, int]) -> Dict[str, Any]:
    """The chip_fig23 workload through the in-process sharded executor.

    Quantum 1 forces the maximum number of sync windows, so this kernel
    times the sharding *overhead* (window scheduling, boundary channel
    drains, tap bookkeeping) on top of the same simulation work
    chip_fig23 does serially.  The digest must match chip_fig23's — the
    serial-equivalence guarantee, pinned in
    tests/perf/test_golden_digest.py.
    """
    from ..chip.run import execute
    from ..config import smarco_scaled
    from ..exp import RunRequest

    request = RunRequest(kind="smarco", workload="wordcount", seed=0,
                         smarco_config=smarco_scaled(2, 4),
                         threads_per_core=4,
                         instrs_per_thread=params["instrs"],
                         shards=1, shard_quantum=float(params["quantum"]))
    outcome = execute(request)
    return {"events": 0, "units": outcome.result.instructions,
            "unit": "instrs", "digest": result_digest(outcome)}


def _k_energy_accounting(params: Dict[str, int]) -> Dict[str, Any]:
    """Synthetic scoped stats through the activity energy model.

    One seeded flat-stats dump shaped like a real 4x4 chip run (every
    billable counter family populated, one sub-ring left idle so the
    gating path engages) is accounted ``rounds`` times, cycling through
    every DVFS point x technology node x gating combination.  The digest
    pins the final accounting dict plus a joule checksum over all
    rounds, so any change to classification, calibration or scaling
    shows up as a determinism break.
    """
    from ..config import smarco_scaled
    from ..exp.cache import canonical_json
    from ..power import ActivityEnergyModel, list_dvfs
    from ..power.tech import NODES

    cfg = smarco_scaled(4, 4)
    model = ActivityEnergyModel(cfg)
    rng = random.Random(31_415)
    stats: Dict[str, float] = {}
    for sr in range(cfg.sub_rings):
        idle = sr == cfg.sub_rings - 1    # exercise the gating path
        for c in range(cfg.cores_per_sub_ring):
            cid = sr * cfg.cores_per_sub_ring + c
            base = f"chip.subring{sr}.core{cid}"
            stats[f"{base}.retired"] = 0 if idle else rng.randrange(50_000)
            stats[f"{base}.icache.hits"] = rng.randrange(40_000)
            stats[f"{base}.icache.misses"] = rng.randrange(2_000)
            stats[f"{base}.dcache.hits"] = rng.randrange(8_000)
            stats[f"{base}.dcache.misses"] = rng.randrange(1_000)
            stats[f"{base}.spm_hits"] = rng.randrange(4_000)
            stats[f"chip.subring{sr}.spm{cid}.reads"] = rng.randrange(3_000)
            stats[f"chip.subring{sr}.spm{cid}.writes"] = rng.randrange(1_500)
        stats[f"chip.subring{sr}.mact.requests_in"] = rng.randrange(20_000)
        stats[f"chip.subring{sr}.mact.bypasses"] = rng.randrange(500)
        stats[f"chip.subring{sr}.dma.transfers"] = rng.randrange(200)
        for seg in range(cfg.cores_per_sub_ring + 1):
            for d in ("cw", "ccw", "bidi"):
                stats[f"chip.noc.sub{sr}.seg{seg}.{d}.bytes"] = \
                    rng.randrange(100_000)
        stats[f"chip.direct.link{sr}.bytes"] = rng.randrange(50_000)
    for mc in range(cfg.memory.channels):
        for bank in range(4):
            stats[f"chip.mem.mc{mc}.dram{bank}.requests"] = \
                rng.randrange(10_000)

    points = list_dvfs()
    nodes = sorted(NODES)
    rounds = params["rounds"]
    cycles = 250_000.0
    checksum = 0.0
    acct = None
    for i in range(rounds):
        acct = model.accounting(
            stats, cycles,
            dvfs=points[i % len(points)],
            technology_nm=nodes[(i // len(points)) % len(nodes)],
            power_gate_idle=bool(i % 2))
        checksum += acct.total_joules
    digest = hashlib.sha256(canonical_json(
        {"last": acct.to_dict(), "checksum": round(checksum, 9)}
    ).encode()).hexdigest()[:16]
    return {"events": 0, "units": rounds * len(stats),
            "unit": "stat-folds", "digest": digest}


def _k_traffic_arrivals(params: Dict[str, int]) -> Dict[str, Any]:
    """The open-loop cluster hot path on a synthetic chip calibration.

    Bursty arrivals at rho 0.9 through the subring-aware balancer into
    ``chips`` queueing servers, every latency folded through the
    streaming quantile sketch (the reservoir path engages above its
    8192-sample capacity, i.e. in the small/default sizes).  Injected
    synthetic calibration keeps the kernel free of chip-simulation time:
    it measures the traffic tier alone.  The digest pins the full result
    record, so any change to arrivals, routing, service sampling or the
    quantile fold shows up as a determinism break.
    """
    from ..exp import RunRequest
    from ..exp.cache import canonical_json
    from ..traffic.cluster import run_traffic, synthetic_calibration

    request = RunRequest(kind="traffic", workload="synthetic", seed=11,
                         traffic_requests=params["requests"],
                         traffic_chips=params["chips"],
                         traffic_load=0.9, traffic_arrival="bursty",
                         traffic_balancer="subring-aware")
    result = run_traffic(request, calibration=synthetic_calibration())
    digest = hashlib.sha256(
        canonical_json(result.to_dict()).encode()).hexdigest()[:16]
    return {"events": 0, "units": result.requests_completed,
            "unit": "requests", "digest": digest}


KERNELS: Dict[str, Callable[[Dict[str, int]], Dict[str, Any]]] = {
    "engine_churn": _k_engine_churn,
    "process_signal": _k_process_signal,
    "link_greedy": _k_link_greedy,
    "ring_saturation": _k_ring_saturation,
    "hierring_saturation": _k_hierring_saturation,
    "mact_batching": _k_mact_batching,
    "sched_assign": _k_sched_assign,
    "chip_fig17": _k_chip_fig17,
    "chip_fig23": _k_chip_fig23,
    "ckpt_roundtrip": _k_ckpt_roundtrip,
    "shard_sync": _k_shard_sync,
    "traffic_arrivals": _k_traffic_arrivals,
    "energy_accounting": _k_energy_accounting,
}


def kernel_names() -> List[str]:
    return list(KERNELS)


def run_kernel(name: str, size: str = "default",
               repeat: int = 3) -> Dict[str, Any]:
    """Run one kernel ``repeat`` times; report the best wall time.

    The kernel's *results* must be identical across repeats (they are
    deterministic); a mismatch means nondeterminism crept into a hot path
    and is raised loudly rather than averaged away.
    """
    if name not in KERNELS:
        raise ConfigError(f"unknown perf kernel {name!r} "
                          f"(have: {', '.join(KERNELS)})")
    if size not in SIZES:
        raise ConfigError(f"unknown suite size {size!r} "
                          f"(have: {', '.join(SIZES)})")
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    params = SIZES[size][name]
    fn = KERNELS[name]
    best_wall = float("inf")
    reference: Dict[str, Any] = {}
    for i in range(repeat):
        t0 = time.perf_counter()
        out = fn(dict(params))
        wall = time.perf_counter() - t0
        if i == 0:
            reference = out
        elif out != reference:
            raise ConfigError(
                f"kernel {name!r} is nondeterministic across repeats: "
                f"{out} != {reference}")
        best_wall = min(best_wall, wall)
    record = dict(reference)
    record["wall_s"] = best_wall
    record["events_per_sec"] = (record["events"] / best_wall
                                if best_wall > 0 else 0.0)
    record["units_per_sec"] = (record["units"] / best_wall
                               if best_wall > 0 else 0.0)
    return record


def run_suite(size: str = "default", repeat: int = 3,
              only: Any = None) -> Dict[str, Dict[str, Any]]:
    """Run the whole suite (or the ``only`` subset) in registry order."""
    names = kernel_names() if not only else list(only)
    return {name: run_kernel(name, size=size, repeat=repeat)
            for name in names}
