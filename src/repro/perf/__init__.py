"""``repro.perf`` — the simulator's self-recording performance harness.

Three pieces:

* :mod:`repro.perf.kernels` — a fixed suite of microbenchmarks over the
  simulator's hot paths (event engine, links, rings, MACT, full-chip
  runs), each deterministic so only *time* varies between runs;
* :mod:`repro.perf.bench` — the ``BENCH_<timestamp>.json`` record those
  runs write (events/sec, units/sec, peak RSS, code digest) and the
  comparator behind the ``perf --compare`` regression gate;
* :mod:`repro.perf.profile` — cProfile mode for finding the next hot
  spot.

Entry point: ``repro-smarco perf`` (see ``docs/performance.md``).
"""

from .bench import (
    SCHEMA,
    BenchComparison,
    BenchRecord,
    KernelComparison,
    compare_benches,
    load_bench,
    peak_rss_kb,
)
from .kernels import (
    KERNELS,
    SIZES,
    kernel_names,
    result_digest,
    run_kernel,
    run_suite,
)
from .profile import profile_kernel

__all__ = [
    "SCHEMA",
    "BenchComparison",
    "BenchRecord",
    "KernelComparison",
    "compare_benches",
    "load_bench",
    "peak_rss_kb",
    "KERNELS",
    "SIZES",
    "kernel_names",
    "result_digest",
    "run_kernel",
    "run_suite",
    "profile_kernel",
]
