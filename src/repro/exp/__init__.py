"""``repro.exp`` — the parallel experiment-runner subsystem.

The pieces, bottom-up:

* :class:`RunRequest` (``.request``) — one frozen, serialisable run
  description; the unit every other layer speaks.
* :class:`ExperimentSpec` (``.spec``) — a declarative sweep: a base
  request plus axes (grid) or an explicit request list.
* :class:`ResultCache` (``.cache``) — content-addressed on-disk store
  keyed by ``sha256(request snapshot + code version)``.
* :class:`Runner` (``.runner``) — expands a spec, skips cached points,
  fans misses across ``multiprocessing`` workers (serial fallback), and
  writes per-run telemetry (``.telemetry``) under ``results/runs/``.

``Runner`` and friends are loaded lazily so that ``repro.chip`` can
import :class:`RunRequest` without a circular import.
"""

from .request import RUN_KINDS, RunRequest, request_from_snapshot
from .spec import ExperimentSpec, SweepPoint

__all__ = [
    "RunRequest",
    "RUN_KINDS",
    "request_from_snapshot",
    "ExperimentSpec",
    "SweepPoint",
    "ResultCache",
    "HIT_KINDS",
    "code_version",
    "request_key",
    "Runner",
    "SweepResult",
    "resolve_workers",
    "resolve_shards",
    "RunRecord",
    "load_records",
    "summarize_runs",
    "SoakReport",
    "random_request",
    "run_soak",
]

_LAZY = {
    "ResultCache": "cache",
    "HIT_KINDS": "cache",
    "code_version": "cache",
    "request_key": "cache",
    "Runner": "runner",
    "SweepResult": "runner",
    "resolve_workers": "runner",
    "resolve_shards": "runner",
    "RunRecord": "telemetry",
    "load_records": "telemetry",
    "summarize_runs": "telemetry",
    "SoakReport": "soak",
    "random_request": "soak",
    "run_soak": "soak",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
