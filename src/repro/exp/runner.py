"""The parallel experiment runner.

``Runner.run(spec)`` expands an :class:`ExperimentSpec` into sweep
points, satisfies what it can from the content-addressed result cache,
fans the remaining points out across ``workers`` processes (plain
``multiprocessing``; ``workers=1`` is a deterministic serial fallback),
and writes one telemetry record per point under ``<base_dir>/runs/``.

Determinism: every simulation is fully seeded by its request, so a
parallel sweep returns results bit-identical to a serial sweep of the
same spec — workers only change wall-clock time, never outcomes.
Results come back in point order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..chip.run import RunOutcome, execute
from ..sim.stats import nest_flat_stats
from .cache import ResultCache, code_version, request_key
from .request import request_from_snapshot
from .spec import ExperimentSpec, SweepPoint
from .telemetry import RunRecord, utc_now, write_record

__all__ = ["Runner", "SweepResult", "resolve_workers", "resolve_shards"]

#: Environment knob CI uses to pin worker count (e.g. ``REPRO_WORKERS=2``).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob selecting the sharded chip executor (``--shards``).
SHARDS_ENV = "REPRO_SHARDS"


def _resolve_env_count(env_var: str, value: Optional[int],
                       default: int) -> int:
    """Explicit argument wins; else the env var; else ``default``.

    A value that does not parse as an integer is *reported*, not
    silently coerced: ``REPRO_WORKERS=two`` used to mean 1 with no hint
    of the typo.
    """
    if value is None:
        raw = os.environ.get(env_var, "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                import warnings
                warnings.warn(
                    f"ignoring invalid {env_var}={raw!r} (expected an "
                    f"integer); using {default}", RuntimeWarning,
                    stacklevel=3)
                value = default
        else:
            value = default
    return value


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument wins; else ``$REPRO_WORKERS``; else serial."""
    return max(1, _resolve_env_count(WORKERS_ENV, workers, 1))


def resolve_shards(shards: Optional[int] = None) -> int:
    """Explicit argument wins; else ``$REPRO_SHARDS``; else 0 (serial).

    0 selects the classic serial engine, 1 the in-process sharded
    executor, and ``n >= 2`` a multiprocess run with ``n`` workers.
    """
    return max(0, _resolve_env_count(SHARDS_ENV, shards, 0))


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: simulate one request from its snapshot.

    With a ``warm`` checkpoint path, the worker restores the shared
    post-warmup snapshot into the point's own build and simulates only
    the measurement suffix instead of re-running the warm-up prefix.
    """
    request = request_from_snapshot(payload["snapshot"])
    start = time.perf_counter()
    warm = payload.get("warm")
    if warm:
        from ..chip.session import RunSession

        outcome = RunSession.restore(warm, request=request).finish()
    else:
        outcome = execute(request)
    return {
        "outcome": outcome.to_dict(),
        "wall_time_s": time.perf_counter() - start,
        "worker": f"pid{os.getpid()}",
    }


@dataclass
class SweepResult:
    """Everything one sweep produced, in point order."""

    spec_name: str
    outcomes: List[RunOutcome]
    records: List[RunRecord]
    hits: int
    misses: int
    wall_time_s: float
    workers: int
    #: points satisfied by restoring a shared post-warmup checkpoint
    #: (a partial hit: only the measurement suffix was simulated)
    warm_hits: int = 0
    #: the cache's per-kind counters ("hit" / "warm" / "miss")
    hit_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def results(self) -> List[Any]:
        """The bare result objects (SmarcoRunResult etc.), in point order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def n_points(self) -> int:
        return len(self.outcomes)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.n_points if self.n_points else 0.0


class Runner:
    """Run experiment specs through the cache and a worker pool."""

    def __init__(
        self,
        workers: Optional[int] = None,
        base_dir: os.PathLike = "results",
        use_cache: bool = True,
        version: Optional[str] = None,
    ) -> None:
        from pathlib import Path

        base = Path(base_dir)
        self.workers = resolve_workers(workers)
        self.runs_dir = base / "runs"
        self.cache = ResultCache(base / "cache")
        self.warm_dir = base / "cache" / "warm"
        self.use_cache = use_cache
        self.version = version if version is not None else code_version()

    def run(self, spec: ExperimentSpec,
            warm_start: bool = False) -> SweepResult:
        points = spec.points()
        sweep_start = time.perf_counter()
        outcomes: List[Optional[RunOutcome]] = [None] * len(points)
        records: List[Optional[RunRecord]] = [None] * len(points)
        keys = [request_key(p.request, self.version) for p in points]

        pending: List[SweepPoint] = []
        for point, key in zip(points, keys):
            cached = self.cache.get(key) if self.use_cache else None
            if cached is not None:
                self.cache.note("hit")
                outcomes[point.index] = RunOutcome.from_dict(cached)
                records[point.index] = self._record(
                    spec, point, key, cached, cache="hit",
                    worker="cache", wall_time_s=0.0)
            else:
                pending.append(point)

        warm_paths = self._materialize_warm(pending) if warm_start else {}
        executed = self._execute(pending, warm_paths)
        for point, done in zip(pending, executed):
            key = keys[point.index]
            kind = "warm" if point.index in warm_paths else "miss"
            self.cache.note(kind)
            outcome_dict = done["outcome"]
            if self.use_cache:
                self.cache.put(key, outcome_dict)
            outcomes[point.index] = RunOutcome.from_dict(outcome_dict)
            records[point.index] = self._record(
                spec, point, key, outcome_dict, cache=kind,
                worker=done["worker"], wall_time_s=done["wall_time_s"])

        for record in records:
            write_record(self.runs_dir, record)
        counts = self.cache.hit_counts()
        return SweepResult(
            spec_name=spec.name,
            outcomes=list(outcomes),
            records=list(records),
            hits=len(points) - len(pending),
            misses=len(pending) - len(warm_paths),
            wall_time_s=time.perf_counter() - sweep_start,
            workers=self.workers,
            warm_hits=len(warm_paths),
            hit_counts=counts,
        )

    # -- internals ---------------------------------------------------------------

    def _materialize_warm(self,
                          pending: List[SweepPoint]) -> Dict[int, str]:
        """One shared post-warmup checkpoint per warm group.

        Pending points with ``warm_cycles > 0`` are grouped by their
        :meth:`~repro.exp.request.RunRequest.warm_base`; each group's
        base is simulated to ``warm_cycles`` exactly once (or reused
        from an earlier sweep on disk) and every point in the group is
        mapped to the resulting checkpoint file.
        """
        from ..chip.session import SESSION_KINDS, RunSession

        groups: Dict[str, List[SweepPoint]] = {}
        bases: Dict[str, Any] = {}
        for point in pending:
            request = point.request
            if request.warm_cycles <= 0 or request.kind not in SESSION_KINDS:
                continue
            base = request.warm_base()
            wkey = request_key(base, self.version)
            groups.setdefault(wkey, []).append(point)
            bases[wkey] = base
        warm_paths: Dict[int, str] = {}
        for wkey, members in groups.items():
            path = self.warm_dir / f"{wkey}.ckpt.gz"
            if not path.is_file():
                session = RunSession(bases[wkey])
                session.run_to(bases[wkey].warm_cycles)
                session.save(path)
            for point in members:
                warm_paths[point.index] = str(path)
        return warm_paths

    def _execute(self, pending: List[SweepPoint],
                 warm_paths: Optional[Dict[int, str]] = None,
                 ) -> List[Dict[str, Any]]:
        warm_paths = warm_paths or {}
        payloads = [{"snapshot": p.request.snapshot(),
                     "warm": warm_paths.get(p.index)} for p in pending]
        if self.workers <= 1 or len(pending) <= 1:
            return [dict(_execute_payload(payload), worker="serial")
                    for payload in payloads]
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        n = min(self.workers, len(pending))
        with ctx.Pool(processes=n) as pool:
            return pool.map(_execute_payload, payloads, chunksize=1)

    def _record(self, spec: ExperimentSpec, point: SweepPoint, key: str,
                outcome_dict: Dict[str, Any], cache: str, worker: str,
                wall_time_s: float) -> RunRecord:
        return RunRecord(
            run_id=key[:12],
            spec=spec.name,
            index=point.index,
            label=point.label,
            cache=cache,
            worker=worker,
            wall_time_s=wall_time_s,
            code_version=self.version,
            timestamp=utc_now(),
            request=outcome_dict["request"],
            result=outcome_dict["result"],
            stats=outcome_dict["stats"],
            stats_tree=nest_flat_stats(outcome_dict["stats"]),
            components=outcome_dict.get("components", {}),
            audit=outcome_dict.get("audit"),
            energy=outcome_dict.get("energy"),
        )
