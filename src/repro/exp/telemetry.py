"""Structured per-run telemetry.

Every sweep point the runner executes (or satisfies from cache) produces
one :class:`RunRecord` — the request snapshot, the result dict, the full
``StatsRegistry`` dump, wall time, cache hit/miss and worker id — written
as one JSON file under ``results/runs/``.  The files are the audit trail
for a sweep: ``repro-smarco report`` summarises them, and any later
analysis can reload them without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..analysis.tables import render_table

__all__ = ["RunRecord", "write_record", "load_records", "summarize_runs"]


@dataclass
class RunRecord:
    """One run's telemetry (everything needed to audit or replay it)."""

    run_id: str                 # cache-key prefix: content address of the run
    spec: str                   # owning ExperimentSpec name
    index: int                  # position within the sweep
    label: str                  # human-readable point label
    cache: str                  # "hit" (full-run) | "warm" (partial) | "miss"
    worker: str                 # "serial" or "pid<N>" of the worker process
    wall_time_s: float
    code_version: str
    timestamp: str              # ISO-8601 UTC, stamped at record time
    request: Dict[str, Any]     # RunRequest.snapshot()
    result: Dict[str, Any]      # result.to_dict()
    stats: Dict[str, float]     # StatsRegistry.dump()
    #: the flat dump nested by dotted component path (chip → noc → ...)
    stats_tree: Dict[str, Any] = field(default_factory=dict)
    #: the simulated system's component tree (Component.tree_dict())
    components: Dict[str, Any] = field(default_factory=dict)
    #: invariant audit report (Auditor.summary()); None for unaudited runs
    audit: Optional[Dict[str, Any]] = None
    #: activity-proportional energy report (EnergyReport.to_dict());
    #: None for run kinds without chip activity counters
    energy: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def breakdown_rows(self) -> List[Any]:
        """Per-stage latency rows recovered from this run's flat stats."""
        from ..analysis.breakdown import rows_from_stats

        return rows_from_stats(self.stats)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


def utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def write_record(runs_dir: Path, record: RunRecord) -> Path:
    """Persist one record as ``<spec>-<index>-<run_id>.json``."""
    runs_dir = Path(runs_dir)
    runs_dir.mkdir(parents=True, exist_ok=True)
    path = runs_dir / f"{record.spec}-{record.index:04d}-{record.run_id}.json"
    path.write_text(json.dumps(record.to_dict(), indent=1))
    return path


def load_records(runs_dir: Path) -> List[RunRecord]:
    """Every readable record under ``runs_dir``, ordered by (spec, index)."""
    runs_dir = Path(runs_dir)
    records: List[RunRecord] = []
    if not runs_dir.is_dir():
        return records
    for path in sorted(runs_dir.glob("*.json")):
        try:
            records.append(RunRecord.from_dict(json.loads(path.read_text())))
        except (ValueError, TypeError):
            continue
    records.sort(key=lambda r: (r.spec, r.index))
    return records


def summarize_runs(records: List[RunRecord]) -> str:
    """One table row per run: identity, cache outcome, time, throughput."""
    rows = []
    for record in records:
        tput = record.result.get("throughput_ips")
        rows.append([
            record.spec,
            record.label,
            record.cache,
            record.worker,
            f"{record.wall_time_s * 1e3:.0f} ms",
            f"{tput / 1e9:.2f} G/s" if tput else "-",
        ])
    hits = sum(1 for r in records if r.cache == "hit")
    warm = sum(1 for r in records if r.cache == "warm")
    title = (f"Sweep telemetry: {len(records)} runs, "
             f"{hits} cache hits")
    if warm:
        title += f", {warm} warm starts"
    return render_table(
        ["spec", "point", "cache", "worker", "wall", "throughput"],
        rows, title=title)
