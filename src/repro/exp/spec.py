"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a sweep and describes its points either
as a **grid** (a base :class:`RunRequest` plus axes — workload x config x
policy x seed x anything else that is a request field) or as an
**explicit** tuple of requests (for sweeps whose fields are correlated,
e.g. Fig 23 where instructions-per-thread shrinks as thread count grows).

``spec.points()`` expands to an ordered list of :class:`SweepPoint`; the
order is deterministic (axes in declaration order, values in given
order), so benches can slice results positionally.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence, Tuple

from ..errors import ConfigError
from .request import RunRequest

__all__ = ["ExperimentSpec", "SweepPoint"]

_REQUEST_FIELDS = {f.name for f in dataclasses.fields(RunRequest)}


def _short(value: Any) -> str:
    """A compact human label for an axis value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return type(value).__name__
    text = str(value)
    return text if len(text) <= 24 else text[:21] + "..."


@dataclass(frozen=True)
class SweepPoint:
    """One expanded point of a sweep: its position, label and request."""

    index: int
    label: str
    request: RunRequest


@dataclass(frozen=True)
class ExperimentSpec:
    """A named sweep: either ``base`` + ``axes`` or explicit ``requests``."""

    name: str
    base: RunRequest = field(default_factory=RunRequest)
    #: ((field_name, (value, value, ...)), ...) — expanded as a cartesian
    #: product in declaration order.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: explicit points; when non-empty they override the grid entirely.
    requests: Tuple[RunRequest, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("an experiment spec needs a name")
        for axis, values in self.axes:
            if axis not in _REQUEST_FIELDS:
                raise ConfigError(f"unknown sweep axis {axis!r}")
            if not values:
                raise ConfigError(f"sweep axis {axis!r} has no values")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def grid(cls, name: str, base: RunRequest = None,
             **axes: Iterable[Any]) -> "ExperimentSpec":
        """Build a grid spec: ``grid("s", base, workload=[...], seed=[...])``."""
        packed = tuple((axis, tuple(values)) for axis, values in axes.items())
        return cls(name=name,
                   base=base if base is not None else RunRequest(),
                   axes=packed)

    @classmethod
    def explicit(cls, name: str,
                 requests: Sequence[RunRequest]) -> "ExperimentSpec":
        """Build a spec from an already-expanded request list."""
        return cls(name=name, requests=tuple(requests))

    # -- expansion --------------------------------------------------------------

    @property
    def n_points(self) -> int:
        if self.requests:
            return len(self.requests)
        total = 1
        for _axis, values in self.axes:
            total *= len(values)
        return total

    def points(self) -> List[SweepPoint]:
        """Ordered sweep points; every request is validated on the way out."""
        out: List[SweepPoint] = []
        if self.requests:
            for i, request in enumerate(self.requests):
                request.validate()
                label = (f"{request.kind}:{request.workload}"
                         f":s{request.seed}:{i:03d}")
                out.append(SweepPoint(index=i, label=label, request=request))
            return out
        names = [axis for axis, _values in self.axes]
        grids = [values for _axis, values in self.axes]
        for i, combo in enumerate(itertools.product(*grids)):
            request = self.base.replace(**dict(zip(names, combo)))
            request.validate()
            tags = ",".join(f"{n}={_short(v)}" for n, v in zip(names, combo))
            label = f"{request.kind}:{tags or 'base'}:{i:03d}"
            out.append(SweepPoint(index=i, label=label, request=request))
        return out
