"""The unified run request: one frozen, serialisable description of a run.

Every way of running a simulation — a single TCG core, a SmarCo chip, the
Xeon baseline, or a SmarCo-vs-Xeon comparison — is described by one
:class:`RunRequest`.  ``repro.chip.run.execute`` consumes it, the sweep
runner (`repro.exp.runner`) fans grids of them across worker processes,
and the result cache keys on its canonical snapshot, so a request is the
unit of reproducibility: same request (+ same code) => same result.

Fields are a superset over the run kinds; each kind reads its own slice
and ignores the rest (the unused fields still participate in the cache
key, which is harmless: they are fixed defaults unless a sweep varies
them).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..config import (
    MACTConfig,
    MemoryConfig,
    RingConfig,
    SchedulerConfig,
    SmarCoConfig,
    TCGConfig,
    XeonConfig,
)
from ..errors import ConfigError, SchedulerError

__all__ = ["RunRequest", "RUN_KINDS", "request_from_snapshot"]

#: Supported values of :attr:`RunRequest.kind`.
RUN_KINDS = ("tcg", "smarco", "xeon", "compare", "sched", "traffic")


@dataclass(frozen=True)
class RunRequest:
    """A declarative, hashable description of one simulation run."""

    kind: str = "smarco"
    workload: str = "kmp"
    seed: int = 0

    # -- SmarCo chip (kind in {"smarco", "compare"}) --
    smarco_config: Optional[SmarCoConfig] = None
    threads_per_core: int = 8
    instrs_per_thread: int = 600
    core_policy: str = "inpair"
    realtime_fraction: float = 0.0
    total_threads: Optional[int] = None
    shared_code: bool = False
    #: 0 = classic serial engine; 1 = in-process sharded execution (the
    #: bit-for-bit equivalence mode); >= 2 = that many worker processes.
    #: Part of the cache key: multiprocess runs may legally commute
    #: same-cycle cross-ring ties, so their outcomes are cached apart
    #: from serial ones.
    shards: int = 0
    #: conservative sync window for sharded runs; None picks the largest
    #: safe quantum (the minimum boundary-channel latency), 0 the
    #: sequential instant-by-instant mode
    shard_quantum: Optional[float] = None

    # -- single TCG core (kind == "tcg"): a fixed-latency memory port --
    mem_latency: float = 150.0

    # -- Xeon baseline (kind in {"xeon", "compare"}) --
    xeon_config: Optional[XeonConfig] = None
    xeon_threads: int = 48
    xeon_instrs_per_thread: int = 40_000
    stagger_creation: bool = True

    # -- power / energy accounting (kinds {"smarco", "compare"}) --
    technology_nm: Optional[int] = None
    power_config: Optional[SmarCoConfig] = None
    #: DVFS operating point (see :mod:`repro.power.dvfs`).  Observation
    #: -only — it scales billed energy and wall-clock seconds, never the
    #: simulated cycle count — but it is a cache-key axis so swept
    #: operating points cache apart.
    dvfs: str = "nominal"
    #: shed the static share of sub-rings whose cores retired nothing
    power_gate_idle: bool = False

    # -- scheduler policy race (kind == "sched") --
    sched_policy: str = "laxity"
    sched_scenario: str = "uniform"
    sched_tasks: int = 128
    sched_contexts: int = 64

    # -- open-loop cluster traffic (kind == "traffic") --
    #: arrival process name (see :mod:`repro.traffic.arrivals`)
    traffic_arrival: str = "poisson"
    #: front-end balancer name (see :mod:`repro.traffic.balancer`)
    traffic_balancer: str = "least-outstanding"
    #: chips behind the front end
    traffic_chips: int = 2
    #: requests the arrival process expands to
    traffic_requests: int = 2000
    #: offered load rho as a fraction of calibrated cluster capacity
    traffic_load: float = 0.7
    #: service demand per request, in instructions
    traffic_instrs: int = 400
    #: SLO latency targets, as multiples of the calibrated solo service
    #: time (each becomes one violation-fraction column in the report)
    traffic_slo: Tuple[float, ...] = (2.0, 5.0, 10.0)

    # -- checkpoint / warm start (kinds with a RunSession) --
    #: simulate at most this many cycles (None = run to completion); a
    #: post-warm measurement-horizon axis for fig-style sweeps
    run_cycles: Optional[float] = None
    #: cycle at which a warm-started sweep snapshots the shared prefix
    #: (0 disables warm starting for this request)
    warm_cycles: float = 0.0
    #: request fields asserted not to affect the first ``warm_cycles``
    #: cycles; points differing only in these fields share one warm
    #: checkpoint (see :meth:`warm_base`)
    warm_axes: Tuple[str, ...] = ()

    def validate(self) -> None:
        if self.kind not in RUN_KINDS:
            raise ConfigError(f"unknown run kind {self.kind!r}")
        if self.kind == "sched":
            # fail at request time, not inside a worker process
            from ..sched.policy import get_policy
            from ..sched.scenarios import get_scenario

            try:
                get_policy(self.sched_policy)
                get_scenario(self.sched_scenario)
            except SchedulerError as exc:
                raise ConfigError(str(exc)) from None
            if self.sched_tasks <= 0 or self.sched_contexts <= 0:
                raise ConfigError("sched runs need >=1 task and context")
        if self.kind == "traffic":
            # fail at request time, not inside a worker process
            from ..errors import TrafficError
            from ..traffic.arrivals import get_arrival
            from ..traffic.balancer import get_balancer

            try:
                get_arrival(self.traffic_arrival)
                get_balancer(self.traffic_balancer)
            except TrafficError as exc:
                raise ConfigError(str(exc)) from None
            if self.traffic_chips <= 0:
                raise ConfigError("traffic runs need >= 1 chip")
            if self.traffic_requests <= 0 or self.traffic_instrs <= 0:
                raise ConfigError(
                    "traffic runs need >= 1 request and instruction")
            if self.traffic_load <= 0:
                raise ConfigError("traffic_load (offered rho) must be > 0")
            if not self.traffic_slo or any(t <= 0 for t in self.traffic_slo):
                raise ConfigError(
                    f"traffic_slo targets must be positive: "
                    f"{self.traffic_slo!r}")
        # fail on bad power axes at request time, not inside a worker
        from ..power.dvfs import get_dvfs

        get_dvfs(self.dvfs)
        if self.technology_nm is not None:
            from ..power.tech import NODES

            if self.technology_nm not in NODES:
                raise ConfigError(
                    f"unknown technology node {self.technology_nm}nm; "
                    f"known: {sorted(NODES)}")
        if self.threads_per_core <= 0 or self.instrs_per_thread <= 0:
            raise ConfigError("thread and instruction counts must be positive")
        if self.xeon_threads <= 0 or self.xeon_instrs_per_thread <= 0:
            raise ConfigError("Xeon thread and instruction counts must be positive")
        if self.smarco_config is not None:
            self.smarco_config.validate()
        if self.xeon_config is not None:
            self.xeon_config.validate()
        if self.run_cycles is not None and self.run_cycles <= 0:
            raise ConfigError("run_cycles must be positive (or None)")
        if self.shards < 0:
            raise ConfigError("shards must be >= 0 (0 = serial engine)")
        if self.shards:
            if self.kind not in ("smarco", "compare"):
                raise ConfigError(
                    f"kind {self.kind!r} cannot shard: only the SmarCo "
                    "chip has a domain partition")
            if self.warm_cycles:
                raise ConfigError(
                    "sharded runs cannot warm-start: checkpointing "
                    "requires the serial engine")
        if self.shard_quantum is not None:
            if not self.shards:
                raise ConfigError("shard_quantum needs shards >= 1")
            if self.shard_quantum < 0:
                raise ConfigError("shard_quantum must be >= 0")
        if self.warm_cycles < 0:
            raise ConfigError("warm_cycles must be >= 0")
        if self.warm_cycles:
            # session-capable kinds only (kept literal to avoid importing
            # repro.chip from the request layer)
            if self.kind not in ("smarco", "xeon", "sched"):
                raise ConfigError(
                    f"kind {self.kind!r} cannot warm-start: no run session")
            if self.run_cycles is not None and self.run_cycles <= self.warm_cycles:
                raise ConfigError(
                    "run_cycles must exceed warm_cycles (the warm-up "
                    "prefix must end before the measurement horizon)")
        known = {f.name for f in dataclasses.fields(RunRequest)}
        for axis in self.warm_axes:
            if axis not in known:
                raise ConfigError(f"unknown warm axis {axis!r}")
            if axis in ("kind", "warm_cycles", "warm_axes"):
                raise ConfigError(f"{axis!r} cannot be a warm axis")

    def replace(self, **changes: Any) -> "RunRequest":
        """A copy with ``changes`` applied (sweep axes use this)."""
        return dataclasses.replace(self, **changes)

    def warm_base(self) -> "RunRequest":
        """The request whose first ``warm_cycles`` cycles this run shares.

        Every field named in ``warm_axes`` is reset to its class default,
        so sweep points that differ only in warm axes collapse onto one
        warm-base request — the runner simulates *that* request to
        ``warm_cycles`` once, checkpoints it, and restores the checkpoint
        into each point's own build.  The contract (documented in
        ``docs/checkpointing.md``) is that warm axes must not influence
        the simulation before ``warm_cycles``; structural divergence is
        caught by the checkpoint schema hash at restore time.
        """
        defaults = {f.name: f.default for f in dataclasses.fields(RunRequest)}
        return self.replace(**{axis: defaults[axis] for axis in self.warm_axes})

    # -- serialisation -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain, JSON-ready dict; the cache key hashes its canonical form."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if dataclasses.is_dataclass(value):
                value = dataclasses.asdict(value)
            out[f.name] = value
        return out


def _smarco_config_from(data: Optional[Dict[str, Any]]) -> Optional[SmarCoConfig]:
    if data is None:
        return None
    return SmarCoConfig(
        sub_rings=data["sub_rings"],
        cores_per_sub_ring=data["cores_per_sub_ring"],
        frequency_ghz=data["frequency_ghz"],
        tcg=TCGConfig(**data["tcg"]),
        ring=RingConfig(**data["ring"]),
        mact=MACTConfig(**data["mact"]),
        memory=MemoryConfig(**data["memory"]),
        scheduler=SchedulerConfig(**data["scheduler"]),
        technology_nm=data["technology_nm"],
        trace_sample_rate=data.get("trace_sample_rate", 0.0),
    )


def _xeon_config_from(data: Optional[Dict[str, Any]]) -> Optional[XeonConfig]:
    if data is None:
        return None
    return XeonConfig(**data)


def request_from_snapshot(data: Dict[str, Any]) -> RunRequest:
    """Inverse of :meth:`RunRequest.snapshot` (worker processes use this)."""
    payload = dict(data)
    payload["smarco_config"] = _smarco_config_from(payload.get("smarco_config"))
    payload["xeon_config"] = _xeon_config_from(payload.get("xeon_config"))
    payload["power_config"] = _smarco_config_from(payload.get("power_config"))
    # JSON round-trips tuples as lists; restore hashability
    payload["warm_axes"] = tuple(payload.get("warm_axes") or ())
    if "traffic_slo" in payload:
        payload["traffic_slo"] = tuple(payload["traffic_slo"] or ())
    names = {f.name for f in dataclasses.fields(RunRequest)}
    return RunRequest(**{k: v for k, v in payload.items() if k in names})
