"""Randomized soak harness: many audited runs over random chip shapes.

``run_soak`` draws N seeded-random configurations — chip geometry, MACT
thresholds, trace sampling rates, scheduling policies — and pushes them
through the :class:`~repro.exp.runner.Runner` with the invariant audit
layer in *collect* mode (``REPRO_AUDIT=collect``), so a single sweep
exercises the checkers across a far wider state space than any
hand-written test.  Every violation any run collected is gathered into
one :class:`SoakReport`; a clean soak is the acceptance signal the CI
smoke step (``repro-smarco soak --runs 10``) asserts on.

The harness deliberately bypasses the result cache: a cached outcome
would skip the simulation — and with it every runtime check.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import MACTConfig, MemoryConfig, SmarCoConfig
from .request import RunRequest
from .runner import Runner
from .spec import ExperimentSpec

__all__ = ["SoakReport", "random_request", "run_soak"]

#: audit mode the soak forces for its runs (collect, don't raise: one bad
#: run must not mask violations in the remaining ones)
_SOAK_AUDIT_MODE = "collect"

# modest synthetic kernels; the heavyweight splash2 profiles would blow
# the smoke-step wall-clock budget without adding checker coverage
_WORKLOADS = ("kmeans", "kmp", "rnc", "search", "terasort", "wordcount")


def random_request(rng: random.Random, index: int,
                   instrs: int = 120) -> RunRequest:
    """One random-but-valid SmarCo run description.

    All draws come from ``rng``, so a soak is reproducible from its seed.
    """
    sub_rings = rng.choice((1, 2, 3))
    cores = rng.choice((2, 4, 8))
    mact = MACTConfig(
        enabled=rng.random() < 0.9,
        lines=rng.choice((4, 16, 64)),
        line_span_bytes=rng.choice((32, 64)),
        threshold_cycles=rng.choice((4, 8, 16, 32, 64)),
    )
    config = SmarCoConfig(
        sub_rings=sub_rings,
        cores_per_sub_ring=cores,
        mact=mact,
        memory=MemoryConfig(channels=rng.randint(1, sub_rings)),
        trace_sample_rate=rng.choice((0.0, 0.25, 1.0)),
    )
    policy = rng.choice(("inpair", "inpair", "blocking", "coarse"))
    threads = rng.choice((1, 2, 4, 8))
    if policy == "blocking":
        threads = min(threads, 4)
    return RunRequest(
        kind="smarco",
        workload=rng.choice(_WORKLOADS),
        seed=rng.randrange(2 ** 31),
        smarco_config=config,
        threads_per_core=threads,
        instrs_per_thread=instrs,
        core_policy=policy,
        realtime_fraction=rng.choice((0.0, 0.0, 0.1)),
    )


@dataclass
class SoakReport:
    """What a soak sweep found, ready for CLI rendering / CI gating."""

    runs: int
    clean_runs: int
    total_checks: int
    #: ``(point label, violation dict)`` for every violation collected
    violations: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.clean_runs == self.runs and not self.violations

    def render(self) -> str:
        lines = [
            f"soak: {self.runs} runs, {self.clean_runs} clean, "
            f"{self.total_checks} invariant checks "
            f"({self.wall_time_s:.1f}s)"
        ]
        for label, violation in self.violations:
            lines.append(
                f"  VIOLATION {label}: [{violation.get('checker')}] "
                f"{violation.get('component')} @ {violation.get('time')}: "
                f"{violation.get('message')}")
        if self.ok:
            lines.append("  all invariants held")
        return "\n".join(lines)


def run_soak(
    runs: int = 10,
    seed: int = 0,
    workers: Optional[int] = None,
    base_dir: os.PathLike = "results/soak",
    instrs: int = 120,
) -> SoakReport:
    """Run ``runs`` random audited configurations and report violations."""
    rng = random.Random(seed)
    requests = [random_request(rng, i, instrs) for i in range(runs)]
    spec = ExperimentSpec.explicit(f"soak-s{seed}", requests)
    # cache off: the point is to *execute* the checkers, not replay results
    runner = Runner(workers=workers, base_dir=base_dir, use_cache=False)

    saved = os.environ.get("REPRO_AUDIT")
    os.environ["REPRO_AUDIT"] = _SOAK_AUDIT_MODE
    try:
        # workers inherit the env at pool start, after the override above
        sweep = runner.run(spec)
    finally:
        if saved is None:
            os.environ.pop("REPRO_AUDIT", None)
        else:
            os.environ["REPRO_AUDIT"] = saved

    clean = 0
    total_checks = 0
    violations: List[Tuple[str, Dict[str, Any]]] = []
    for record, outcome in zip(sweep.records, sweep.outcomes):
        summary = outcome.audit or {}
        total_checks += int(summary.get("total_checks", 0))
        if summary.get("clean"):
            clean += 1
        for violation in summary.get("violations", ()):
            violations.append((record.label, violation))
        dropped = int(summary.get("dropped_violations", 0))
        if dropped:
            violations.append((record.label, {
                "checker": "audit", "component": "auditor", "time": 0.0,
                "message": f"{dropped} further violations dropped "
                           f"(max_violations reached)"}))
    return SoakReport(
        runs=len(requests),
        clean_runs=clean,
        total_checks=total_checks,
        violations=violations,
        wall_time_s=sweep.wall_time_s,
    )
