"""Content-addressed on-disk result cache.

A run is keyed by the SHA-256 of the canonical JSON of its
``RunRequest.snapshot()`` plus a *code version* string, so a cache entry
is valid exactly as long as both the request and the simulator source
are unchanged.  The default code version is a digest over every ``.py``
file of the installed ``repro`` package — editing any simulator source
invalidates the whole cache, which errs on the side of re-simulating.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` holding the
serialised :class:`repro.chip.run.RunOutcome` (request snapshot, result
dict, stats dump).  Writes are atomic (tmp file + ``os.replace``) so a
crashed or parallel run never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from .request import RunRequest

__all__ = ["ResultCache", "HIT_KINDS", "canonical_json", "code_version",
           "request_key"]

#: How a sweep point was satisfied: a full-run cache hit (result reused
#: verbatim), a warm-start partial hit (post-warmup checkpoint restored,
#: only the measurement suffix simulated), or a miss (full simulation).
HIT_KINDS = ("hit", "warm", "miss")

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]
_code_version_cache: Optional[str] = None


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def code_version(refresh: bool = False) -> str:
    """Digest of the ``repro`` package sources (cached per process)."""
    global _code_version_cache
    if _code_version_cache is None or refresh:
        digest = hashlib.sha256()
        for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
            digest.update(str(path.relative_to(_PACKAGE_ROOT)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def request_key(request: RunRequest, version: Optional[str] = None) -> str:
    """Stable cache key for one request under one code version."""
    payload = {"request": request.snapshot(),
               "code": version if version is not None else code_version()}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class ResultCache:
    """A directory of finished run outcomes, addressed by request key."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        #: per-kind satisfaction counters for this cache's lifetime; the
        #: runner notes one kind per sweep point so telemetry can tell a
        #: warm-start partial hit from a full-run hit
        self.counters: Dict[str, int] = {kind: 0 for kind in HIT_KINDS}

    def note(self, kind: str) -> None:
        """Count how one sweep point was satisfied (see :data:`HIT_KINDS`)."""
        if kind not in self.counters:
            raise ValueError(f"unknown hit kind {kind!r}; "
                             f"expected one of {HIT_KINDS}")
        self.counters[kind] += 1

    def hit_counts(self) -> Dict[str, int]:
        """A copy of the per-kind counters (``hit`` / ``warm`` / ``miss``)."""
        return dict(self.counters)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored outcome dict, or ``None`` on a miss/torn entry."""
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def put(self, key: str, outcome: Dict[str, Any]) -> Path:
        """Atomically store an outcome dict under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(outcome))
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed
