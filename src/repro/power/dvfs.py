"""DVFS operating points (frequency + voltage pairs).

Dynamic energy per event scales with V² (CV² switching energy); dynamic
*power* therefore scales with f·V².  Static (leakage) power scales
roughly linearly with V in the sub-threshold-dominated regime we care
about.  Frequency changes wall-clock time — a run of N simulated cycles
takes N/f seconds — but never the simulated cycle count itself: DVFS is
an observation-layer knob, so every pinned golden digest is unchanged
under any operating point.

The calibration point is ``nominal`` (1.5 GHz at V=1.0, the Table 1
operating point); other points are expressed relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError

__all__ = ["DvfsPoint", "DVFS_POINTS", "get_dvfs", "list_dvfs", "dvfs_summaries"]


@dataclass(frozen=True)
class DvfsPoint:
    """One frequency/voltage operating point."""

    name: str
    frequency_ghz: float
    #: supply voltage relative to the 1.5 GHz calibration point
    voltage: float

    @property
    def dynamic_scale(self) -> float:
        """Per-event dynamic *energy* multiplier (∝ V²)."""
        return self.voltage ** 2

    @property
    def static_scale(self) -> float:
        """Static *power* multiplier (∝ V)."""
        return self.voltage

    def describe(self) -> str:
        return (f"{self.name}: {self.frequency_ghz:.2f} GHz @ "
                f"{self.voltage:.2f} V_rel "
                f"(dyn energy x{self.dynamic_scale:.2f}, "
                f"static power x{self.static_scale:.2f})")


#: The operating-point table.  ``nominal`` is the Table 1 calibration
#: point; the others bracket it the way server DVFS ladders do.
DVFS_POINTS: Dict[str, DvfsPoint] = {
    "crawl": DvfsPoint("crawl", frequency_ghz=0.9, voltage=0.80),
    "eco": DvfsPoint("eco", frequency_ghz=1.2, voltage=0.90),
    "nominal": DvfsPoint("nominal", frequency_ghz=1.5, voltage=1.00),
    "turbo": DvfsPoint("turbo", frequency_ghz=1.8, voltage=1.10),
}


def get_dvfs(name: str) -> DvfsPoint:
    """Look up an operating point by name; unknown names raise ConfigError."""
    try:
        return DVFS_POINTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown dvfs point {name!r}; known: {sorted(DVFS_POINTS)}"
        ) from None


def list_dvfs() -> List[str]:
    """Registered operating-point names, sorted by frequency."""
    return [p.name for p in
            sorted(DVFS_POINTS.values(), key=lambda p: p.frequency_ghz)]


def dvfs_summaries() -> List[str]:
    """One human-readable line per operating point (for the CLI)."""
    return [DVFS_POINTS[n].describe() for n in list_dvfs()]
