"""Per-run energy report (the Fig 22/26 perf-per-watt surface).

:func:`build_energy_report` folds a finished run's scoped stats through
the :class:`~repro.power.activity.ActivityEnergyModel` and packages the
result — joules by Table 1 component, joules by component path, average
watts, perf/W, and (for ``compare`` runs) the SmarCo/Xeon efficiency
ratio — as the ``energy`` field of :class:`~repro.chip.run.RunOutcome`
and of the per-run telemetry record.

Everything here is observation-only: it reads ``RunOutcome.stats`` after
the simulation ends and never feeds back, so all pinned golden digests
are unchanged by energy accounting, DVFS points, or power gating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import smarco_default
from .activity import ActivityEnergyModel, EnergyAccounting
from .dvfs import get_dvfs
from .energy import PowerModel, XeonPowerModel, energy_efficiency

__all__ = ["EnergyReport", "build_energy_report", "TOP_PATHS"]

#: how many hottest component paths the report keeps
TOP_PATHS = 8

#: activity floors matching ``chip.run._execute_compare``'s billing
SMARCO_UTILIZATION_FLOOR = 0.5
XEON_UTILIZATION_FLOOR = 0.1


@dataclass
class EnergyReport:
    """Energy view of one run (all derived, observation-only)."""

    kind: str
    workload: str
    dvfs: str
    technology_nm: int
    accounting: EnergyAccounting
    throughput_ips: float
    perf_per_watt: float
    #: hottest component paths by dynamic joules, descending
    top_paths: List[Tuple[str, float]] = field(default_factory=list)
    #: static Table 1 watts at the run's utilization (cross-check column)
    static_model_watts: float = math.nan
    #: baseline side (compare runs only)
    xeon_watts: float = math.nan
    xeon_throughput_ips: float = math.nan
    xeon_perf_per_watt: float = math.nan
    #: (perf/W SmarCo) / (perf/W Xeon); NaN outside compare runs
    efficiency_ratio: float = math.nan

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "dvfs": self.dvfs,
            "technology_nm": self.technology_nm,
            "accounting": self.accounting.to_dict(),
            "throughput_ips": self.throughput_ips,
            "perf_per_watt": self.perf_per_watt,
            "top_paths": [[p, j] for p, j in self.top_paths],
            "static_model_watts": self.static_model_watts,
            "xeon_watts": self.xeon_watts,
            "xeon_throughput_ips": self.xeon_throughput_ips,
            "xeon_perf_per_watt": self.xeon_perf_per_watt,
            "efficiency_ratio": self.efficiency_ratio,
        }


def _top_paths(acct: EnergyAccounting, n: int = TOP_PATHS) -> List[Tuple[str, float]]:
    ranked = sorted(acct.by_path.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(path, joules) for path, joules in ranked[:n]]


def build_energy_report(outcome: Any) -> Optional[EnergyReport]:
    """Energy report for a finished run, or None for kinds without one.

    Only ``smarco`` and ``compare`` runs carry chip activity counters;
    every other kind returns None (telemetry stores ``energy: null``).
    """
    request = outcome.request
    if request.kind not in ("smarco", "compare"):
        return None
    result = outcome.result
    smarco_result = result.smarco if request.kind == "compare" else result

    config = (request.smarco_config if request.smarco_config is not None
              else smarco_default())
    model = ActivityEnergyModel(config)
    node = (request.technology_nm if request.technology_nm is not None
            else config.technology_nm)
    acct = model.accounting(
        outcome.stats, smarco_result.cycles,
        technology_nm=node, dvfs=request.dvfs,
        power_gate_idle=request.power_gate_idle)

    point = get_dvfs(request.dvfs)
    # throughput at the operating point: same simulated IPC, DVFS clock
    throughput = smarco_result.ipc * point.frequency_ghz * 1e9
    perf_per_watt = energy_efficiency(throughput, acct.average_watts)
    static_watts = PowerModel(config).total_watts(
        utilization=max(SMARCO_UTILIZATION_FLOOR, smarco_result.utilization),
        technology_nm=node)

    report = EnergyReport(
        kind=request.kind,
        workload=request.workload,
        dvfs=request.dvfs,
        technology_nm=node,
        accounting=acct,
        throughput_ips=throughput,
        perf_per_watt=perf_per_watt,
        top_paths=_top_paths(acct),
        static_model_watts=static_watts,
    )

    if request.kind == "compare":
        xeon_result = result.xeon
        xeon_watts = XeonPowerModel(request.xeon_config).total_watts(
            utilization=max(XEON_UTILIZATION_FLOOR, xeon_result.utilization))
        report.xeon_watts = xeon_watts
        report.xeon_throughput_ips = xeon_result.throughput_ips
        report.xeon_perf_per_watt = energy_efficiency(
            xeon_result.throughput_ips, xeon_watts)
        if (report.xeon_perf_per_watt and report.perf_per_watt
                and not math.isnan(report.xeon_perf_per_watt)
                and not math.isnan(report.perf_per_watt)):
            report.efficiency_ratio = (report.perf_per_watt
                                       / report.xeon_perf_per_watt)
    return report
