"""Chip power and energy model (paper Table 1 power column, Figs 22/26).

Power splits into a static share (leakage, clock tree — always on) and a
dynamic share that scales with frequency and activity.  Per-component
constants are calibrated to Table 1 at 32 nm / 1.5 GHz / full activity.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..config import SmarCoConfig, XeonConfig, smarco_default
from ..errors import ConfigError
from .area import MB
from .tech import scale_power

__all__ = ["PowerModel", "XeonPowerModel", "energy_efficiency"]

# Calibrated component power at 32nm, 1.5GHz, utilization 1.0 (Table 1).
CORE_W = 209.91 / 256
RING_W_PER_BIT_STOP = 14.55 / 80_896
MACT_W = 0.14 / 16
SRAM_W_PER_MB = 1.84 / 40
MC_W = 13.65 / 4

STATIC_FRACTION = 0.3        # leakage + always-on clocking
CAL_FREQUENCY_GHZ = 1.5


class PowerModel:
    """Power breakdown and energy accounting for a SmarCo configuration."""

    def __init__(self, config: Optional[SmarCoConfig] = None) -> None:
        self.config = config if config is not None else smarco_default()
        # reuse the area model's structural counts
        from .area import AreaModel

        self._area = AreaModel(self.config)

    def _peak_breakdown_32nm(self) -> Dict[str, float]:
        cfg = self.config
        total_sram_mb = (cfg.total_spm_bytes + cfg.total_icache_bytes
                         + cfg.total_dcache_bytes) / MB
        mact_scale = (cfg.mact.lines / 64) * (cfg.mact.line_span_bytes / 64)
        return {
            "Cores": cfg.total_cores * CORE_W,
            "Hierarchy Ring": self._area._ring_bit_stops() * RING_W_PER_BIT_STOP,
            "MACT": cfg.sub_rings * MACT_W * mact_scale,
            "SPM+Cache": total_sram_mb * SRAM_W_PER_MB,
            "MC+PHY": cfg.memory.channels * MC_W,
        }

    def breakdown(self, utilization: float = 1.0,
                  technology_nm: Optional[int] = None) -> Dict[str, float]:
        """Watts per Table 1 component at the given activity factor."""
        if not 0 <= utilization <= 1:
            raise ConfigError(f"utilization {utilization} outside [0,1]")
        node = technology_nm if technology_nm is not None else self.config.technology_nm
        freq_scale = self.config.frequency_ghz / CAL_FREQUENCY_GHZ
        out = {}
        for name, peak in self._peak_breakdown_32nm().items():
            dynamic = peak * (1 - STATIC_FRACTION) * utilization * freq_scale
            static = peak * STATIC_FRACTION
            out[name] = scale_power(static + dynamic, 32, node)
        return out

    def total_watts(self, utilization: float = 1.0,
                    technology_nm: Optional[int] = None) -> float:
        return sum(self.breakdown(utilization, technology_nm).values())

    def energy_joules(self, cycles: float, utilization: float = 1.0,
                      technology_nm: Optional[int] = None) -> float:
        """Energy to run ``cycles`` core cycles at the given activity."""
        seconds = cycles / (self.config.frequency_ghz * 1e9)
        return self.total_watts(utilization, technology_nm) * seconds


class XeonPowerModel:
    """Baseline power: TDP-anchored with an idle floor.

    Server CPUs burn a large fraction of TDP even at low utilisation; we
    use the conventional linear model between ~45% idle and 100% TDP.
    """

    IDLE_FRACTION = 0.45

    def __init__(self, config: Optional[XeonConfig] = None) -> None:
        self.config = config if config is not None else XeonConfig()

    def total_watts(self, utilization: float = 1.0) -> float:
        if not 0 <= utilization <= 1:
            raise ConfigError(f"utilization {utilization} outside [0,1]")
        tdp = self.config.tdp_watts
        return tdp * (self.IDLE_FRACTION + (1 - self.IDLE_FRACTION) * utilization)

    def energy_joules(self, cycles: float, utilization: float = 1.0) -> float:
        seconds = cycles / (self.config.frequency_ghz * 1e9)
        return self.total_watts(utilization) * seconds


def energy_efficiency(throughput: float, watts: float) -> float:
    """Performance per watt (Fig 22/26's y-axis is the SmarCo/Xeon ratio
    of this quantity).

    ``nan`` (never a silent ``0.0``, and no longer an exception) when the
    denominator is degenerate — the same convention as ``speedup`` on a
    zero baseline and the winners-table p99 on an empty sample set.
    """
    if watts <= 0 or math.isnan(watts):
        return math.nan
    return throughput / watts
