"""Chip area model (paper Table 1 — McPAT/CACTI/Orion substitute).

Per-unit constants are calibrated so the paper's default configuration
(256 cores, hierarchical ring, 16 MACTs, 40 MB on-chip SRAM, 4 memory
controllers at 32 nm / 1.5 GHz) reproduces Table 1 exactly; any other
configuration scales with its component counts and widths, which is what
the ablation benches sweep.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SmarCoConfig, smarco_default
from .tech import scale_area

__all__ = ["AreaModel"]

MB = 1024 * 1024

# Calibrated per-unit constants at 32 nm (Table 1 / default geometry).
CORE_MM2 = 634.32 / 256                       # per TCG core (logic)
RING_MM2_PER_BIT_STOP = 57.43 / 80_896        # per router-bit of ring width
MACT_MM2 = 1.43 / 16                          # per 64-line x 64B MACT
SRAM_MM2_PER_MB = 44.90 / 40                  # SPM + caches
MC_MM2 = 12.92 / 4                            # controller + PHY


class AreaModel:
    """Area breakdown for a :class:`~repro.config.SmarCoConfig`."""

    def __init__(self, config: Optional[SmarCoConfig] = None) -> None:
        self.config = config if config is not None else smarco_default()

    # -- component areas at 32nm ------------------------------------------------

    def cores_mm2(self) -> float:
        return self.config.total_cores * CORE_MM2

    def _ring_bit_stops(self) -> int:
        """Sum over routers of their datapath width in bits."""
        cfg = self.config
        main_stops = cfg.sub_rings + cfg.memory.channels + 2   # sched + io
        main_bits = main_stops * cfg.ring.main_ring_bits
        sub_stops = cfg.sub_rings * (cfg.cores_per_sub_ring + 1)
        sub_bits = sub_stops * cfg.ring.sub_ring_bits
        return main_bits + sub_bits

    def ring_mm2(self) -> float:
        return self._ring_bit_stops() * RING_MM2_PER_BIT_STOP

    def mact_mm2(self) -> float:
        cfg = self.config.mact
        scale = (cfg.lines / 64) * (cfg.line_span_bytes / 64)
        return self.config.sub_rings * MACT_MM2 * scale

    def sram_mm2(self) -> float:
        cfg = self.config
        total_bytes = (cfg.total_spm_bytes + cfg.total_icache_bytes
                       + cfg.total_dcache_bytes)
        return total_bytes / MB * SRAM_MM2_PER_MB

    def mc_mm2(self) -> float:
        return self.config.memory.channels * MC_MM2

    # -- tables --------------------------------------------------------------------

    def breakdown(self, technology_nm: Optional[int] = None) -> Dict[str, float]:
        """Table 1's rows (mm^2), optionally rescaled to another node."""
        node = technology_nm if technology_nm is not None else self.config.technology_nm
        raw = {
            "Cores": self.cores_mm2(),
            "Hierarchy Ring": self.ring_mm2(),
            "MACT": self.mact_mm2(),
            "SPM+Cache": self.sram_mm2(),
            "MC+PHY": self.mc_mm2(),
        }
        return {k: scale_area(v, 32, node) for k, v in raw.items()}

    def total_mm2(self, technology_nm: Optional[int] = None) -> float:
        return sum(self.breakdown(technology_nm).values())
