"""Area / power / energy models (McPAT / CACTI / Orion substitutes)."""

from .area import AreaModel
from .energy import PowerModel, XeonPowerModel, energy_efficiency
from .tech import NODES, TechNode, scale_area, scale_power

__all__ = [
    "AreaModel",
    "PowerModel",
    "XeonPowerModel",
    "energy_efficiency",
    "TechNode",
    "NODES",
    "scale_area",
    "scale_power",
]
