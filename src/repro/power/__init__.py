"""Area / power / energy models (McPAT / CACTI / Orion substitutes).

Two complementary layers:

* the **static** Table 1 models (:class:`AreaModel`, :class:`PowerModel`,
  :class:`XeonPowerModel`) — calibrated breakdowns parameterised only by
  configuration and an activity scalar;
* the **activity-proportional** layer (:class:`ActivityEnergyModel`,
  :func:`build_energy_report`) — energy-per-event constants calibrated
  against the static model's peak, billed from the scoped stats a run
  actually emitted, with DVFS operating points (:data:`DVFS_POINTS`) and
  idle sub-ring power gating.  See docs/power.md.
"""

from .activity import (
    EVENT_SPECS,
    ActivityEnergyModel,
    EnergyAccounting,
    EventSpec,
    classify_stat,
)
from .area import AreaModel
from .dvfs import DVFS_POINTS, DvfsPoint, dvfs_summaries, get_dvfs, list_dvfs
from .energy import PowerModel, XeonPowerModel, energy_efficiency
from .report import EnergyReport, build_energy_report
from .tech import NODES, TechNode, scale_area, scale_power

__all__ = [
    "AreaModel",
    "PowerModel",
    "XeonPowerModel",
    "energy_efficiency",
    "TechNode",
    "NODES",
    "scale_area",
    "scale_power",
    "ActivityEnergyModel",
    "EnergyAccounting",
    "EventSpec",
    "EVENT_SPECS",
    "classify_stat",
    "DvfsPoint",
    "DVFS_POINTS",
    "get_dvfs",
    "list_dvfs",
    "dvfs_summaries",
    "EnergyReport",
    "build_energy_report",
]
