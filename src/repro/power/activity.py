"""Activity-proportional energy accounting (the dynamic half of Table 1).

The static :class:`~repro.power.energy.PowerModel` answers "what does the
chip burn at activity factor u?" without looking at what the simulator
did.  This module closes that gap: every component already emits scoped
counters (``chip.subring3.mact.requests_in``, ``chip.noc.main.seg0.cw.bytes``
…), so a run's *dynamic* energy can be computed as

    E_dyn = sum over event kinds k of  count_k x e_k

with one calibrated energy-per-event constant ``e_k`` per kind, while
static energy stays time-proportional (leakage watts x seconds).

Calibration
-----------
Per Table 1 component C (Cores, Hierarchy Ring, MACT, SPM+Cache, MC+PHY)
the peak dynamic power at 32 nm / 1.5 GHz / utilization 1.0 is
``peak_W(C) x (1 - STATIC_FRACTION)`` — exactly what
``PowerModel.breakdown(1.0)`` reports above its static floor.  Each event
kind k that lives in C has a relative weight ``w_k`` (e.g. an SPM access
costs ~sqrt(128/16) of a 16 KB cache access) and a *structural full-tilt
rate* ``r_k`` in events/cycle (e.g. every core port busy every cycle).
Solving

    sum over k in C of  (w_k * s_C) * r_k * f_cal  =  P_dyn(C)

for the per-component scale ``s_C`` gives ``e_k = w_k * s_C`` joules per
event.  By construction, a run whose counters hit every full-tilt rate
dissipates exactly the Table 1 dynamic power — the conservation tests
pin this reconciliation.

DVFS and power gating
---------------------
Per-event dynamic energy scales with V² and static power with V (see
:mod:`repro.power.dvfs`); technology scaling reuses
:func:`repro.power.tech.scale_power`.  With ``power_gate_idle`` a
sub-ring whose cores retired nothing sheds its static share (its slice
of Cores/MACT/SPM+Cache leakage plus its ring bit-stops).  All of this
is observation-only: it reads stats after the run and never alters
simulated behaviour, so pinned golden digests are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..config import SmarCoConfig, smarco_default
from ..errors import ConfigError
from .area import AreaModel
from .dvfs import DvfsPoint, get_dvfs
from .energy import STATIC_FRACTION, CAL_FREQUENCY_GHZ, PowerModel
from .tech import scale_power

__all__ = [
    "EventSpec",
    "EVENT_SPECS",
    "EnergyAccounting",
    "ActivityEnergyModel",
    "classify_stat",
]


@dataclass(frozen=True)
class EventSpec:
    """One countable event kind billed to a Table 1 component."""

    kind: str
    #: Table 1 row the event's energy is drawn from
    component: str
    #: relative energy weight within the component (dimensionless)
    weight: float
    #: one-line provenance note (rendered in docs/power.md)
    note: str


#: DMA moves block-sized bursts; bill one transfer as this many
#: word-granularity SPM accesses.
DMA_BURST_WEIGHT = 16.0
#: SRAM access energy grows ~sqrt(capacity); SPM (128 KB) vs cache (16 KB).
SPM_WEIGHT = math.sqrt(128 / 16)

EVENT_SPECS: Dict[str, EventSpec] = {
    spec.kind: spec
    for spec in (
        EventSpec("core_op", "Cores", 1.0,
                  "one retired instruction through a TCG issue slot"),
        EventSpec("icache_access", "SPM+Cache", 1.0,
                  "one 16 KB I-cache lookup (hit or miss)"),
        EventSpec("dcache_access", "SPM+Cache", 1.0,
                  "one 16 KB D-cache lookup (hit or miss)"),
        EventSpec("spm_access", "SPM+Cache", SPM_WEIGHT,
                  "one SPM word access; sqrt(128/16) x a 16 KB lookup"),
        EventSpec("dma_transfer", "SPM+Cache", DMA_BURST_WEIGHT,
                  "one DMA block burst ~ 16 word accesses"),
        EventSpec("ring_flit_hop", "Hierarchy Ring", 1.0,
                  "one byte crossing one ring segment or direct link"),
        EventSpec("mact_lookup", "MACT", 1.0,
                  "one MACT line lookup (collected or bypassed)"),
        EventSpec("ddr_access", "MC+PHY", 1.0,
                  "one DRAM bank access through a channel"),
    )
}


def classify_stat(name: str) -> Optional[str]:
    """Map a flat scoped-stat name to an event kind (None = not billed).

    Only ``chip.``-rooted counters participate, so compare-kind stat
    merges (``xeon.`` prefix) are naturally excluded.
    """
    parts = name.split(".")
    if len(parts) < 2 or parts[0] != "chip":
        return None
    last = parts[-1]
    parent = parts[-2]
    if last == "retired" and parent.startswith("core"):
        return "core_op"
    if parent == "icache" and last in ("hits", "misses"):
        return "icache_access"
    if parent == "dcache" and last in ("hits", "misses"):
        return "dcache_access"
    if last == "spm_hits" and parent.startswith("core"):
        return "spm_access"
    if parent.startswith("spm") and last in ("reads", "writes",
                                             "remote_accesses"):
        return "spm_access"
    if parent == "dma" and last == "transfers":
        return "dma_transfer"
    if last == "bytes" and parts[1] in ("noc", "direct"):
        return "ring_flit_hop"
    if parent == "mact" and last in ("requests_in", "bypasses"):
        return "mact_lookup"
    if last == "requests" and parent.startswith("dram"):
        return "ddr_access"
    return None


@dataclass
class EnergyAccounting:
    """Energy split of one run (all joules; observation-only)."""

    cycles: float
    seconds: float
    frequency_ghz: float
    technology_nm: int
    dvfs: Optional[str]
    power_gate_idle: bool
    dynamic_joules: float
    static_joules: float
    by_component: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_event: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_path: Dict[str, float] = field(default_factory=dict)
    gated_subrings: List[str] = field(default_factory=list)
    gated_joules: float = 0.0

    @property
    def total_joules(self) -> float:
        return self.dynamic_joules + self.static_joules

    @property
    def average_watts(self) -> float:
        if self.seconds <= 0:
            return math.nan
        return self.total_joules / self.seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycles": self.cycles,
            "seconds": self.seconds,
            "frequency_ghz": self.frequency_ghz,
            "technology_nm": self.technology_nm,
            "dvfs": self.dvfs,
            "power_gate_idle": self.power_gate_idle,
            "dynamic_joules": self.dynamic_joules,
            "static_joules": self.static_joules,
            "total_joules": self.total_joules,
            "average_watts": self.average_watts,
            "by_component": self.by_component,
            "by_event": self.by_event,
            "by_path": self.by_path,
            "gated_subrings": list(self.gated_subrings),
            "gated_joules": self.gated_joules,
        }


class ActivityEnergyModel:
    """Calibrated energy-per-event model for one chip configuration."""

    def __init__(self, config: Optional[SmarCoConfig] = None) -> None:
        self.config = config if config is not None else smarco_default()
        self.power = PowerModel(self.config)
        self._area = AreaModel(self.config)
        self._peak = self.power._peak_breakdown_32nm()
        self._rates = self._full_activity_rates()
        self._epe = self._calibrate()

    # -- calibration ----------------------------------------------------------

    def _full_activity_rates(self) -> Dict[str, float]:
        """Structural full-tilt rates in events per core cycle."""
        cfg = self.config
        cores = cfg.total_cores
        return {
            "core_op": cfg.tcg.issue_width * cores,
            "icache_access": float(cores),
            "dcache_access": float(cores),
            "spm_access": float(cores),
            "dma_transfer": cfg.sub_rings / DMA_BURST_WEIGHT,
            # every router bit toggling every cycle, in bytes
            "ring_flit_hop": self._area._ring_bit_stops() / 8.0,
            "mact_lookup": float(cfg.sub_rings),
            "ddr_access": cfg.memory.channels / cfg.memory.row_hit_occupancy,
        }

    def _calibrate(self) -> Dict[str, float]:
        """Joules per event at 32 nm, V = 1.0."""
        f_cal_hz = CAL_FREQUENCY_GHZ * 1e9
        weighted_rate: Dict[str, float] = {}
        for spec in EVENT_SPECS.values():
            weighted_rate[spec.component] = (
                weighted_rate.get(spec.component, 0.0)
                + spec.weight * self._rates[spec.kind])
        epe: Dict[str, float] = {}
        for spec in EVENT_SPECS.values():
            p_dyn = self._peak[spec.component] * (1 - STATIC_FRACTION)
            scale = p_dyn / (f_cal_hz * weighted_rate[spec.component])
            epe[spec.kind] = spec.weight * scale
        return epe

    def energy_per_event(self, kind: str, technology_nm: Optional[int] = None,
                         dvfs: Optional[str] = None) -> float:
        """Joules per event at the given node / operating point."""
        if kind not in self._epe:
            raise ConfigError(
                f"unknown event kind {kind!r}; known: {sorted(self._epe)}")
        node = (technology_nm if technology_nm is not None
                else self.config.technology_nm)
        point = self._resolve_dvfs(dvfs)
        return (scale_power(self._epe[kind], 32, node) * point.dynamic_scale)

    def full_activity_counts(self, cycles: float) -> Dict[str, float]:
        """Synthetic event counts of a run at structural full tilt."""
        return {k: r * cycles for k, r in self._rates.items()}

    # -- extraction -----------------------------------------------------------

    def extract_counts(
        self, stats: Mapping[str, Any],
    ) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
        """Fold flat scoped stats into (counts by kind, counts by path)."""
        by_kind: Dict[str, float] = {k: 0.0 for k in EVENT_SPECS}
        by_path: Dict[str, Dict[str, float]] = {}
        for name, value in stats.items():
            if not isinstance(value, (int, float)):
                continue
            kind = classify_stat(name)
            if kind is None:
                continue
            by_kind[kind] += value
            path = name.rsplit(".", 1)[0]
            bucket = by_path.setdefault(path, {})
            bucket[kind] = bucket.get(kind, 0.0) + value
        return by_kind, by_path

    def _idle_subrings(self, stats: Mapping[str, Any]) -> List[str]:
        """Sub-rings whose cores retired nothing (power-gating candidates)."""
        retired: Dict[str, float] = {}
        for name, value in stats.items():
            if not isinstance(value, (int, float)):
                continue
            parts = name.split(".")
            if (len(parts) == 4 and parts[0] == "chip"
                    and parts[1].startswith("subring")
                    and parts[2].startswith("core") and parts[3] == "retired"):
                retired[parts[1]] = retired.get(parts[1], 0.0) + value
        return sorted(sr for sr, total in retired.items() if total == 0)

    # -- accounting -----------------------------------------------------------

    def _resolve_dvfs(self, dvfs: Optional[str]) -> DvfsPoint:
        if dvfs is None:
            return DvfsPoint("config", self.config.frequency_ghz, 1.0)
        return get_dvfs(dvfs)

    def _gated_static_watts(self, static_w: Dict[str, float],
                            idle: List[str]) -> float:
        """Static watts shed by gating the given idle sub-rings."""
        if not idle:
            return 0.0
        cfg = self.config
        per_ring = (static_w["Cores"] + static_w["MACT"]
                    + static_w["SPM+Cache"]) / cfg.sub_rings
        sub_bits = (cfg.cores_per_sub_ring + 1) * cfg.ring.sub_ring_bits
        ring_share = sub_bits / self._area._ring_bit_stops()
        per_ring += static_w["Hierarchy Ring"] * ring_share
        return per_ring * len(idle)

    def accounting(self, stats: Mapping[str, Any], cycles: float, *,
                   technology_nm: Optional[int] = None,
                   dvfs: Optional[str] = None,
                   power_gate_idle: bool = False) -> EnergyAccounting:
        """Account one run's energy from its flat scoped stats."""
        by_kind, by_path = self.extract_counts(stats)
        idle = self._idle_subrings(stats) if power_gate_idle else []
        return self._account(by_kind, by_path, cycles,
                             technology_nm=technology_nm, dvfs=dvfs,
                             power_gate_idle=power_gate_idle, idle=idle)

    def accounting_from_counts(self, counts: Mapping[str, float],
                               cycles: float, *,
                               technology_nm: Optional[int] = None,
                               dvfs: Optional[str] = None) -> EnergyAccounting:
        """Account synthetic per-kind counts (conservation tests)."""
        by_kind = {k: float(counts.get(k, 0.0)) for k in EVENT_SPECS}
        unknown = set(counts) - set(EVENT_SPECS)
        if unknown:
            raise ConfigError(f"unknown event kinds: {sorted(unknown)}")
        return self._account(by_kind, {}, cycles,
                             technology_nm=technology_nm, dvfs=dvfs,
                             power_gate_idle=False, idle=[])

    def _account(self, by_kind: Dict[str, float],
                 by_path: Dict[str, Dict[str, float]], cycles: float, *,
                 technology_nm: Optional[int], dvfs: Optional[str],
                 power_gate_idle: bool, idle: List[str]) -> EnergyAccounting:
        node = (technology_nm if technology_nm is not None
                else self.config.technology_nm)
        point = self._resolve_dvfs(dvfs)
        seconds = cycles / (point.frequency_ghz * 1e9) if cycles else 0.0

        # per-event dynamic joules at the requested node / operating point
        epe = {k: scale_power(e, 32, node) * point.dynamic_scale
               for k, e in self._epe.items()}
        by_event = {k: {"count": by_kind[k], "joules": by_kind[k] * epe[k]}
                    for k in EVENT_SPECS}
        dyn_by_component: Dict[str, float] = {}
        for kind, spec in EVENT_SPECS.items():
            dyn_by_component[spec.component] = (
                dyn_by_component.get(spec.component, 0.0)
                + by_event[kind]["joules"])

        # static: leakage watts x seconds, V-scaled, minus gated share
        static_w = {c: scale_power(p * STATIC_FRACTION, 32, node)
                    * point.static_scale
                    for c, p in self._peak.items()}
        gated_w = self._gated_static_watts(static_w, idle)
        gated_joules = gated_w * seconds
        total_static_w = sum(static_w.values())
        static_scale = ((total_static_w - gated_w) / total_static_w
                        if total_static_w > 0 else 0.0)

        by_component = {}
        for comp in self._peak:
            stat_j = static_w[comp] * seconds * static_scale
            dyn_j = dyn_by_component.get(comp, 0.0)
            by_component[comp] = {"static": stat_j, "dynamic": dyn_j,
                                  "total": stat_j + dyn_j}

        path_joules = {
            path: sum(count * epe[kind] for kind, count in kinds.items())
            for path, kinds in by_path.items()}

        return EnergyAccounting(
            cycles=cycles,
            seconds=seconds,
            frequency_ghz=point.frequency_ghz,
            technology_nm=node,
            dvfs=dvfs,
            power_gate_idle=power_gate_idle,
            dynamic_joules=sum(v["joules"] for v in by_event.values()),
            static_joules=sum(v["static"] for v in by_component.values()),
            by_component=by_component,
            by_event=by_event,
            by_path=path_joules,
            gated_subrings=idle,
            gated_joules=gated_joules,
        )

    def full_activity_energy(self, cycles: float,
                             technology_nm: Optional[int] = None) -> float:
        """Total joules at structural full tilt — reconciles with
        ``PowerModel.energy_joules(cycles, 1.0, node)`` by construction."""
        acct = self.accounting_from_counts(
            self.full_activity_counts(cycles), cycles,
            technology_nm=technology_nm)
        return acct.total_joules
