"""Technology-node scaling (substitute for McPAT/CACTI node support).

The paper evaluates area/power at 32 nm (Table 1, "considering the
supporting of these evaluation tools") but tapes out at TSMC 40 nm
(Fig 26) and compares against a 14 nm Xeon (Table 2).  We model classical
Dennard-era-ish scaling between those nodes: area scales with feature
size squared; power scales roughly linearly with feature size at equal
frequency (capacitance dominates, voltage scaling having stalled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError

__all__ = ["TechNode", "NODES", "scale_area", "scale_power"]


@dataclass(frozen=True)
class TechNode:
    nm: int
    #: area multiplier relative to 32 nm
    area_scale: float
    #: power multiplier relative to 32 nm (iso-frequency)
    power_scale: float


NODES: Dict[int, TechNode] = {
    14: TechNode(14, area_scale=(14 / 32) ** 2, power_scale=14 / 32 * 0.9),
    28: TechNode(28, area_scale=(28 / 32) ** 2, power_scale=28 / 32),
    32: TechNode(32, area_scale=1.0, power_scale=1.0),
    40: TechNode(40, area_scale=(40 / 32) ** 2, power_scale=40 / 32),
    65: TechNode(65, area_scale=(65 / 32) ** 2, power_scale=65 / 32),
}


def _node(nm: int) -> TechNode:
    try:
        return NODES[nm]
    except KeyError:
        raise ConfigError(
            f"unknown technology node {nm}nm; known: {sorted(NODES)}"
        ) from None


def scale_area(mm2: float, from_nm: int, to_nm: int) -> float:
    """Rescale an area figure between technology nodes."""
    return mm2 * _node(to_nm).area_scale / _node(from_nm).area_scale


def scale_power(watts: float, from_nm: int, to_nm: int) -> float:
    """Rescale a power figure between nodes (iso-frequency)."""
    return watts * _node(to_nm).power_scale / _node(from_nm).power_scale
