"""Near-memory string matching — the paper's second §7 future-work item.

    "We are working hard to apply in-memory computing techniques to
    handle those simple and fixed computing patterns, such as string
    matching, to further reduce data volume that needs to be transferred
    between memory and cores."

A :class:`PimMatchUnit` sits at a memory controller and runs KMP over a
resident byte region at DRAM-internal bandwidth: the host sends a small
command packet, the unit streams rows through a comparator array, and
only the match count travels back.  The unit is *functional* — it
operates on real bytes and returns the true match count — and *timed* —
its scan rate, command latency, and bank occupancy are modelled, so the
extension bench can compare it fairly against shipping the data to the
TCG cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..errors import ConfigError, MemoryError_
from ..sim.engine import Process, Simulator
from ..sim.stats import StatsRegistry

__all__ = ["PimMatchResult", "PimMatchUnit"]


@dataclass
class PimMatchResult:
    """Outcome of one near-memory match command."""

    matches: int
    bytes_scanned: int
    issued_at: float
    finished_at: float

    @property
    def latency(self) -> float:
        return self.finished_at - self.issued_at


class PimMatchUnit:
    """One in-memory KMP engine attached to a memory controller."""

    def __init__(
        self,
        sim: Simulator,
        unit_id: int = 0,
        scan_bytes_per_cycle: float = 64.0,
        command_latency: int = 40,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if scan_bytes_per_cycle <= 0:
            raise ConfigError("PIM scan rate must be positive")
        self.sim = sim
        self.unit_id = unit_id
        self.scan_bytes_per_cycle = scan_bytes_per_cycle
        self.command_latency = command_latency
        self._regions: Dict[int, bytes] = {}
        self._busy_until = 0.0
        reg = registry if registry is not None else StatsRegistry()
        self.commands = reg.counter(f"pim{unit_id}.commands")
        self.bytes_scanned = reg.counter(f"pim{unit_id}.bytes")

    # -- data residency -----------------------------------------------------

    def store(self, base_addr: int, data: bytes) -> None:
        """Make ``data`` resident at ``base_addr`` (the dataset the host
        staged into this controller's DRAM)."""
        if not data:
            raise MemoryError_("cannot store an empty region")
        self._regions[base_addr] = bytes(data)

    def resident_bytes(self, base_addr: int) -> int:
        return len(self._regions.get(base_addr, b""))

    # -- matching --------------------------------------------------------------

    def match(self, base_addr: int, pattern: str) -> Process:
        """Issue a match command; the process result is a
        :class:`PimMatchResult`."""
        if base_addr not in self._regions:
            raise MemoryError_(f"no resident region at {base_addr:#x}")
        if not pattern:
            raise MemoryError_("empty pattern")
        return self.sim.spawn(self._run(base_addr, pattern),
                              f"pim{self.unit_id}.match")

    def _run(self, base_addr: int, pattern: str) -> Generator:
        issued = self.sim.now
        data = self._regions[base_addr]
        # command decode + row pipeline fill, then serialise on the unit
        start = max(self.sim.now + self.command_latency, self._busy_until)
        scan_cycles = len(data) / self.scan_bytes_per_cycle
        finish = start + scan_cycles
        self._busy_until = finish
        yield finish - self.sim.now
        # imported lazily: workloads depends on mem for its address map
        from ..workloads.kmp import kmp_search

        matches = len(kmp_search(data.decode("latin-1"), pattern))
        self.commands.inc()
        self.bytes_scanned.inc(len(data))
        return PimMatchResult(
            matches=matches,
            bytes_scanned=len(data),
            issued_at=issued,
            finished_at=self.sim.now,
        )
