"""Memory request objects shared by caches, SPM, MACT, NoC and DRAM."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["Priority", "MemRequest"]

_request_ids = itertools.count()


class Priority(enum.IntEnum):
    """Request priority classes (paper §3.4/§3.5.2).

    ``REALTIME`` requests bypass the MACT and may use the direct datapath;
    ``NORMAL`` requests are eligible for collection/batching.
    """

    NORMAL = 0
    REALTIME = 1


@dataclass
class MemRequest:
    """One memory access travelling through the chip.

    ``on_complete(request, finish_time)`` is invoked when the data is back
    at the requester (loads) or accepted by memory (stores).
    """

    addr: int
    size: int
    is_write: bool
    core_id: int = 0
    priority: Priority = Priority.NORMAL
    issue_time: float = 0.0
    on_complete: Optional[Callable[["MemRequest", float], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))
    meta: Any = None
    finish_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.issue_time

    def complete(self, now: float) -> None:
        """Mark done at ``now`` and fire the completion callback once."""
        if self.finish_time is not None:
            return
        self.finish_time = now
        if self.on_complete is not None:
            self.on_complete(self, now)

    def line_base(self, line_bytes: int) -> int:
        return (self.addr // line_bytes) * line_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"MemRequest#{self.req_id}({kind} {self.addr:#x}+{self.size} "
            f"core={self.core_id} prio={self.priority.name})"
        )
