"""Memory request objects shared by caches, SPM, MACT, NoC and DRAM.

A request is a *transaction*: it can carry a :class:`HopTrace` that every
layer it crosses stamps with ``(stage, component_path, enter, exit)``
records.  The trace is an ordered, gap-free partition of the request's
lifetime — each ``advance`` closes the current hop and opens the next —
so per-stage durations always sum back to the end-to-end latency
(``repro.analysis.breakdown`` builds the per-layer attribution from it).
Tracing is opt-in per request (see :class:`TraceSampler` and
``SmarCoConfig.trace_sample_rate``); an untraced request pays one ``None``
check per layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import MemoryModelError
from ..sim.snapshot import register_snapshot_class, snapshotable

__all__ = ["Priority", "MemRequest", "Hop", "HopTrace", "TraceSampler"]

# a plain module counter (not itertools.count) so checkpoints can capture
# and restore the id high-water mark — restored runs must mint the same
# req_ids the straight run would
_next_request_id = 0


def _new_request_id() -> int:
    global _next_request_id
    rid = _next_request_id
    _next_request_id += 1
    return rid


def request_id_state() -> int:
    return _next_request_id


def set_request_id_state(value: int) -> None:
    global _next_request_id
    _next_request_id = value


class Priority(enum.IntEnum):
    """Request priority classes (paper §3.4/§3.5.2).

    ``REALTIME`` requests bypass the MACT and may use the direct datapath;
    ``NORMAL`` requests are eligible for collection/batching.
    """

    NORMAL = 0
    REALTIME = 1


@snapshotable
@dataclass
class Hop:
    """One stamped segment of a transaction's lifetime."""

    stage: str            # dot-free stage label ("collect", "link_xfer", ...)
    component: str        # dotted component path ("chip.subring0.mact")
    enter: float
    exit: Optional[float] = None    # open until the next advance/close
    note: str = ""                  # e.g. the MACT flush reason

    @property
    def duration(self) -> float:
        return (self.exit - self.enter) if self.exit is not None else 0.0


@snapshotable
class HopTrace:
    """The ordered hop records of one transaction.

    Two stamping styles:

    * :meth:`advance` — the chained style every chip layer uses: closes
      the currently open hop at ``now`` and opens the next one, so the
      records tile ``[issue, finish]`` with no gaps or overlaps;
    * :meth:`stamp` — appends one already-closed record; used for
      out-of-band segments (post-completion resume wait, DMA legs,
      cache-walk attribution) that are not part of the chain.
    """

    __slots__ = ("hops",)

    def __init__(self) -> None:
        self.hops: List[Hop] = []

    @property
    def open_hop(self) -> Optional[Hop]:
        if self.hops and self.hops[-1].exit is None:
            return self.hops[-1]
        return None

    def advance(self, stage: str, component: str, now: float,
                note: str = "") -> Hop:
        """Close the open hop at ``now`` and open ``(stage, component)``."""
        current = self.open_hop
        if current is not None:
            if now < current.enter:
                raise MemoryModelError(
                    f"hop {stage!r} stamped at {now} before the open hop "
                    f"{current.stage!r} entered at {current.enter}"
                )
            current.exit = now
        hop = Hop(stage, component, now, note=note)
        self.hops.append(hop)
        return hop

    def close(self, now: float) -> None:
        """Close the open hop (transaction completion)."""
        current = self.open_hop
        if current is not None:
            current.exit = now

    def annotate(self, note: str) -> None:
        """Attach a note to the currently open hop (no-op when closed)."""
        current = self.open_hop
        if current is not None:
            current.note = note

    def stamp(self, stage: str, component: str, enter: float, exit: float,
              note: str = "") -> Hop:
        """Append one closed, out-of-chain record."""
        if exit < enter:
            raise MemoryModelError(
                f"hop {stage!r} exits at {exit} before entering at {enter}"
            )
        hop = Hop(stage, component, enter, exit, note=note)
        self.hops.append(hop)
        return hop

    # -- aggregation ------------------------------------------------------

    def total_cycles(self) -> float:
        return sum(h.duration for h in self.hops if h.exit is not None)

    def stage_totals(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for hop in self.hops:
            if hop.exit is not None:
                out[hop.stage] = out.get(hop.stage, 0.0) + hop.duration
        return out

    def records(self) -> List[tuple]:
        """The trace as plain ``(stage, component, enter, exit)`` tuples."""
        return [(h.stage, h.component, h.enter, h.exit) for h in self.hops]

    def __len__(self) -> int:
        return len(self.hops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = " > ".join(h.stage for h in self.hops)
        return f"HopTrace({len(self.hops)} hops: {path})"


@snapshotable
class TraceSampler:
    """Deterministic every-``1/rate``-th sampler (Bresenham-style).

    Spreads ``rate`` of the population evenly with no RNG, so the sampled
    set is identical across runs and across worker processes — the
    property the ``trace_sample_rate`` knob needs to keep fixed-seed
    sweeps reproducible.
    """

    __slots__ = ("rate", "_acc")

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise MemoryModelError(
                f"trace sample rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self._acc = 0.0

    def sample(self) -> bool:
        if self.rate <= 0.0:
            return False
        self._acc += self.rate
        if self._acc >= 1.0 - 1e-12:
            self._acc -= 1.0
            return True
        return False


@snapshotable
class MemRequest:
    """One memory access travelling through the chip.

    ``on_complete(request, finish_time)`` is invoked when the data is back
    at the requester (loads) or accepted by memory (stores).

    A plain ``__slots__`` class rather than a dataclass: every load/store
    in a chip run allocates one, so instance size and attribute access
    cost are on the hot path.
    """

    __slots__ = ("addr", "size", "is_write", "core_id", "priority",
                 "issue_time", "on_complete", "req_id", "meta",
                 "finish_time", "trace")

    def __init__(
        self,
        addr: int,
        size: int,
        is_write: bool,
        core_id: int = 0,
        priority: Priority = Priority.NORMAL,
        issue_time: float = 0.0,
        on_complete: Optional[Callable[["MemRequest", float], None]] = None,
        req_id: Optional[int] = None,
        meta: Any = None,
        finish_time: Optional[float] = None,
        trace: Optional[HopTrace] = None,
    ) -> None:
        self.addr = addr
        self.size = size
        self.is_write = is_write
        self.core_id = core_id
        self.priority = priority
        self.issue_time = issue_time
        self.on_complete = on_complete
        self.req_id = _new_request_id() if req_id is None else req_id
        self.meta = meta
        self.finish_time = finish_time
        self.trace = trace

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.issue_time

    def complete(self, now: float) -> None:
        """Mark done at ``now`` and fire the completion callback once.

        A second completion is a lifecycle bug (it used to be silently
        swallowed, hiding real accounting errors) and raises.
        """
        if self.finish_time is not None:
            raise MemoryModelError(
                f"{self!r} completed twice: at {self.finish_time} and {now}"
            )
        self.finish_time = now
        if self.trace is not None:
            self.trace.close(now)
        if self.on_complete is not None:
            self.on_complete(self, now)

    # -- tracing ----------------------------------------------------------

    def start_trace(self) -> HopTrace:
        """Attach (and return) a fresh hop trace."""
        self.trace = HopTrace()
        return self.trace

    def trace_advance(self, stage: str, component: str, now: float,
                      note: str = "") -> None:
        """Advance the hop chain; no-op for untraced requests."""
        if self.trace is not None:
            self.trace.advance(stage, component, now, note=note)

    def trace_annotate(self, note: str) -> None:
        if self.trace is not None:
            self.trace.annotate(note)

    def line_base(self, line_bytes: int) -> int:
        return (self.addr // line_bytes) * line_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"MemRequest#{self.req_id}({kind} {self.addr:#x}+{self.size} "
            f"core={self.core_id} prio={self.priority.name})"
        )
