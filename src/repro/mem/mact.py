"""Memory Access Collection Table — MACT (paper §3.4).

One MACT per sub-ring collects small, discrete memory requests from the
sub-ring's cores and forwards them to memory *in batch*.  Each line holds:

* ``Type`` — read or write (a line never mixes the two);
* ``Tag`` — the base address of the span it covers;
* ``Vector`` — a byte bitmap: bit *i* set means byte ``base+i`` is wanted;
* ``Threshold`` — a deadline timer; the line must be packed and sent
  within ``threshold_cycles`` of its creation to preserve timeliness.

A line flushes when its bitmap fills, its deadline expires, or the table
needs space.  Requests flagged ``Priority.REALTIME`` bypass the table
entirely (paper: "requests ... of superior real-time priority bypass MACT
and flow to memory in an ordinary way").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..config import MACTConfig
from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.snapshot import register_snapshot_class, snapshotable
from ..sim.stats import StatsRegistry
from .request import MemRequest, Priority

__all__ = ["MACTLine", "MACT", "Batch"]


@snapshotable
class _SplitTracker:
    """Completion counter for a line-boundary split (was a closure).

    The parent request completes when its last architecture-side piece
    does; as a plain object the tracker survives checkpoints, which the
    old closure-with-cell-state could not.
    """

    __slots__ = ("parent", "remaining")

    def __init__(self, parent: MemRequest, remaining: int) -> None:
        self.parent = parent
        self.remaining = remaining

    def piece_done(self, _child: MemRequest, now: float) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            # sim time is monotonic, so the last piece carries the
            # max finish time of the split
            self.parent.complete(now)

try:
    _popcount = int.bit_count        # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised only on 3.9
    def _popcount(value: int) -> int:
        return bin(value).count("1")

#: span_bytes -> all-ones mask; built once instead of materialising a
#: span-wide integer ((1 << 2048) - 1 for the default line) on every merge
_FULL_MASKS: Dict[int, int] = {}


class Batch:
    """One packed transaction leaving the MACT for memory."""

    __slots__ = ("base_addr", "span_bytes", "is_write", "requests", "reason",
                 "unique_bytes")

    def __init__(self, base_addr: int, span_bytes: int, is_write: bool,
                 requests: List[MemRequest], reason: str,
                 unique_bytes: Optional[int] = None) -> None:
        self.base_addr = base_addr
        self.span_bytes = span_bytes
        self.is_write = is_write
        self.requests = requests
        # "full" | "deadline" | "capacity" | "drain" (line flushes),
        # "disabled" | "bypass" (unbatched single sends)
        self.reason = reason
        #: distinct bytes the line's bitmap covers; ``wanted_bytes`` counts
        #: every member's size, so overlapping members double-count there.
        self.unique_bytes = (unique_bytes if unique_bytes is not None
                             else self.wanted_bytes)

    @property
    def wanted_bytes(self) -> int:
        return sum(r.size for r in self.requests)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Batch({'W' if self.is_write else 'R'} {self.base_addr:#x} "
            f"n={len(self.requests)} reason={self.reason})"
        )


class MACTLine:
    """One table line: bitmap of wanted bytes + its constituent requests."""

    __slots__ = ("base_addr", "is_write", "bitmap", "created_at", "requests",
                 "arrivals", "generation")

    def __init__(self, base_addr: int, is_write: bool, created_at: float,
                 generation: int) -> None:
        self.base_addr = base_addr
        self.is_write = is_write
        self.bitmap = 0
        self.created_at = created_at
        self.requests: List[MemRequest] = []
        self.arrivals: List[float] = []  # per-request arrival times
        self.generation = generation    # guards stale deadline events

    def merge(self, request: MemRequest, span_bytes: int) -> bool:
        """Set bitmap bits for the request; True if the bitmap is now full."""
        lo = request.addr - self.base_addr
        self.bitmap |= ((1 << request.size) - 1) << lo
        self.requests.append(request)
        full = _FULL_MASKS.get(span_bytes)
        if full is None:
            full = _FULL_MASKS[span_bytes] = (1 << span_bytes) - 1
        return self.bitmap == full

    def covered_bytes(self) -> int:
        return _popcount(self.bitmap)


class MACT(Component):
    """The collection table, as a DES component.

    Requests arrive on the ``submit`` input port (or via :meth:`submit`
    directly); packed batches leave on the ``batch_out`` output port — the
    chip wires it to the memory path (NoC injection or direct controller
    submission).  A plain ``send(batch)`` callable may be passed instead
    of wiring the port, which keeps unit rigs one-liners.  When
    ``config.enabled`` is False every request is forwarded unbatched,
    giving the conventional baseline of Fig 20.
    """

    def __init__(
        self,
        sim: Simulator,
        send: Optional[Callable[[Batch], None]] = None,
        config: Optional[MACTConfig] = None,
        name: str = "mact",
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.config = config if config is not None else MACTConfig()
        self._lines: "OrderedDict[Tuple[bool, int], MACTLine]" = OrderedDict()
        self._generation = 0
        self.submit_in = self.in_port("submit", MemRequest,
                                      handler=self.submit)
        self.batch_out = self.out_port("batch_out", Batch)
        if send is not None:
            # legacy hook: route the port into a caller-supplied function
            sink = self.in_port("batch_sink", Batch, handler=send)
            self.batch_out.connect(sink)
        self.requests_in = self.stats.counter("requests_in")
        self.batches_out = self.stats.counter("batches_out")
        self.bypasses = self.stats.counter("bypasses")
        self.splits = self.stats.counter("splits")
        self.flush_full = self.stats.counter("flush_full")
        self.flush_deadline = self.stats.counter("flush_deadline")
        self.flush_capacity = self.stats.counter("flush_capacity")
        self.flush_drain = self.stats.counter("flush_drain")
        self.occupancy = self.stats.time_weighted("occupancy")
        self.collect_wait = self.stats.accumulator("collect_wait")
        self._audit = None              # set by attach_audit

    def on_reset(self) -> None:
        self._lines.clear()
        self._generation = 0

    def attach_audit(self, auditor) -> None:
        if auditor.register_mact(self):
            self._audit = auditor

    # -- submission -------------------------------------------------------------

    def submit(self, request: MemRequest) -> None:
        """Accept one memory request from a core."""
        self.requests_in.inc()
        if request.trace is not None:
            request.trace.advance("collect", self.path, self.sim.now)
        if not self.config.enabled:
            self._send_single(request, reason="disabled")
            return
        if self.config.bypass_priority and request.priority is Priority.REALTIME:
            self.bypasses.inc()
            self._send_single(request, reason="bypass")
            return

        span = self.config.line_span_bytes
        base = request.line_base(span)
        if request.addr + request.size > base + span:
            # A request crossing a line boundary is split architecture-side
            # into line-local sub-requests; the caller's request object is
            # never mutated and completes when its last piece does.
            self._submit_split(request, span)
            return
        self._collect(request, base, span)

    def _submit_split(self, request: MemRequest, span: int) -> None:
        self.splits.inc()
        request.trace_annotate("split")
        pieces = []
        addr, remaining = request.addr, request.size
        while remaining > 0:
            base = (addr // span) * span
            take = min(remaining, base + span - addr)
            pieces.append((addr, take, base))
            addr += take
            remaining -= take
        tracker = _SplitTracker(request, len(pieces))

        for piece_addr, size, base in pieces:
            child = MemRequest(
                addr=piece_addr, size=size, is_write=request.is_write,
                core_id=request.core_id, priority=request.priority,
                issue_time=request.issue_time,
                on_complete=tracker.piece_done,
                meta=request,
            )
            self._collect(child, base, span)

    def _collect(self, request: MemRequest, base: int, span: int) -> None:
        key = (request.is_write, base)
        line = self._lines.get(key)
        if line is None:
            if len(self._lines) >= self.config.lines:
                self._flush_oldest()
            self._generation += 1
            line = MACTLine(base, request.is_write, self.sim.now, self._generation)
            self._lines[key] = line
            self.occupancy.set(len(self._lines), self.sim.now)
            self.sim.schedule(
                self.config.threshold_cycles,
                self._deadline_expired, key, line.generation,
            )
        line.arrivals.append(self.sim.now)
        if self._audit is not None:
            self._audit.mact_collected(self, line, request)
        if line.merge(request, span):
            self._flush(key, reason="full")

    # -- flush paths --------------------------------------------------------------

    def _send_single(self, request: MemRequest, reason: str) -> None:
        request.trace_annotate(reason)
        self.collect_wait.add(0.0)
        batch = Batch(request.addr, request.size, request.is_write,
                      [request], reason)
        self.batches_out.inc()
        self.batch_out.send(batch)

    def _deadline_expired(self, key: Tuple[bool, int], generation: int) -> None:
        line = self._lines.get(key)
        if line is None or line.generation != generation:
            return                      # line already flushed/recreated
        self._flush(key, reason="deadline")

    def _flush_oldest(self) -> None:
        key = next(iter(self._lines))
        self._flush(key, reason="capacity")

    def _flush(self, key: Tuple[bool, int], reason: str) -> None:
        line = self._lines.pop(key)
        self.occupancy.set(len(self._lines), self.sim.now)
        counter = {
            "full": self.flush_full,
            "deadline": self.flush_deadline,
            "capacity": self.flush_capacity,
            "drain": self.flush_drain,
        }[reason]
        counter.inc()
        now = self.sim.now
        if self._audit is not None:
            self._audit.mact_flushed(self, line, reason, now)
        for req, arrived in zip(line.requests, line.arrivals):
            self.collect_wait.add(now - arrived)
            req.trace_annotate(reason)
        self.batches_out.inc()
        self.batch_out.send(Batch(line.base_addr, self.config.line_span_bytes,
                                  line.is_write, line.requests, reason,
                                  unique_bytes=line.covered_bytes()))

    def flush_all(self) -> int:
        """Drain every pending line (end-of-run); returns lines flushed."""
        count = 0
        while self._lines:
            key = next(iter(self._lines))
            self._flush(key, reason="drain")
            count += 1
        return count

    # -- snapshot protocol -------------------------------------------------------

    def extra_state(self) -> dict:
        return {"lines": self._lines, "generation": self._generation}

    def load_extra_state(self, state: dict) -> None:
        self._lines = OrderedDict(state["lines"])
        self._generation = state["generation"]

    # -- introspection ----------------------------------------------------------

    @property
    def pending_lines(self) -> int:
        return len(self._lines)

    @property
    def request_reduction(self) -> float:
        """Ratio of input requests to output transactions (>1 is a win).

        ``nan`` (never a fake ``0.0``) when no batches were emitted, per
        the zero-baseline convention of ``repro.chip.results``.
        """
        out = self.batches_out.value
        return self.requests_in.value / out if out else float("nan")

    def __repr__(self) -> str:  # pragma: no cover
        return f"MACT({self.name}, pending={len(self._lines)})"


register_snapshot_class(Batch)
register_snapshot_class(MACTLine)
