"""SPM stream prefetcher — the paper's §7 future work, implemented.

    "In the future, we will concentrate on data penetration and prefetch
    from memory to SPM to further improve efficiency and fairness of
    memory accesses."

A :class:`StreamPrefetcher` sits beside a core's LSQ: it watches the
core's uncached *read* stream, detects sequential progress, and pulls the
next window of the stream from DRAM into the core's SPM ahead of use.  A
read that lands in a ready window is served at SPM speed instead of a
full memory round trip.

The prefetcher is deliberately simple hardware: a few stream trackers
(last address + confidence) and a small table of prefetched windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ConfigError
from ..sim.component import Component
from ..sim.snapshot import register_snapshot_class, snapshotable
from ..sim.stats import StatsRegistry
from .request import MemRequest

__all__ = ["PrefetchWindow", "StreamPrefetcher"]


@snapshotable
class _FillTicket:
    """Carries a window fill's identity through its request (was a lambda)."""

    __slots__ = ("prefetcher", "window", "launched_at")

    def __init__(self, prefetcher: "StreamPrefetcher",
                 window: "PrefetchWindow", launched_at: float) -> None:
        self.prefetcher = prefetcher
        self.window = window
        self.launched_at = launched_at

    def filled(self, _request: MemRequest, now: float) -> None:
        self.prefetcher._filled(self.window, now, self.launched_at)


@dataclass
class PrefetchWindow:
    """One SPM-resident slice of a detected stream."""

    start: int
    end: int
    ready_at: float          # when the DMA fill lands in SPM

    def covers(self, addr: int, size: int) -> bool:
        return self.start <= addr and addr + size <= self.end


class _StreamTracker:
    """Detects sequential progress of one stream."""

    __slots__ = ("last_addr", "confidence")

    def __init__(self, addr: int) -> None:
        self.last_addr = addr
        self.confidence = 0

    def advance(self, addr: int, size: int, slack: int) -> bool:
        """Record an access; True once the stream is confirmed."""
        if 0 <= addr - self.last_addr <= slack:
            self.confidence += 1
        else:
            self.confidence = 0
        self.last_addr = addr + size
        return self.confidence >= 2


class StreamPrefetcher(Component):
    """Per-core sequential prefetcher into SPM.

    Window fills leave on the ``fetch_out`` output port, which the chip
    wires to the sub-ring's MACT; the fill request's completion marks the
    window ready.  A plain ``fetch(request)`` callable may be passed
    instead of wiring the port (unit rigs).
    """

    def __init__(
        self,
        core_id: int,
        fetch: Optional[Callable[[MemRequest], None]] = None,
        window_bytes: int = 256,
        max_windows: int = 8,
        max_trackers: int = 4,
        sequential_slack: int = 64,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: Optional[str] = None,
    ) -> None:
        if window_bytes <= 0 or max_windows <= 0:
            raise ConfigError("prefetcher needs positive window geometry")
        super().__init__(name if name is not None else f"pf{core_id}",
                         parent=parent, registry=registry)
        self.core_id = core_id
        self.fetch_out = self.out_port("fetch_out", MemRequest)
        if fetch is not None:
            sink = self.in_port("fetch_sink", MemRequest, handler=fetch)
            self.fetch_out.connect(sink)
        self.window_bytes = window_bytes
        self.max_windows = max_windows
        self.max_trackers = max_trackers
        self.sequential_slack = sequential_slack
        self._windows: List[PrefetchWindow] = []
        self._trackers: List[_StreamTracker] = []
        self.hits = self.stats.counter("hits")
        self.misses = self.stats.counter("misses")
        self.issued = self.stats.counter("issued")
        self.fill_latency = self.stats.accumulator("fill_latency")

    def on_reset(self) -> None:
        self._windows.clear()
        self._trackers.clear()

    # -- lookup ------------------------------------------------------------

    def lookup(self, addr: int, size: int, now: float,
               request: Optional[MemRequest] = None) -> bool:
        """True when the access is covered by a ready window (SPM hit).

        Passing the demand ``request`` stamps its hop chain with the
        SPM-speed ``prefetch`` service stage on a hit.
        """
        for window in self._windows:
            if window.covers(addr, size) and window.ready_at <= now:
                self.hits.inc()
                if request is not None:
                    request.trace_advance("prefetch", self.path, now)
                return True
        self.misses.inc()
        return False

    # -- training -----------------------------------------------------------

    def observe(self, addr: int, size: int, now: float) -> None:
        """Train on an uncached read; may launch the next window fill."""
        for tracker in self._trackers:
            if abs(addr - tracker.last_addr) <= self.sequential_slack:
                if tracker.advance(addr, size, self.sequential_slack):
                    self._launch(addr + size, now)
                return
        self._trackers.append(_StreamTracker(addr + size))
        if len(self._trackers) > self.max_trackers:
            self._trackers.pop(0)

    def _launch(self, start: int, now: float) -> None:
        end = start + self.window_bytes
        if any(w.covers(start, 1) and w.end >= end for w in self._windows):
            return                       # already in flight / resident
        window = PrefetchWindow(start, end, ready_at=float("inf"))
        self._windows.append(window)
        if len(self._windows) > self.max_windows:
            self._windows.pop(0)
        ticket = _FillTicket(self, window, now)
        request = MemRequest(
            addr=start, size=self.window_bytes, is_write=False,
            core_id=self.core_id,
            on_complete=ticket.filled,
        )
        self.issued.inc()
        self.fetch_out.send(request)

    def _filled(self, window: PrefetchWindow, now: float,
                launched_at: float) -> None:
        window.ready_at = now
        self.fill_latency.add(now - launched_at)

    # -- snapshot protocol --------------------------------------------------------

    def extra_state(self) -> dict:
        return {"windows": self._windows, "trackers": self._trackers}

    def load_extra_state(self, state: dict) -> None:
        self._windows = list(state["windows"])
        self._trackers = list(state["trackers"])

    # -- introspection ----------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits.value + self.misses.value
        return self.hits.value / total if total else 0.0

    @property
    def resident_windows(self) -> int:
        return len(self._windows)


register_snapshot_class(PrefetchWindow)
register_snapshot_class(_StreamTracker)
