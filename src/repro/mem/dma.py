"""DMA engine for SPM↔SPM and memory↔SPM bulk transfers (paper §3.5.1).

The paper uses DMA for two things we model:

* shared-data movement between neighbouring cores' SPMs on a sub-ring,
  programmed through the SPM's top-256-byte control window;
* instruction-segment prefetch into SPM for thread gangs running the same
  kernel (paper §3.1.2).

A transfer is a simulation :class:`~repro.sim.engine.Process`: it reserves
the engine, moves data at ``bytes_per_cycle``, then fires completion.  Data
is *actually copied* when both endpoints are Scratchpads, so functional
tests can verify payloads.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import MemoryError_
from ..sim.component import Component
from ..sim.engine import Process, Simulator
from ..sim.stats import StatsRegistry
from .request import HopTrace
from .spm import Scratchpad

__all__ = ["DmaEngine"]


class DmaEngine(Component):
    """One DMA engine (a sub-ring resource, serialised FIFO)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dma",
        bytes_per_cycle: int = 32,
        setup_latency: int = 8,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise MemoryError_("DMA bandwidth must be positive")
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.bytes_per_cycle = bytes_per_cycle
        self.setup_latency = setup_latency
        self._busy_until = 0.0
        self.transfers = self.stats.counter("transfers")
        self.bytes_moved = self.stats.counter("bytes")
        self.queue_wait = self.stats.accumulator("queue_wait")

    def on_reset(self) -> None:
        self._busy_until = 0.0

    def transfer_cycles(self, size: int) -> int:
        """Pure transfer time for ``size`` bytes (excluding queueing)."""
        return self.setup_latency + -(-size // self.bytes_per_cycle)

    def copy(
        self,
        src: Scratchpad,
        dst: Scratchpad,
        src_addr: int,
        dst_addr: int,
        size: int,
        trace: Optional[HopTrace] = None,
    ) -> Process:
        """Start an SPM→SPM copy; returns the transfer process.

        A caller-supplied ``trace`` gets the transfer's queue and transfer
        legs stamped as closed ``dma_queue``/``dma_xfer`` records.
        """
        if size <= 0:
            raise MemoryError_(f"DMA size must be positive, got {size}")

        def worker() -> Generator:
            # Serialise on the engine.
            now = self.sim.now
            wait = max(0.0, self._busy_until - now)
            duration = self.transfer_cycles(size)
            self._busy_until = now + wait + duration
            self.queue_wait.add(wait)
            if trace is not None:
                trace.stamp("dma_queue", self.path, now, now + wait)
                trace.stamp("dma_xfer", self.path, now + wait,
                            now + wait + duration)
            yield wait + duration
            payload = src.read_bytes(src_addr, size)
            dst.write_bytes(dst_addr, payload)
            self.transfers.inc()
            self.bytes_moved.inc(size)
            return size

        return self.sim.spawn(worker(), f"{self.name}.copy")

    def kick_from_descriptor(self, src: Scratchpad, dst: Scratchpad) -> Process:
        """Start the transfer programmed in ``src``'s control registers.

        Models software writing {src, dst, size} into the SPM's top-256-byte
        window and then kicking the engine.
        """
        src_addr, dst_addr, size = src.dma_descriptor()
        return self.copy(src, dst, src_addr, dst_addr, size)

    def prefetch_fill(self, dst: Scratchpad, dst_addr: int, payload: bytes,
                      trace: Optional[HopTrace] = None) -> Process:
        """Memory→SPM fill (instruction-segment prefetch, §3.1.2).

        Main memory is functionally a byte source here; timing charges the
        same engine bandwidth.
        """
        if not payload:
            raise MemoryError_("prefetch payload must be non-empty")

        def worker() -> Generator:
            now = self.sim.now
            wait = max(0.0, self._busy_until - now)
            duration = self.transfer_cycles(len(payload))
            self._busy_until = now + wait + duration
            self.queue_wait.add(wait)
            if trace is not None:
                trace.stamp("dma_queue", self.path, now, now + wait)
                trace.stamp("dma_xfer", self.path, now + wait,
                            now + wait + duration)
            yield wait + duration
            dst.write_bytes(dst_addr, payload)
            self.transfers.inc()
            self.bytes_moved.inc(len(payload))
            return len(payload)

        return self.sim.spawn(worker(), f"{self.name}.prefetch")
