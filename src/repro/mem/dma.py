"""DMA engine for SPM↔SPM and memory↔SPM bulk transfers (paper §3.5.1).

The paper uses DMA for two things we model:

* shared-data movement between neighbouring cores' SPMs on a sub-ring,
  programmed through the SPM's top-256-byte control window;
* instruction-segment prefetch into SPM for thread gangs running the same
  kernel (paper §3.1.2).

A transfer runs as an explicit-state flight returning a
:class:`~repro.sim.engine.Completion`: it reserves the engine, moves data
at ``bytes_per_cycle``, then fires completion.  Data is *actually copied*
when both endpoints are Scratchpads, so functional tests can verify
payloads.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MemoryError_
from ..sim.component import Component
from ..sim.engine import Completion, Simulator
from ..sim.snapshot import snapshotable
from ..sim.stats import StatsRegistry
from .request import HopTrace
from .spm import Scratchpad

__all__ = ["DmaEngine"]


@snapshotable
class _DmaTransfer:
    """Explicit-state form of the transfer process (one per copy/fill).

    ``src`` is None for memory→SPM fills (``payload`` carries the bytes);
    SPM→SPM copies read ``src`` at completion time, as the old generator
    did.
    """

    __slots__ = ("engine", "src", "dst", "src_addr", "dst_addr", "size",
                 "payload", "trace", "completion", "phase")

    def __init__(self, engine: "DmaEngine", src: Optional[Scratchpad],
                 dst: Scratchpad, src_addr: int, dst_addr: int, size: int,
                 payload: Optional[bytes], trace: Optional[HopTrace],
                 completion: Completion) -> None:
        self.engine = engine
        self.src = src
        self.dst = dst
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.size = size
        self.payload = payload
        self.trace = trace
        self.completion = completion
        self.phase = "reserve"

    def _step(self, _payload=None) -> None:
        engine = self.engine
        sim = engine.sim
        if self.phase == "reserve":
            # Serialise on the engine.
            now = sim.now
            wait = max(0.0, engine._busy_until - now)
            duration = engine.transfer_cycles(self.size)
            engine._busy_until = now + wait + duration
            engine.queue_wait.add(wait)
            if self.trace is not None:
                self.trace.stamp("dma_queue", engine.path, now, now + wait)
                self.trace.stamp("dma_xfer", engine.path, now + wait,
                                 now + wait + duration)
            self.phase = "move"
            sim.schedule(wait + duration, self._step, None)
            return
        data = (self.payload if self.payload is not None
                else self.src.read_bytes(self.src_addr, self.size))
        self.dst.write_bytes(self.dst_addr, data)
        engine.transfers.inc()
        engine.bytes_moved.inc(self.size)
        self.completion.finish(self.size)


class DmaEngine(Component):
    """One DMA engine (a sub-ring resource, serialised FIFO)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dma",
        bytes_per_cycle: int = 32,
        setup_latency: int = 8,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise MemoryError_("DMA bandwidth must be positive")
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.bytes_per_cycle = bytes_per_cycle
        self.setup_latency = setup_latency
        self._busy_until = 0.0
        self.transfers = self.stats.counter("transfers")
        self.bytes_moved = self.stats.counter("bytes")
        self.queue_wait = self.stats.accumulator("queue_wait")

    def on_reset(self) -> None:
        self._busy_until = 0.0

    def transfer_cycles(self, size: int) -> int:
        """Pure transfer time for ``size`` bytes (excluding queueing)."""
        return self.setup_latency + -(-size // self.bytes_per_cycle)

    def copy(
        self,
        src: Scratchpad,
        dst: Scratchpad,
        src_addr: int,
        dst_addr: int,
        size: int,
        trace: Optional[HopTrace] = None,
    ) -> Completion:
        """Start an SPM→SPM copy; returns the transfer handle.

        A caller-supplied ``trace`` gets the transfer's queue and transfer
        legs stamped as closed ``dma_queue``/``dma_xfer`` records.
        """
        if size <= 0:
            raise MemoryError_(f"DMA size must be positive, got {size}")
        completion = Completion(self.sim, f"{self.name}.copy")
        transfer = _DmaTransfer(self, src, dst, src_addr, dst_addr, size,
                                None, trace, completion)
        self.sim.schedule(0, transfer._step, None)
        return completion

    def kick_from_descriptor(self, src: Scratchpad,
                             dst: Scratchpad) -> Completion:
        """Start the transfer programmed in ``src``'s control registers.

        Models software writing {src, dst, size} into the SPM's top-256-byte
        window and then kicking the engine.
        """
        src_addr, dst_addr, size = src.dma_descriptor()
        return self.copy(src, dst, src_addr, dst_addr, size)

    def prefetch_fill(self, dst: Scratchpad, dst_addr: int, payload: bytes,
                      trace: Optional[HopTrace] = None) -> Completion:
        """Memory→SPM fill (instruction-segment prefetch, §3.1.2).

        Main memory is functionally a byte source here; timing charges the
        same engine bandwidth.
        """
        if not payload:
            raise MemoryError_("prefetch payload must be non-empty")
        completion = Completion(self.sim, f"{self.name}.prefetch")
        transfer = _DmaTransfer(self, None, dst, 0, dst_addr, len(payload),
                                payload, trace, completion)
        self.sim.schedule(0, transfer._step, None)
        return completion

    # -- snapshot protocol -------------------------------------------------------

    def extra_state(self) -> dict:
        return {"busy_until": self._busy_until}

    def load_extra_state(self, state: dict) -> None:
        self._busy_until = state["busy_until"]
