"""Memory subsystem: caches, SPM, MACT, DRAM, DMA, request plumbing."""

from .cache import AccessResult, Cache
from .controller import MemoryController, MemorySystem
from .dma import DmaEngine
from .dram import DramBank, DramChannel
from .hierarchy import CacheHierarchy, HierarchyResult
from .mact import MACT, Batch, MACTLine
from .pim import PimMatchResult, PimMatchUnit
from .prefetch import PrefetchWindow, StreamPrefetcher
from .request import MemRequest, Priority
from .spm import Scratchpad, SpmAddressMap, SPM_REGION_BASE

__all__ = [
    "Cache",
    "AccessResult",
    "Scratchpad",
    "SpmAddressMap",
    "SPM_REGION_BASE",
    "MemRequest",
    "Priority",
    "MACT",
    "MACTLine",
    "Batch",
    "DramBank",
    "DramChannel",
    "MemoryController",
    "MemorySystem",
    "DmaEngine",
    "CacheHierarchy",
    "HierarchyResult",
    "StreamPrefetcher",
    "PrefetchWindow",
    "PimMatchUnit",
    "PimMatchResult",
]
