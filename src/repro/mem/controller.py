"""Memory controller: address interleaving + request admission.

Four controllers sit on the main ring (paper Fig 4).  Each wraps one
:class:`~repro.mem.dram.DramChannel`.  ``MemoryController.submit`` accepts
a :class:`~repro.mem.request.MemRequest`, services it through the channel
timing model and schedules its completion on the simulator.

``MemorySystem`` is the chip-level front: it interleaves physical
addresses across controllers at cache-line granularity so consecutive
lines hit different channels (standard many-core practice, and what makes
the 4-channel aggregate bandwidth reachable).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import MemoryConfig
from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.stats import StatsRegistry
from .dram import DramChannel
from .request import MemRequest

__all__ = ["MemoryController", "MemorySystem"]

INTERLEAVE_BYTES = 64


class MemoryController(Component):
    """One controller + DDR channel pair on the main ring."""

    def __init__(
        self,
        controller_id: int,
        sim: Simulator,
        config: Optional[MemoryConfig] = None,
        frequency_ghz: float = 1.5,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(f"mc{controller_id}", parent=parent, sim=sim,
                         registry=registry)
        self.controller_id = controller_id
        self.config = config if config is not None else MemoryConfig()
        self.channel = DramChannel(
            controller_id, self.config, frequency_ghz, self.stats
        )
        self.queued = self.stats.counter("requests")

    # -- snapshot protocol ----------------------------------------------------
    # The channel/bank objects are structural (rebuilt from config); only
    # their timing registers travel.

    def extra_state(self) -> dict:
        channel = self.channel
        return {
            "bus_free": channel._bus_free,
            "banks": [
                (bank.open_row, bank.busy_until, bank.row_hits,
                 bank.row_misses)
                for bank in channel.banks
            ],
        }

    def load_extra_state(self, state: dict) -> None:
        channel = self.channel
        channel._bus_free = state["bus_free"]
        for bank, (open_row, busy_until, hits, misses) in zip(
                channel.banks, state["banks"]):
            bank.open_row = open_row
            bank.busy_until = busy_until
            bank.row_hits = hits
            bank.row_misses = misses

    def submit(self, request: MemRequest,
               carried: Sequence[MemRequest] = ()) -> float:
        """Admit a request; returns (and schedules) its finish time.

        ``carried`` are the transactions riding this access (the member
        requests of a MACT batch, or the original request when ``request``
        is a chip-forged proxy) — their hop chains advance into the
        ``dram`` stage here.
        """
        self.queued.inc()
        now = self.sim.now
        if request.trace is not None:
            request.trace.advance("dram", self.path, now)
        for rider in carried:
            if rider.trace is not None:
                rider.trace.advance("dram", self.path, now)
        detail = self.channel.access_detail(request.addr, request.size, now)
        self.sim.schedule_at(detail.finish, request.complete, detail.finish)
        return detail.finish


class MemorySystem(Component):
    """All memory controllers of the chip, with line interleaving."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[MemoryConfig] = None,
        frequency_ghz: float = 1.5,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: str = "mem",
    ) -> None:
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.config = config if config is not None else MemoryConfig()
        self.controllers = [
            MemoryController(i, sim, self.config, frequency_ghz, parent=self)
            for i in range(self.config.channels)
        ]

    def controller_for(self, addr: int) -> MemoryController:
        index = (addr // INTERLEAVE_BYTES) % len(self.controllers)
        return self.controllers[index]

    def submit(self, request: MemRequest,
               carried: Sequence[MemRequest] = ()) -> float:
        return self.controller_for(request.addr).submit(request, carried)

    @property
    def total_requests(self) -> int:
        return sum(mc.queued.value for mc in self.controllers)

    @property
    def total_bytes(self) -> int:
        return sum(mc.channel.bytes_moved.value for mc in self.controllers)

    def mean_latency(self) -> float:
        accs = [mc.channel.latency for mc in self.controllers]
        total = sum(a.count for a in accs)
        if not total:
            return 0.0
        return sum(a.mean * a.count for a in accs) / total

    def bandwidth_utilization(self, now: float) -> float:
        if not self.controllers:
            return 0.0
        return sum(c.channel.utilization(now) for c in self.controllers) / len(
            self.controllers
        )
