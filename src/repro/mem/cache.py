"""Set-associative cache model with LRU replacement.

This is a *tag-only* timing model: it tracks which lines are resident (and
dirty) but not their data — the functional state lives in
:class:`~repro.isa.machine.FlatMemory` or the workload models.  Used for
the TCG's 16 KB I/D caches and for the Xeon baseline's three-level
hierarchy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..sim.stats import StatsRegistry

__all__ = ["Cache", "AccessResult"]


class AccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "victim_addr", "victim_dirty")

    def __init__(self, hit: bool, victim_addr: Optional[int] = None,
                 victim_dirty: bool = False) -> None:
        self.hit = hit
        self.victim_addr = victim_addr
        self.victim_dirty = victim_dirty

    def __repr__(self) -> str:  # pragma: no cover
        return f"AccessResult(hit={self.hit}, victim={self.victim_addr})"


class Cache:
    """LRU set-associative cache with write-back, write-allocate policy."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int = 64,
        ways: int = 4,
        registry: Optional[StatsRegistry] = None,
        hit_latency: float = 0.0,
    ) -> None:
        if size_bytes % (line_bytes * ways):
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by line*ways"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (line_bytes * ways)
        # each set: OrderedDict tag -> dirty flag; first item is LRU
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        reg = registry if registry is not None else StatsRegistry()
        self.hits = reg.counter(f"{name}.hits")
        self.misses = reg.counter(f"{name}.misses")
        self.evictions = reg.counter(f"{name}.evictions")
        self.writebacks = reg.counter(f"{name}.writebacks")

    # -- address helpers -----------------------------------------------------

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def _line_addr(self, set_idx: int, tag: int) -> int:
        return (tag * self.num_sets + set_idx) * self.line_bytes

    # -- operations ----------------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Look up ``addr``; on miss, allocate (evicting LRU if needed)."""
        set_idx, tag = self._index(addr)
        line_set = self._sets[set_idx]
        if tag in line_set:
            self.hits.inc()
            line_set.move_to_end(tag)
            if is_write:
                line_set[tag] = True
            return AccessResult(hit=True)

        self.misses.inc()
        victim_addr = None
        victim_dirty = False
        if len(line_set) >= self.ways:
            victim_tag, victim_dirty = line_set.popitem(last=False)
            victim_addr = self._line_addr(set_idx, victim_tag)
            self.evictions.inc()
            if victim_dirty:
                self.writebacks.inc()
        line_set[tag] = is_write
        return AccessResult(hit=False, victim_addr=victim_addr,
                            victim_dirty=victim_dirty)

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no stats)."""
        set_idx, tag = self._index(addr)
        return tag in self._sets[set_idx]

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``; returns True if it was present."""
        set_idx, tag = self._index(addr)
        return self._sets[set_idx].pop(tag, None) is not None

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines dropped."""
        dirty = 0
        for line_set in self._sets:
            dirty += sum(1 for d in line_set.values() if d)
            line_set.clear()
        return dirty

    # -- snapshot protocol -----------------------------------------------------

    def state_dict(self) -> dict:
        """Resident lines in LRU order (counters live in the registry)."""
        return {"sets": [list(line_set.items()) for line_set in self._sets]}

    def load_state(self, state: dict) -> None:
        saved = state["sets"]
        if len(saved) != len(self._sets):
            raise ConfigError(
                f"{self.name}: checkpoint has {len(saved)} sets, "
                f"cache has {len(self._sets)}")
        self._sets = [OrderedDict((int(tag), bool(dirty))
                                  for tag, dirty in line_set)
                      for line_set in saved]

    # -- introspection ---------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits.value + self.misses.value

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses.value / total if total else 0.0

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Cache({self.name}, {self.size_bytes}B, {self.ways}-way, "
            f"miss_ratio={self.miss_ratio:.3f})"
        )
