"""DDR4 channel/bank timing model (paper §3.5.3).

Not a JEDEC state machine: each bank keeps an open-row register and a
next-free time; each channel keeps a data-bus next-free time.  A request's
service latency is row-hit or row-miss timing plus any bank/bus queueing
delay.  With the default config (4 channels x 128-bit @ 2133 MT/s) the
aggregate peak bandwidth matches the paper's 136.5 GB/s.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from ..config import MemoryConfig
from ..sim.stats import StatsRegistry

__all__ = ["DramBank", "DramChannel", "AccessDetail"]


class AccessDetail(NamedTuple):
    """Timing breakdown of one channel access."""

    finish: float       # data-back time
    bank_wait: float    # queueing behind the bank's busy window
    bus_wait: float     # queueing behind the shared data bus
    row_hit: bool

ROW_BYTES = 2048  # open-row (page) size per bank


class DramBank:
    """One DRAM bank: open-row tracking + busy-until bookkeeping.

    Occupancy (how long the bank is tied up) is much shorter than the
    data-return latency — a bank pipelines back-to-back row hits at tCCD
    spacing while each access still takes a full CAS latency to deliver.
    """

    __slots__ = ("open_row", "busy_until", "row_hits", "row_misses")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until = 0.0
        self.row_hits = 0
        self.row_misses = 0

    def access(self, row: int, now: float, hit_lat: int, miss_lat: int,
               hit_occ: int, miss_occ: int) -> Tuple[float, bool]:
        """Service an access to ``row``; returns (data_time, row_hit)."""
        start = max(now, self.busy_until)
        hit = row == self.open_row
        if hit:
            self.row_hits += 1
            finish = start + hit_lat
            self.busy_until = start + hit_occ
        else:
            self.row_misses += 1
            finish = start + miss_lat
            self.busy_until = start + miss_occ
            self.open_row = row
        return finish, hit


class DramChannel:
    """One 128-bit DDR4 channel with banks and a shared data bus."""

    def __init__(
        self,
        channel_id: int,
        config: MemoryConfig,
        frequency_ghz: float = 1.5,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        self.channel_id = channel_id
        self.config = config
        self.banks = [DramBank() for _ in range(config.banks_per_channel)]
        self._bus_free = 0.0
        # Bytes one core-cycle of bus time moves: width * (MT/s / core-Hz).
        transfers_per_cycle = config.data_rate_mts * 1e6 / (frequency_ghz * 1e9)
        self.bytes_per_cycle = (config.channel_width_bits / 8) * transfers_per_cycle
        reg = registry if registry is not None else StatsRegistry()
        self.requests = reg.counter(f"dram{channel_id}.requests")
        self.bytes_moved = reg.counter(f"dram{channel_id}.bytes")
        self.latency = reg.accumulator(f"dram{channel_id}.latency")
        self.bank_wait = reg.accumulator(f"dram{channel_id}.bank_wait")
        self.bus_wait = reg.accumulator(f"dram{channel_id}.bus_wait")

    def _locate(self, addr: int) -> Tuple[DramBank, int]:
        row_global = addr // ROW_BYTES
        # Hashed bank interleaving (golden-ratio multiply), as real
        # controllers do: power-of-two-strided regions would otherwise all
        # land on one bank and serialise the whole channel.
        bank_idx = ((row_global * 0x9E3779B1) >> 16) % len(self.banks)
        return self.banks[bank_idx], row_global

    def access(self, addr: int, size: int, now: float) -> float:
        """Service one access; returns its finish (data-back) time."""
        return self.access_detail(addr, size, now).finish

    def access_detail(self, addr: int, size: int, now: float) -> AccessDetail:
        """Service one access; returns its full timing breakdown."""
        bank, row = self._locate(addr)
        bank_wait = max(0.0, bank.busy_until - now)
        data_ready, hit = bank.access(
            row, now, self.config.row_hit_latency, self.config.row_miss_latency,
            self.config.row_hit_occupancy, self.config.row_miss_occupancy,
        )
        # Data transfer occupies the channel bus after the bank is ready.
        burst_cycles = max(1.0, size / self.bytes_per_cycle)
        start_xfer = max(data_ready, self._bus_free)
        finish = start_xfer + burst_cycles
        self._bus_free = finish
        self.requests.inc()
        self.bytes_moved.inc(size)
        self.latency.add(finish - now)
        self.bank_wait.add(bank_wait)
        self.bus_wait.add(start_xfer - data_ready)
        return AccessDetail(finish, bank_wait, start_xfer - data_ready, hit)

    @property
    def row_hit_ratio(self) -> float:
        hits = sum(b.row_hits for b in self.banks)
        misses = sum(b.row_misses for b in self.banks)
        total = hits + misses
        return hits / total if total else 0.0

    def utilization(self, now: float) -> float:
        """Approximate bus utilisation: bytes moved / peak bytes in [0, now]."""
        if now <= 0:
            return 0.0
        return min(1.0, self.bytes_moved.value / (self.bytes_per_cycle * now))

    def __repr__(self) -> str:  # pragma: no cover
        return f"DramChannel({self.channel_id}, reqs={self.requests.value})"
