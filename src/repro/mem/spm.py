"""ScratchPad Memory (paper §3.5.1).

Each TCG core owns a 128 KB SPM that is:

* **unified-addressed** — it occupies a window of the global address
  space, so the LSQ can route an access to SPM vs. cache/memory purely by
  address range (:class:`SpmAddressMap`);
* **programmer-managed** — no tags, no misses inside the window; an access
  outside any allocated region is the *programmer's* problem, which we
  surface as an error;
* **shared within a sub-ring** — remote SPM accesses travel over the ring,
  bulk transfers use the DMA engine (:mod:`repro.mem.dma`);
* the top 256 bytes are DMA control registers (source, destination, size,
  kick).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import MemoryError_
from ..sim.component import Component
from ..sim.stats import StatsRegistry
from .request import MemRequest

__all__ = ["Scratchpad", "SpmAddressMap", "SPM_REGION_BASE"]

# Global address-map constants: SPMs live in a dedicated high region so the
# LSQ range check is a single comparison (paper: "LSQ units check the
# address and judge whether to send the requirement to the cache or SPM").
SPM_REGION_BASE = 0x4000_0000_0000

# DMA control-register offsets inside the top 256-byte window.
DMA_SRC_OFFSET = 0
DMA_DST_OFFSET = 8
DMA_SIZE_OFFSET = 16
DMA_KICK_OFFSET = 24


class Scratchpad(Component):
    """One core's SPM: data array + control-register window."""

    def __init__(
        self,
        core_id: int,
        size_bytes: int = 128 * 1024,
        control_bytes: int = 256,
        base_addr: Optional[int] = None,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: Optional[str] = None,
    ) -> None:
        if control_bytes >= size_bytes:
            raise MemoryError_("SPM control window larger than the SPM")
        super().__init__(name if name is not None else f"spm{core_id}",
                         parent=parent, registry=registry)
        self.core_id = core_id
        self.size_bytes = size_bytes
        self.control_bytes = control_bytes
        self.base_addr = (
            base_addr if base_addr is not None
            else SPM_REGION_BASE + core_id * size_bytes
        )
        self._data = bytearray(size_bytes)
        self.reads = self.stats.counter("reads")
        self.writes = self.stats.counter("writes")
        self.remote_accesses = self.stats.counter("remote_accesses")

    def on_reset(self) -> None:
        self._data = bytearray(self.size_bytes)

    # -- address ranges --------------------------------------------------------

    @property
    def data_bytes(self) -> int:
        """Usable data capacity (size minus the control window)."""
        return self.size_bytes - self.control_bytes

    @property
    def control_base(self) -> int:
        """First address of the control-register window (top 256 B)."""
        return self.base_addr + self.size_bytes - self.control_bytes

    def contains(self, addr: int) -> bool:
        return self.base_addr <= addr < self.base_addr + self.size_bytes

    def is_control(self, addr: int) -> bool:
        return self.control_base <= addr < self.base_addr + self.size_bytes

    def _offset(self, addr: int, size: int) -> int:
        if not self.contains(addr) or not self.contains(addr + size - 1):
            raise MemoryError_(
                f"SPM{self.core_id}: access {addr:#x}+{size} outside "
                f"[{self.base_addr:#x}, {self.base_addr + self.size_bytes:#x})"
            )
        return addr - self.base_addr

    # -- data access -----------------------------------------------------------

    def read(self, addr: int, size: int) -> int:
        off = self._offset(addr, size)
        self.reads.inc()
        return int.from_bytes(self._data[off:off + size], "little")

    def write(self, addr: int, value: int, size: int) -> None:
        off = self._offset(addr, size)
        self.writes.inc()
        self._data[off:off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, addr: int, size: int) -> bytes:
        off = self._offset(addr, size)
        self.reads.inc()
        return bytes(self._data[off:off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        off = self._offset(addr, len(data))
        self.writes.inc()
        self._data[off:off + len(data)] = data

    def serve_remote(self, request: MemRequest, now: float,
                     latency: float) -> float:
        """Account a remote core's access landing here; returns ``latency``.

        The chip's remote-SPM path calls this at array-access time so the
        access is attributed to the owning SPM (count + hop stamp).
        """
        self.remote_accesses.inc()
        request.trace_advance("spm", self.path, now)
        return latency

    # -- DMA control registers ---------------------------------------------------

    def read_control(self, offset: int) -> int:
        """Read a 64-bit control register at ``offset`` in the window."""
        return self.read(self.control_base + offset, 8)

    def write_control(self, offset: int, value: int) -> None:
        self.write(self.control_base + offset, value, 8)

    def dma_descriptor(self) -> Tuple[int, int, int]:
        """Current (src, dst, size) programmed into the control window."""
        return (
            self.read_control(DMA_SRC_OFFSET),
            self.read_control(DMA_DST_OFFSET),
            self.read_control(DMA_SIZE_OFFSET),
        )

    # -- snapshot protocol ------------------------------------------------------

    def extra_state(self) -> dict:
        return {"data": self._data}

    def load_extra_state(self, state: dict) -> None:
        data = state["data"]
        if len(data) != self.size_bytes:
            raise MemoryError_(
                f"SPM{self.core_id}: checkpoint holds {len(data)} bytes, "
                f"SPM is {self.size_bytes}")
        self._data = bytearray(data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Scratchpad(core={self.core_id}, base={self.base_addr:#x})"


class SpmAddressMap:
    """Routes a global address to {local SPM | remote SPM | main memory}.

    One instance per chip; cores ask it where a load/store should go —
    this models the paper's LSQ address check.
    """

    def __init__(self, spms: Dict[int, Scratchpad]) -> None:
        self._spms = dict(spms)
        if not self._spms:
            self._region_lo = self._region_hi = 0
            self._uniform_size: Optional[int] = None
            return
        self._region_lo = min(s.base_addr for s in self._spms.values())
        self._region_hi = max(
            s.base_addr + s.size_bytes for s in self._spms.values()
        )
        # The default layout places SPM i at base + i*size; detect it so
        # owner lookup is O(1) — the LSQ does this with one shift in HW.
        sizes = {s.size_bytes for s in self._spms.values()}
        size = next(iter(sizes))
        uniform = len(sizes) == 1 and all(
            s.base_addr == SPM_REGION_BASE + s.core_id * size
            for s in self._spms.values()
        )
        self._uniform_size = size if uniform else None

    def owner_of(self, addr: int) -> Optional[Scratchpad]:
        """The SPM owning ``addr``, or None for main-memory addresses."""
        if not self._region_lo <= addr < self._region_hi:
            return None
        if self._uniform_size is not None:
            core_id = (addr - SPM_REGION_BASE) // self._uniform_size
            return self._spms.get(core_id)
        for spm in self._spms.values():
            if spm.contains(addr):
                return spm
        return None

    def route(self, addr: int, core_id: int) -> str:
        """One of ``"spm-local"``, ``"spm-remote"``, ``"mem"``."""
        owner = self.owner_of(addr)
        if owner is None:
            return "mem"
        return "spm-local" if owner.core_id == core_id else "spm-remote"

    def spm(self, core_id: int) -> Scratchpad:
        return self._spms[core_id]

    def __len__(self) -> int:
        return len(self._spms)
