"""Multi-level cache hierarchy for the Xeon baseline (paper Fig 1c/1d).

Three inclusive levels (per-core L1I/L1D + L2, shared LLC).  ``access``
walks the levels and returns where the line was found and the cumulative
latency — exactly the two quantities Fig 1(c)/(d) plots per level.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional

from ..config import XeonConfig
from ..sim.component import Component
from ..sim.stats import StatsRegistry
from .cache import Cache
from .request import MemRequest

__all__ = ["HierarchyResult", "CacheHierarchy"]


class HierarchyResult(NamedTuple):
    level: str          # "L1" | "L2" | "LLC" | "MEM"
    latency: int        # total cycles to data
    l1_hit: bool


class CacheHierarchy(Component):
    """One core's slice of the Xeon cache hierarchy.

    The LLC is shared: pass the same :class:`Cache` object to every
    per-core hierarchy.
    """

    def __init__(
        self,
        core_id: int,
        config: Optional[XeonConfig] = None,
        shared_llc: Optional[Cache] = None,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: Optional[str] = None,
    ) -> None:
        cfg = config if config is not None else XeonConfig()
        super().__init__(name if name is not None else f"core{core_id}",
                         parent=parent, registry=registry)
        self.config = cfg
        self.core_id = core_id
        line = cfg.cache_line_bytes
        self.l1d = Cache("l1d", cfg.l1d_bytes, line, ways=8, registry=self.stats,
                         hit_latency=cfg.l1_hit_latency)
        self.l1i = Cache("l1i", cfg.l1i_bytes, line, ways=8, registry=self.stats,
                         hit_latency=cfg.l1_hit_latency)
        self.l2 = Cache("l2", cfg.l2_bytes, line, ways=8, registry=self.stats,
                        hit_latency=cfg.l2_hit_latency)
        self._llc_private = shared_llc is None
        self.llc = shared_llc if shared_llc is not None else Cache(
            "llc", cfg.llc_bytes, line, ways=16, registry=self.stats,
            hit_latency=cfg.llc_hit_latency,
        )

    # -- snapshot protocol ------------------------------------------------------
    # A shared LLC is serialised once by its owner (XeonSystem), not per
    # hierarchy.

    def extra_state(self) -> dict:
        state = {
            "l1d": self.l1d.state_dict(),
            "l1i": self.l1i.state_dict(),
            "l2": self.l2.state_dict(),
        }
        if self._llc_private:
            state["llc"] = self.llc.state_dict()
        return state

    def load_extra_state(self, state: dict) -> None:
        self.l1d.load_state(state["l1d"])
        self.l1i.load_state(state["l1i"])
        self.l2.load_state(state["l2"])
        if self._llc_private and "llc" in state:
            self.llc.load_state(state["llc"])

    @staticmethod
    def make_shared_llc(config: Optional[XeonConfig] = None,
                        registry: Optional[StatsRegistry] = None) -> Cache:
        cfg = config if config is not None else XeonConfig()
        return Cache("llc", cfg.llc_bytes, cfg.cache_line_bytes, ways=16,
                     registry=registry, hit_latency=cfg.llc_hit_latency)

    def access(self, addr: int, is_write: bool = False,
               is_instruction: bool = False) -> HierarchyResult:
        """Data walk L1 → L2 → LLC → memory with allocation on each miss."""
        cfg = self.config
        l1 = self.l1i if is_instruction else self.l1d
        if l1.access(addr, is_write).hit:
            return HierarchyResult("L1", cfg.l1_hit_latency, True)
        if self.l2.access(addr, is_write).hit:
            return HierarchyResult("L2", cfg.l2_hit_latency, False)
        if self.llc.access(addr, is_write).hit:
            return HierarchyResult("LLC", cfg.llc_hit_latency, False)
        return HierarchyResult("MEM", cfg.dram_latency, False)

    def access_traced(self, addr: int, request: MemRequest, now: float,
                      is_write: bool = False,
                      is_instruction: bool = False) -> HierarchyResult:
        """:meth:`access`, plus per-level hop attribution on the request.

        Each probed level gets one closed hop whose duration is that
        level's marginal latency contribution, so the walk's hops sum to
        the returned total latency.
        """
        cfg = self.config
        result = self.access(addr, is_write, is_instruction)
        trace = request.trace
        if trace is None:
            return result
        l1 = self.l1i if is_instruction else self.l1d
        boundaries = [("cache", f"{self.path}.{l1.name}", cfg.l1_hit_latency)]
        if result.level != "L1":
            boundaries.append(("cache", f"{self.path}.l2", cfg.l2_hit_latency))
        if result.level in ("LLC", "MEM"):
            boundaries.append(("cache", f"{self.path}.llc", cfg.llc_hit_latency))
        if result.level == "MEM":
            boundaries.append(("dram", f"{self.path}.mem", cfg.dram_latency))
        prev = 0.0
        for stage, component, cumulative in boundaries:
            trace.stamp(stage, component, now + prev, now + cumulative)
            prev = cumulative
        return result

    def miss_ratios(self) -> Dict[str, float]:
        """Per-level miss ratios {L1, L2, LLC} (L1 = data side)."""
        return {
            "L1": self.l1d.miss_ratio,
            "L2": self.l2.miss_ratio,
            "LLC": self.llc.miss_ratio,
        }
