"""Per-stage latency attribution from hop-stamped transactions.

The chip records every completed traced request into a
:class:`LatencyBreakdown`: each closed hop lands in a per-component
accumulator (``<component>.hop.<stage>``) and histogram
(``<component>.hophist.<stage>``) registered in the chip's root stats
registry, so the breakdown flows into ``RunOutcome.stats`` and nests
under the component tree in ``RunRecord.stats_tree`` like every other
stat.  :func:`rows_from_stats` inverts those key names back into rows for
the CLI's ``report --breakdown`` view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..mem.request import MemRequest
from ..sim.stats import StatsRegistry
from .tables import render_table

__all__ = [
    "DEFAULT_EDGES",
    "BreakdownRow",
    "LatencyBreakdown",
    "rows_from_stats",
    "render_breakdown",
    "summarize_breakdown",
]

#: hop-duration histogram bin edges, in cycles
DEFAULT_EDGES: Tuple[float, ...] = (8.0, 32.0, 128.0, 512.0, 2048.0)

_HOP_MARK = ".hop."
_HIST_MARK = ".hophist."


@dataclass
class BreakdownRow:
    """Aggregated time one (component, stage) pair consumed."""

    component: str
    stage: str
    count: int
    mean: float

    @property
    def total(self) -> float:
        return self.count * self.mean


class LatencyBreakdown:
    """Accumulates hop traces of completed requests into registry stats.

    Stats are created lazily per ``(component, stage)`` pair the traffic
    actually visits, so an idle subsystem contributes no keys.  Set
    ``keep_traces`` to retain the recorded requests themselves
    (reconciliation tests inspect the raw hop chains).
    """

    def __init__(self, registry: Optional[StatsRegistry] = None,
                 edges: Sequence[float] = DEFAULT_EDGES) -> None:
        self.registry = registry if registry is not None else StatsRegistry()
        self.edges = tuple(edges)
        self.keep_traces = False
        self.requests: List[MemRequest] = []
        self.recorded = 0
        self._accs: Dict[str, object] = {}
        self._hists: Dict[str, object] = {}

    def record(self, request: MemRequest) -> None:
        """Fold one completed request's closed hops into the stats."""
        trace = request.trace
        if trace is None:
            return
        self.recorded += 1
        if self.keep_traces:
            self.requests.append(request)
        for hop in trace.hops:
            if hop.exit is None:
                continue
            key = f"{hop.component}{_HOP_MARK}{hop.stage}"
            acc = self._accs.get(key)
            if acc is None:
                acc = self.registry.accumulator(key)
                self._accs[key] = acc
                hist_key = f"{hop.component}{_HIST_MARK}{hop.stage}"
                self._hists[key] = self.registry.histogram(hist_key, self.edges)
            acc.add(hop.duration)
            self._hists[key].add(hop.duration)

    def state_dict(self) -> Dict[str, object]:
        """Lazy-key bootstrap + record count (stat values travel with the
        registry; re-creating the lazily-registered stats here is what lets
        the registry restore find them by name)."""
        return {"recorded": self.recorded, "keys": sorted(self._accs)}

    def load_state(self, state: Dict[str, object]) -> None:
        self.recorded = state["recorded"]
        for key in state["keys"]:
            if key in self._accs:
                continue
            component, stage = key.split(_HOP_MARK, 1)
            self._accs[key] = self.registry.accumulator(key)
            self._hists[key] = self.registry.histogram(
                f"{component}{_HIST_MARK}{stage}", self.edges)

    def rows(self) -> List[BreakdownRow]:
        out = []
        for key, acc in self._accs.items():
            component, stage = key.split(_HOP_MARK, 1)
            out.append(BreakdownRow(component, stage, acc.count, acc.mean))
        out.sort(key=lambda r: r.total, reverse=True)
        return out


def rows_from_stats(flat_stats: Mapping[str, float]) -> List[BreakdownRow]:
    """Recover breakdown rows from a flat stats dump.

    Accumulator snapshots emit ``<component>.hop.<stage>.count`` /
    ``.mean`` (etc.) keys; a stage name never contains a dot, which is
    what makes the inversion unambiguous.
    """
    rows = []
    for key, value in flat_stats.items():
        if _HOP_MARK not in key or not key.endswith(".count"):
            continue
        component, suffix = key.split(_HOP_MARK, 1)
        stage = suffix[:-len(".count")]
        if "." in stage:
            continue
        mean = float(flat_stats.get(f"{component}{_HOP_MARK}{stage}.mean", 0.0))
        rows.append(BreakdownRow(component, stage, int(value), mean))
    rows.sort(key=lambda r: r.total, reverse=True)
    return rows


def render_breakdown(rows: Iterable[BreakdownRow],
                     title: str = "Latency breakdown") -> str:
    rows = list(rows)
    grand_total = sum(r.total for r in rows) or 1.0
    table = [
        (r.stage, r.component, str(r.count), f"{r.mean:.1f}",
         f"{r.total:.0f}", f"{100.0 * r.total / grand_total:.1f}%")
        for r in rows
    ]
    return render_table(
        ("stage", "component", "hops", "mean cyc", "total cyc", "share"),
        table, title=title,
    )


def summarize_breakdown(records: Iterable) -> List[BreakdownRow]:
    """Merge breakdown rows across run records (count-weighted means).

    ``records`` is any iterable of objects with a flat ``stats`` mapping
    (e.g. :class:`repro.exp.telemetry.RunRecord`).
    """
    merged: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        stats = getattr(record, "stats", None) or {}
        for row in rows_from_stats(stats):
            slot = merged.setdefault((row.component, row.stage), [0, 0.0])
            slot[0] += row.count
            slot[1] += row.total
    out = [
        BreakdownRow(component, stage, int(count), total / count if count else 0.0)
        for (component, stage), (count, total) in merged.items()
    ]
    out.sort(key=lambda r: r.total, reverse=True)
    return out
