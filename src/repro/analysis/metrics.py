"""Metric helpers shared by the benchmark harness."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["speedup", "geometric_mean", "normalize", "crossover_index"]


def speedup(new: float, baseline: float) -> float:
    """`new / baseline`; raises on a zero baseline."""
    if baseline <= 0:
        raise ConfigError("baseline must be positive")
    return new / baseline


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    values = list(values)
    if not values:
        raise ConfigError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (paper Fig 19's normalisation)."""
    if reference == 0:
        raise ConfigError("cannot normalise to zero")
    return [v / reference for v in values]


def crossover_index(series_a: Sequence[float], series_b: Sequence[float]) -> int:
    """First index where ``series_a`` overtakes ``series_b`` (−1 if never).

    Used for Fig 23: where the SmarCo curve crosses the Xeon curve.
    """
    if len(series_a) != len(series_b):
        raise ConfigError("series must have equal length")
    for i, (a, b) in enumerate(zip(series_a, series_b)):
        if a > b:
            return i
    return -1
