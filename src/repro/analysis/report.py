"""Consolidated experiment report.

Collects the rendered figure/table outputs the benches wrote under
``benchmarks/results/`` into one markdown document — the artifact a
reviewer reads next to EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["EXPERIMENT_ORDER", "collect_results", "build_report"]

# (result-file stem, section heading)
EXPERIMENT_ORDER: List[Tuple[str, str]] = [
    ("fig01_xeon_profile", "Fig 1 — HTC on a conventional processor"),
    ("fig02_cdn", "Fig 2 — CDN service study"),
    ("fig08_granularity", "Fig 8 — memory access granularity"),
    ("fig17_tcg_ipc", "Fig 17 — TCG IPC vs thread count"),
    ("fig18_hdnoc", "Fig 18 — high-density NoC"),
    ("fig19_mact_threshold", "Fig 19 — MACT time threshold"),
    ("fig20_mact", "Fig 20 — MACT vs conventional"),
    ("fig21_scheduler", "Fig 21 — laxity-aware scheduler"),
    ("table1_area_power", "Table 1 — area & power"),
    ("table2_configs", "Table 2 — hardware configurations"),
    ("fig22_comparison", "Fig 22 — SmarCo vs Xeon"),
    ("fig23_scalability", "Fig 23 — scalability"),
    ("fig26_prototype", "Fig 26 — 40nm prototype"),
    ("ablation_topology", "Ablation — NoC topology"),
    ("ablation_directpath", "Ablation — direct datapath"),
    ("ablation_mact_bypass", "Ablation — MACT real-time bypass"),
    ("ablation_inpair_chip", "Ablation — thread scheduling on chip"),
    ("ext_future_work", "Extensions — §7 future work implemented"),
]


def collect_results(results_dir: Path) -> Dict[str, str]:
    """{stem: rendered text} for every result file present."""
    out: Dict[str, str] = {}
    if not results_dir.is_dir():
        return out
    for path in results_dir.glob("*.txt"):
        out[path.stem] = path.read_text().rstrip()
    return out


def build_report(results_dir: Path,
                 title: str = "SmarCo reproduction — experiment report") -> str:
    """Assemble the markdown report (missing sections are noted)."""
    results = collect_results(results_dir)
    lines = [f"# {title}", "",
             "Regenerate the raw outputs with "
             "`pytest benchmarks/ --benchmark-only`.", ""]
    seen = set()
    for stem, heading in EXPERIMENT_ORDER:
        lines.append(f"## {heading}")
        lines.append("")
        if stem in results:
            lines.append("```")
            lines.append(results[stem])
            lines.append("```")
            seen.add(stem)
        else:
            lines.append(f"*not yet generated — run "
                         f"`pytest benchmarks/test_{stem}.py "
                         f"--benchmark-only`*")
        lines.append("")
    extras = sorted(set(results) - seen)
    for stem in extras:
        lines.append(f"## {stem}")
        lines.append("")
        lines.append("```")
        lines.append(results[stem])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
