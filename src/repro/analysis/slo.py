"""Tail-latency SLO analysis of open-loop traffic sweeps.

A ``kind="traffic"`` sweep varies offered load (and arrival process,
balancer, cluster size, seed) over the cluster driver; this module folds
its telemetry into the two artefacts datacenter papers plot:

* the **offered-load-vs-latency curve** — one row per swept operating
  point with p50/p95/p99/p99.9 of the pooled latency distribution (the
  hockey stick: flat until the knee, vertical after it);
* the **SLO-violation curve** — per operating point, the fraction of
  requests whose latency exceeded each SLO target (targets are stated in
  multiples of the calibrated solo service time, so they survive
  recalibration).

Aggregation over seeds follows the same discipline as
:mod:`repro.analysis.winners`: percentiles are never averaged across
runs — the runs' shipped latency samples (evenly-spaced order
statistics) are pooled and one nearest-rank quantile is taken over the
pool via :mod:`repro.analysis.quantiles`.  Violation fractions, being
plain means, do average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .quantiles import DEFAULT_QUANTILES, quantiles
from .tables import render_table

__all__ = [
    "TrafficPoint",
    "traffic_results_from_records",
    "traffic_points",
    "render_traffic",
]


def traffic_results_from_records(records: Iterable[Any]
                                 ) -> List[Dict[str, Any]]:
    """The ``TrafficRunResult`` dicts inside a pile of telemetry records.

    Accepts :class:`~repro.exp.telemetry.RunRecord` objects (their
    ``result`` dicts are inspected) and ignores every other run kind, so
    a mixed ``results/runs/`` directory can be fed in unfiltered.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        result = getattr(record, "result", record)
        if isinstance(result, Mapping) \
                and result.get("type") == "TrafficRunResult":
            out.append(dict(result))
    return out


@dataclass(frozen=True)
class TrafficPoint:
    """One operating point of the sweep, aggregated over its seeds."""

    workload: str
    arrival: str
    balancer: str
    chips: int
    load: float
    runs: int
    requests: int                        # pooled completed requests
    #: pooled nearest-rank quantiles, keyed by q (0.50/0.95/0.99/0.999);
    #: nan when no run shipped samples
    latency: Dict[float, float]
    slo_targets: Tuple[float, ...]
    slo_violations: Tuple[float, ...]    # mean violation fraction per target
    home_hit_rate: float
    throughput_rps: float                # mean over runs


def _group_key(r: Mapping[str, Any]) -> Tuple[str, str, str, int, float]:
    return (str(r.get("workload", "?")), str(r.get("arrival", "?")),
            str(r.get("balancer", "?")), int(r.get("chips", 0)),
            float(r.get("load", float("nan"))))


def traffic_points(results: Iterable[Mapping[str, Any]]) -> List[TrafficPoint]:
    """Fold raw ``TrafficRunResult`` dicts into sorted operating points."""
    groups: Dict[Tuple[str, str, str, int, float], List[Mapping[str, Any]]] = {}
    for r in results:
        groups.setdefault(_group_key(r), []).append(r)

    points: List[TrafficPoint] = []
    for key in sorted(groups):
        workload, arrival, balancer, chips, load = key
        runs = groups[key]
        samples: List[float] = []
        for r in runs:
            samples.extend(float(s) for s in r.get("latency_samples") or ())
        if samples:
            pooled = quantiles(samples, DEFAULT_QUANTILES)
        else:
            pooled = {q: float("nan") for q in DEFAULT_QUANTILES}
        targets = tuple(float(t) for t in runs[0].get("slo_targets") or ())
        viol_sums = [0.0] * len(targets)
        viol_n = 0
        for r in runs:
            v = r.get("slo_violations") or ()
            if tuple(float(t) for t in r.get("slo_targets") or ()) == targets \
                    and len(v) == len(targets):
                for i, frac in enumerate(v):
                    viol_sums[i] += float(frac)
                viol_n += 1
        violations = tuple(s / viol_n for s in viol_sums) if viol_n \
            else tuple(float("nan") for _ in targets)
        n_runs = len(runs)
        points.append(TrafficPoint(
            workload=workload, arrival=arrival, balancer=balancer,
            chips=chips, load=load, runs=n_runs,
            requests=sum(int(r.get("requests_completed", 0)) for r in runs),
            latency=pooled, slo_targets=targets, slo_violations=violations,
            home_hit_rate=sum(float(r.get("home_hit_rate", 0.0))
                              for r in runs) / n_runs,
            throughput_rps=sum(float(r.get("throughput_rps", 0.0))
                               for r in runs) / n_runs,
        ))
    return points


def _cycles(value: float) -> str:
    return "—" if math.isnan(value) else f"{value:,.0f}"


def _frac(value: float) -> str:
    return "—" if math.isnan(value) else f"{value:.1%}"


def render_traffic(results: Iterable[Mapping[str, Any]],
                   title: str = "Offered load vs tail latency "
                                "(cycles, pooled over seeds)") -> str:
    """The traffic chapter ``report`` prints: load curve + SLO curve.

    One row per (workload, arrival, balancer, chips, load) operating
    point, sorted so reading down a block walks up the offered-load axis
    — the latency columns trace the hockey stick, the violation columns
    the SLO cliff.
    """
    points = traffic_points(results)
    if not points:
        return "No traffic sweep runs found."
    rows = []
    for p in points:
        rows.append([
            p.workload, p.arrival, p.balancer, p.chips, f"{p.load:.2f}",
            _cycles(p.latency[0.50]), _cycles(p.latency[0.95]),
            _cycles(p.latency[0.99]), _cycles(p.latency[0.999]),
            f"{p.throughput_rps / 1e6:,.1f}M",
        ])
    text = render_table(
        ["workload", "arrival", "balancer", "chips", "rho",
         "p50", "p95", "p99", "p99.9", "req/s"],
        rows, title=title)

    # SLO-violation curve: targets can differ between sweeps, so emit one
    # table per distinct target vector
    by_targets: Dict[Tuple[float, ...], List[TrafficPoint]] = {}
    for p in points:
        by_targets.setdefault(p.slo_targets, []).append(p)
    for targets in sorted(by_targets):
        if not targets:
            continue
        header = (["workload", "arrival", "balancer", "chips", "rho"]
                  + [f">{t:g}x" for t in targets])
        rows = [[p.workload, p.arrival, p.balancer, p.chips, f"{p.load:.2f}"]
                + [_frac(v) for v in p.slo_violations]
                for p in by_targets[targets]]
        text += "\n\n" + render_table(
            header, rows,
            title="SLO violations: fraction of requests slower than each "
                  "target (in multiples of the solo service time)")
    return text
