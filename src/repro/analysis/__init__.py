"""Analysis helpers: metrics and table rendering for the benches."""

from .breakdown import (
    BreakdownRow,
    LatencyBreakdown,
    render_breakdown,
    rows_from_stats,
    summarize_breakdown,
)
from .metrics import crossover_index, geometric_mean, normalize, speedup
from .quantiles import (
    DEFAULT_QUANTILES,
    ReservoirQuantiles,
    nearest_rank_index,
    quantile,
    quantiles,
    thin_sorted,
)
from .energy import (
    EnergyPoint,
    energy_from_records,
    energy_points,
    render_efficiency,
    render_energy_report,
)
from .report import build_report, collect_results
from .slo import (
    TrafficPoint,
    render_traffic,
    traffic_points,
    traffic_results_from_records,
)
from .tables import render_result, render_series, render_table
from .winners import (
    PolicyCell,
    WinnersMatrix,
    render_winners,
    sched_results_from_records,
    winners_matrix,
)

__all__ = [
    "speedup",
    "geometric_mean",
    "normalize",
    "crossover_index",
    "render_table",
    "render_series",
    "render_result",
    "build_report",
    "collect_results",
    "BreakdownRow",
    "LatencyBreakdown",
    "render_breakdown",
    "rows_from_stats",
    "summarize_breakdown",
    "PolicyCell",
    "WinnersMatrix",
    "winners_matrix",
    "render_winners",
    "sched_results_from_records",
    "DEFAULT_QUANTILES",
    "ReservoirQuantiles",
    "nearest_rank_index",
    "quantile",
    "quantiles",
    "thin_sorted",
    "TrafficPoint",
    "render_traffic",
    "traffic_points",
    "traffic_results_from_records",
    "EnergyPoint",
    "energy_from_records",
    "energy_points",
    "render_energy_report",
    "render_efficiency",
]
