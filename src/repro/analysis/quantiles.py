"""The one percentile implementation in the tree.

Every tail-latency number the repo reports — scheduler p99s
(``repro.sched.scenarios``), the who-wins-where matrix
(``repro.analysis.winners``) and the open-loop traffic layer
(``repro.traffic``) — routes through this module, so a percentile means
the same thing everywhere.

Two regimes:

* :func:`quantile` — **exact ceil-based nearest rank** over a finite
  sample.  The nearest-rank estimator returns the smallest sample value
  x such that at least ``q`` of the sample is <= x, i.e. the order
  statistic at index ``ceil(q * n) - 1``.  (The bug this replaced used
  ``int(q * (n - 1))``, which truncates *downward*: on a 10-sample run
  it reported the 9th value — roughly a p89 — as "p99".)
* :class:`ReservoirQuantiles` — a **bounded-memory streaming sketch**
  for million-request runs.  It is exact while the stream fits in its
  capacity, and degrades to seeded uniform reservoir sampling
  (Algorithm R) beyond it, so estimates stay unbiased and — because the
  replacement draws come from a caller-supplied seeded generator —
  bit-deterministic run-to-run.

:func:`thin_sorted` is the companion for *pooling*: a run that cannot
ship every raw latency ships ``cap`` evenly-spaced order statistics
instead, which preserves the sample's quantile structure far better than
shipping a single pre-computed percentile (a mean of p99s is not a p99
of the pool — see ``analysis.winners``).
"""

from __future__ import annotations

import math
from random import Random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import AnalysisError

__all__ = [
    "DEFAULT_QUANTILES",
    "nearest_rank_index",
    "quantile",
    "quantiles",
    "thin_sorted",
    "ReservoirQuantiles",
]

#: the tail ladder every latency report renders
DEFAULT_QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99, 0.999)


def _check_q(q: float) -> None:
    if not 0.0 < q <= 1.0:
        raise AnalysisError(f"quantile must be in (0, 1], got {q!r}")


def nearest_rank_index(n: int, q: float) -> int:
    """Index of the ceil-based nearest-rank order statistic.

    The smallest index ``i`` (0-based, over a sorted sample of size
    ``n``) such that ``(i + 1) / n >= q``.  For ``q=0.99, n=10`` that is
    index 9 (the maximum) — a 10-sample run has no observation below its
    own maximum that bounds 99% of the data.
    """
    if n <= 0:
        raise AnalysisError("nearest_rank_index needs a non-empty sample")
    _check_q(q)
    return min(n - 1, max(0, math.ceil(q * n) - 1))


def quantile(samples: Sequence[float], q: float,
             *, is_sorted: bool = False) -> float:
    """Exact nearest-rank quantile of a finite sample (raises on empty)."""
    n = len(samples)
    if n == 0:
        raise AnalysisError("cannot take a quantile of an empty sample")
    data = samples if is_sorted else sorted(samples)
    return data[nearest_rank_index(n, q)]


def quantiles(samples: Sequence[float],
              qs: Sequence[float] = DEFAULT_QUANTILES,
              *, is_sorted: bool = False) -> Dict[float, float]:
    """``{q: value}`` for several quantiles over one sort of the sample."""
    if not samples:
        raise AnalysisError("cannot take quantiles of an empty sample")
    data = samples if is_sorted else sorted(samples)
    n = len(data)
    return {q: data[nearest_rank_index(n, q)] for q in qs}


def thin_sorted(sorted_samples: Sequence[float], cap: int) -> List[float]:
    """At most ``cap`` evenly-spaced order statistics of a sorted sample.

    Always keeps the minimum and maximum, so pooled tails are never
    clipped.  With ``len(sorted_samples) <= cap`` the sample is returned
    unchanged — thinning is lossless until it has to lose something.
    """
    if cap < 2:
        raise AnalysisError("thin_sorted needs cap >= 2")
    n = len(sorted_samples)
    if n <= cap:
        return list(sorted_samples)
    # evenly spaced ranks from 0 to n-1 inclusive
    step = (n - 1) / (cap - 1)
    return [sorted_samples[round(i * step)] for i in range(cap)]


class ReservoirQuantiles:
    """Bounded-memory quantile sketch: exact small, reservoir large.

    While the stream fits in ``capacity`` the sketch holds every sample
    and its quantiles are exact nearest-rank.  Past capacity it switches
    to Algorithm R uniform reservoir sampling: each new sample replaces
    a uniformly-chosen resident with probability ``capacity / count``.
    All randomness comes from the caller's ``rng`` (hand it a named
    :class:`~repro.sim.rng.RngTree` stream), so two runs of the same
    seeded stream produce bit-identical sketches.
    """

    __slots__ = ("capacity", "rng", "count", "total", "_samples", "_dirty")

    def __init__(self, capacity: int = 4096,
                 rng: Optional[Random] = None) -> None:
        if capacity < 2:
            raise AnalysisError("reservoir capacity must be >= 2")
        self.capacity = capacity
        self.rng = rng if rng is not None else Random(0)
        self.count = 0
        self.total = 0.0
        self._samples: List[float] = []
        self._dirty = False

    @property
    def exact(self) -> bool:
        """True while no sample has been dropped (quantiles are exact)."""
        return self.count <= self.capacity

    @property
    def mean(self) -> float:
        """Exact running mean of the *whole* stream (never sampled)."""
        return self.total / self.count if self.count else 0.0

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if len(self._samples) < self.capacity:
            self._samples.append(sample)
            self._dirty = True
            return
        # Algorithm R: keep with probability capacity / count
        slot = self.rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = sample
            self._dirty = True

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.add(sample)

    def _sorted(self) -> List[float]:
        if self._dirty:
            self._samples.sort()
            self._dirty = False
        return self._samples

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the resident sample."""
        if not self._samples:
            raise AnalysisError("cannot take a quantile of an empty sketch")
        return quantile(self._sorted(), q, is_sorted=True)

    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES
                  ) -> Dict[float, float]:
        if not self._samples:
            raise AnalysisError("cannot take quantiles of an empty sketch")
        return quantiles(self._sorted(), qs, is_sorted=True)

    def thinned(self, cap: int) -> List[float]:
        """Pooling payload: evenly-spaced order stats of the residents."""
        return thin_sorted(self._sorted(), cap)

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover
        mode = "exact" if self.exact else "reservoir"
        return (f"ReservoirQuantiles(count={self.count}, "
                f"resident={len(self._samples)}, {mode})")
