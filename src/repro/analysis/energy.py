"""Energy / perf-per-watt analysis of swept runs (Figs 22 and 26).

A ``kind="smarco"`` or ``kind="compare"`` run carries an activity
-proportional :class:`~repro.power.report.EnergyReport` in its telemetry
(the ``energy`` field of each :class:`~repro.exp.telemetry.RunRecord`);
this module folds a pile of records into the two artefacts the paper's
efficiency chapter plots:

* a **per-run energy table** — joules split by Table 1 component, the
  hottest component paths, average watts and perf/W;
* a **fig22-style efficiency sweep** — one row per (workload, dvfs,
  node) operating point with throughput, watts, perf/W and (for compare
  runs) the SmarCo/Xeon efficiency ratio, aggregated over seeds.

Degenerate denominators render as ``—``, never ``0.0`` — the same
NaN-not-zero discipline as :mod:`repro.analysis.winners`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from .tables import render_table

__all__ = [
    "EnergyPoint",
    "energy_from_records",
    "energy_points",
    "render_energy_report",
    "render_efficiency",
]


def energy_from_records(records: Iterable[Any]) -> List[Dict[str, Any]]:
    """The ``EnergyReport`` dicts inside a pile of telemetry records.

    Accepts :class:`~repro.exp.telemetry.RunRecord` objects and ignores
    run kinds without energy accounting, so a mixed ``results/runs/``
    directory can be fed in unfiltered.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        energy = getattr(record, "energy", None)
        if isinstance(record, Mapping):
            energy = record.get("energy")
        if isinstance(energy, Mapping) and "accounting" in energy:
            out.append(dict(energy))
    return out


@dataclass(frozen=True)
class EnergyPoint:
    """One efficiency operating point, aggregated over its seeds."""

    workload: str
    kind: str
    dvfs: str
    technology_nm: int
    runs: int
    throughput_ips: float        # mean over runs
    average_watts: float         # mean over runs
    perf_per_watt: float         # mean throughput / mean watts
    total_joules: float          # mean over runs
    #: mean SmarCo/Xeon perf-per-watt ratio; nan outside compare runs
    efficiency_ratio: float


def _mean(values: List[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else math.nan


def energy_points(reports: Iterable[Mapping[str, Any]]) -> List[EnergyPoint]:
    """Fold raw ``EnergyReport`` dicts into sorted operating points."""
    groups: Dict[Tuple[str, str, str, int], List[Mapping[str, Any]]] = {}
    for r in reports:
        key = (str(r.get("workload", "?")), str(r.get("kind", "?")),
               str(r.get("dvfs", "?")), int(r.get("technology_nm", 0)))
        groups.setdefault(key, []).append(r)

    points: List[EnergyPoint] = []
    for key in sorted(groups):
        workload, kind, dvfs, node = key
        runs = groups[key]
        tput = _mean([float(r.get("throughput_ips", math.nan)) for r in runs])
        watts = _mean([float(r["accounting"].get("average_watts", math.nan))
                       for r in runs])
        joules = _mean([float(r["accounting"].get("total_joules", math.nan))
                        for r in runs])
        ppw = tput / watts if watts and not math.isnan(watts) \
            and watts > 0 else math.nan
        ratio = _mean([float(r.get("efficiency_ratio", math.nan))
                       for r in runs])
        points.append(EnergyPoint(
            workload=workload, kind=kind, dvfs=dvfs, technology_nm=node,
            runs=len(runs), throughput_ips=tput, average_watts=watts,
            perf_per_watt=ppw, total_joules=joules,
            efficiency_ratio=ratio,
        ))
    return points


def _num(value: float, fmt: str) -> str:
    return "—" if math.isnan(value) else format(value, fmt)


def render_energy_report(energy: Mapping[str, Any]) -> str:
    """One run's energy view: component split, hottest paths, perf/W."""
    acct = energy.get("accounting") or {}
    rows = []
    for comp, split in (acct.get("by_component") or {}).items():
        rows.append([comp,
                     _num(float(split.get("static", math.nan)), ".3e"),
                     _num(float(split.get("dynamic", math.nan)), ".3e"),
                     _num(float(split.get("total", math.nan)), ".3e")])
    rows.append(["Total",
                 _num(float(acct.get("static_joules", math.nan)), ".3e"),
                 _num(float(acct.get("dynamic_joules", math.nan)), ".3e"),
                 _num(float(acct.get("total_joules", math.nan)), ".3e")])
    title = (f"Energy: {energy.get('workload', '?')} "
             f"[dvfs={energy.get('dvfs', '?')}, "
             f"{energy.get('technology_nm', '?')}nm]")
    text = render_table(
        ["component", "static J", "dynamic J", "total J"], rows, title=title)

    summary = [
        ["cycles", _num(float(acct.get("cycles", math.nan)), ",.0f")],
        ["avg power", _num(float(acct.get("average_watts", math.nan)),
                           ".2f") + " W"],
        ["throughput", _num(float(energy.get("throughput_ips", math.nan))
                            / 1e9, ".2f") + " Ginstr/s"],
        ["perf/W", _num(float(energy.get("perf_per_watt", math.nan))
                        / 1e6, ".1f") + " Minstr/s/W"],
        ["static model (Table 1)",
         _num(float(energy.get("static_model_watts", math.nan)), ".1f")
         + " W at util floor"],
    ]
    gated = acct.get("gated_subrings") or []
    if gated:
        summary.append(["power-gated",
                        f"{len(gated)} sub-rings, "
                        + _num(float(acct.get("gated_joules", math.nan)),
                               ".3e") + " J shed"])
    ratio = float(energy.get("efficiency_ratio", math.nan))
    if not math.isnan(ratio):
        summary.append(["vs Xeon perf/W", _num(ratio, ".2f") + "x"])
    text += "\n\n" + render_table(["metric", "value"], summary)

    top = energy.get("top_paths") or []
    if top:
        rows = [[path, _num(float(joules), ".3e")] for path, joules in top]
        text += "\n\n" + render_table(
            ["component path", "dynamic J"], rows,
            title="Hottest component paths")
    return text


def render_efficiency(reports: Iterable[Mapping[str, Any]],
                      title: str = "Energy efficiency sweep "
                                   "(activity-proportional, per Fig 22)"
                      ) -> str:
    """The efficiency table ``report --energy`` prints.

    One row per (workload, dvfs, technology node) operating point,
    aggregated over seeds; the ratio column is the Fig 22 right-hand
    axis (SmarCo perf/W over Xeon perf/W) and stays ``—`` for plain
    ``smarco`` runs that have no baseline side.
    """
    points = energy_points(reports)
    if not points:
        return "No runs with energy accounting found."
    rows = []
    for p in points:
        rows.append([
            p.workload, p.kind, p.dvfs, f"{p.technology_nm}nm", p.runs,
            _num(p.throughput_ips / 1e9, ".2f"),
            _num(p.average_watts, ".2f"),
            _num(p.perf_per_watt / 1e6, ".1f"),
            _num(p.efficiency_ratio, ".2f"),
        ])
    return render_table(
        ["workload", "kind", "dvfs", "node", "runs", "Ginstr/s",
         "avg W", "Mips/W", "vs Xeon"],
        rows, title=title)
