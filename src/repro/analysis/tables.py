"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series its paper figure reports; this module
keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series", "render_result"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_result(result: Any, title: Optional[str] = None) -> str:
    """Metric/value table for any run result exposing ``to_dict()``.

    Consumes the shared result protocol (``repro.chip.results``) instead
    of per-class attributes; nested results (e.g. the two sides of a
    ``ComparisonResult``) are flattened with dotted names.
    """
    data = result.to_dict() if hasattr(result, "to_dict") else dict(result)

    def _rows(mapping: Dict[str, Any], prefix: str = "") -> List[List[Any]]:
        rows: List[List[Any]] = []
        for key, value in mapping.items():
            if key == "type":
                continue
            if isinstance(value, dict):
                rows.extend(_rows(value, prefix=f"{prefix}{key}."))
            else:
                rows.append([f"{prefix}{key}", value])
        return rows

    return render_table(["metric", "value"], _rows(data), title=title)


def render_series(x_label: str, xs: Sequence[Any],
                  series: Dict[str, Sequence[Any]],
                  title: Optional[str] = None) -> str:
    """A figure-style table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title)
