"""Who-wins-where analysis of scheduler policy sweeps.

A ``kind="sched"`` sweep races every registered policy against every
adversarial scenario; this module folds its telemetry (or raw
``SchedRunResult`` dicts) into a policy × scenario matrix and declares a
winner per scenario: highest mean deadline-success rate, ties broken by
lower mean makespan (finish the same fraction sooner and you win).

The matrix is the headline table of the scheduling chapter of the
report — it shows the design-space claim of the related work directly:
no single allocation policy dominates every workload shape.

Tail aggregation is done right: a mean of per-run p99s is **not** a p99
of the pooled distribution, so cells pool the runs' raw response samples
(``SchedRunResult.response_samples``) and take one nearest-rank p99 over
the pool via :mod:`repro.analysis.quantiles`.  Only when no run shipped
samples does the cell fall back to the mean of the per-run p99s — and it
says so (``PolicyCell.p99_pooled`` / a ``~`` marker in the rendering).
Runs with no tail data at all (``nan`` / missing ``p99_response``) are
skipped, never coerced to 0.0: a zero would drag the cell toward a tail
latency nobody measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .quantiles import quantile
from .tables import render_table

__all__ = [
    "PolicyCell",
    "WinnersMatrix",
    "sched_results_from_records",
    "winners_matrix",
    "render_winners",
]

#: success-rate ties closer than this are decided on makespan
_TIE_EPS = 1e-9


def _finite(value: Any) -> Optional[float]:
    """``value`` as a finite float, else None (absent, nan, inf)."""
    if value is None:
        return None
    try:
        out = float(value)
    except (TypeError, ValueError):
        return None
    return out if math.isfinite(out) else None


@dataclass(frozen=True)
class PolicyCell:
    """Aggregate of every run of one (policy, scenario) pair."""

    policy: str
    scenario: str
    runs: int
    success_rate: float        # mean deadline-success rate over runs
    makespan: float            # mean makespan over runs
    #: p99 response time over the pooled raw samples of every run that
    #: shipped them (or the labelled fallback); None when no run of this
    #: cell produced any tail data
    p99_response: Optional[float]
    #: runs that contributed tail data (samples or a finite p99)
    tail_runs: int = 0
    #: True when p99_response was computed over pooled raw samples;
    #: False marks the mean-of-per-run-p99s fallback
    p99_pooled: bool = False


@dataclass(frozen=True)
class WinnersMatrix:
    """The folded sweep: cells plus the per-scenario verdicts."""

    policies: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    cells: Dict[Tuple[str, str], PolicyCell]
    winners: Dict[str, str]            # scenario -> winning policy
    overall: Optional[str]             # most scenario wins (None when empty)

    def cell(self, policy: str, scenario: str) -> Optional[PolicyCell]:
        return self.cells.get((policy, scenario))


def sched_results_from_records(records: Iterable[Any]) -> List[Dict[str, Any]]:
    """The ``SchedRunResult`` dicts inside a pile of telemetry records.

    Accepts :class:`~repro.exp.telemetry.RunRecord` objects (their
    ``result`` dicts are inspected) and ignores every other run kind, so
    a mixed ``results/runs/`` directory can be fed in unfiltered.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        result = getattr(record, "result", record)
        if isinstance(result, Mapping) and result.get("type") == "SchedRunResult":
            out.append(dict(result))
    return out


def winners_matrix(results: Iterable[Mapping[str, Any]]) -> WinnersMatrix:
    """Fold raw ``SchedRunResult`` dicts into the who-wins-where matrix."""
    sums: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for r in results:
        key = (str(r["policy"]), str(r["scenario"]))
        agg = sums.setdefault(key, {
            "n": 0, "succ": 0.0, "mk": 0.0,
            "samples": [], "p99s": [], "tail_runs": 0,
        })
        agg["n"] += 1
        agg["succ"] += float(r["deadline_success_rate"])
        agg["mk"] += float(r["makespan"])
        samples = [s for s in map(_finite, r.get("response_samples") or ())
                   if s is not None]
        p99 = _finite(r.get("p99_response"))
        if samples:
            agg["samples"].extend(samples)
            agg["tail_runs"] += 1
        elif p99 is not None:
            # aggregate-only record (pre-samples telemetry): keep its p99
            # for the labelled fallback
            agg["p99s"].append(p99)
            agg["tail_runs"] += 1
        # else: no tail data for this run — skip it, never zero-fill

    cells: Dict[Tuple[str, str], PolicyCell] = {}
    for (policy, scenario), agg in sums.items():
        n = agg["n"]
        if agg["samples"]:
            p99_value: Optional[float] = quantile(agg["samples"], 0.99)
            pooled = True
        elif agg["p99s"]:
            p99_value = sum(agg["p99s"]) / len(agg["p99s"])
            pooled = False
        else:
            p99_value = None
            pooled = False
        cells[(policy, scenario)] = PolicyCell(
            policy=policy, scenario=scenario, runs=n,
            success_rate=agg["succ"] / n, makespan=agg["mk"] / n,
            p99_response=p99_value, tail_runs=agg["tail_runs"],
            p99_pooled=pooled)

    policies = tuple(sorted({p for p, _ in cells}))
    scenarios = tuple(sorted({s for _, s in cells}))
    winners: Dict[str, str] = {}
    for scenario in scenarios:
        ranked = sorted(
            (c for c in cells.values() if c.scenario == scenario),
            # higher success first; inside a tie band, lower makespan first
            key=lambda c: (-round(c.success_rate / _TIE_EPS) * _TIE_EPS,
                           c.makespan, c.policy))
        if ranked:
            winners[scenario] = ranked[0].policy

    overall = None
    if winners:
        tally: Dict[str, int] = {}
        for policy in winners.values():
            tally[policy] = tally.get(policy, 0) + 1
        overall = sorted(
            tally, key=lambda p: (-tally[p],
                                  -_mean_success(cells, p, scenarios), p))[0]
    return WinnersMatrix(policies=policies, scenarios=scenarios,
                         cells=cells, winners=winners, overall=overall)


def _mean_success(cells: Dict[Tuple[str, str], PolicyCell], policy: str,
                  scenarios: Tuple[str, ...]) -> float:
    have = [cells[(policy, s)].success_rate
            for s in scenarios if (policy, s) in cells]
    return sum(have) / len(have) if have else 0.0


def _p99_cell_text(cell: Optional[PolicyCell]) -> str:
    if cell is None or cell.p99_response is None:
        return "—"                      # em dash: no tail data
    text = f"{cell.p99_response:,.0f}"
    if not cell.p99_pooled:
        text += "~"                          # fallback mean-of-p99s
    return text


def render_winners(results: Iterable[Mapping[str, Any]],
                   title: str = "Policy vs scenario: deadline success rate "
                                "(* = scenario winner)") -> str:
    """The comparison table ``report`` prints.

    One row per policy, one column per scenario; each cell is the mean
    deadline-success rate, the scenario winner's cell starred.  A second
    table shows the pooled p99 response time per cell (``—`` where no
    run produced tail data, ``~`` marking the mean-of-p99s fallback for
    aggregate-only records).  A verdict block follows: the winner of
    each scenario and the overall winner (most scenarios won).
    """
    matrix = winners_matrix(results)
    if not matrix.cells:
        return "No sched sweep runs found."
    rows = []
    for policy in matrix.policies:
        row: List[Any] = [policy]
        for scenario in matrix.scenarios:
            cell = matrix.cell(policy, scenario)
            if cell is None:
                row.append("-")
                continue
            star = "*" if matrix.winners.get(scenario) == policy else ""
            row.append(f"{cell.success_rate:.3f}{star}")
        rows.append(row)
    text = render_table(["policy"] + list(matrix.scenarios), rows, title=title)
    p99_rows = []
    for policy in matrix.policies:
        p99_rows.append([policy] + [
            _p99_cell_text(matrix.cell(policy, scenario))
            for scenario in matrix.scenarios])
    text += "\n\n" + render_table(
        ["policy"] + list(matrix.scenarios), p99_rows,
        title="Policy vs scenario: p99 response, pooled samples "
              "(— = no tail data, ~ = mean of per-run p99s)")
    verdicts = [f"{scenario}: {matrix.winners[scenario]}"
                for scenario in matrix.scenarios if scenario in matrix.winners]
    text += "\n\nwinners: " + "; ".join(verdicts)
    if matrix.overall is not None:
        text += f"\noverall: {matrix.overall} (most scenarios won)"
    return text
