"""Who-wins-where analysis of scheduler policy sweeps.

A ``kind="sched"`` sweep races every registered policy against every
adversarial scenario; this module folds its telemetry (or raw
``SchedRunResult`` dicts) into a policy × scenario matrix and declares a
winner per scenario: highest mean deadline-success rate, ties broken by
lower mean makespan (finish the same fraction sooner and you win).

The matrix is the headline table of the scheduling chapter of the
report — it shows the design-space claim of the related work directly:
no single allocation policy dominates every workload shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .tables import render_table

__all__ = [
    "PolicyCell",
    "WinnersMatrix",
    "sched_results_from_records",
    "winners_matrix",
    "render_winners",
]

#: success-rate ties closer than this are decided on makespan
_TIE_EPS = 1e-9


@dataclass(frozen=True)
class PolicyCell:
    """Aggregate of every run of one (policy, scenario) pair."""

    policy: str
    scenario: str
    runs: int
    success_rate: float        # mean deadline-success rate over runs
    makespan: float            # mean makespan over runs
    p99_response: float        # mean p99 response time over runs


@dataclass(frozen=True)
class WinnersMatrix:
    """The folded sweep: cells plus the per-scenario verdicts."""

    policies: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    cells: Dict[Tuple[str, str], PolicyCell]
    winners: Dict[str, str]            # scenario -> winning policy
    overall: Optional[str]             # most scenario wins (None when empty)

    def cell(self, policy: str, scenario: str) -> Optional[PolicyCell]:
        return self.cells.get((policy, scenario))


def sched_results_from_records(records: Iterable[Any]) -> List[Dict[str, Any]]:
    """The ``SchedRunResult`` dicts inside a pile of telemetry records.

    Accepts :class:`~repro.exp.telemetry.RunRecord` objects (their
    ``result`` dicts are inspected) and ignores every other run kind, so
    a mixed ``results/runs/`` directory can be fed in unfiltered.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        result = getattr(record, "result", record)
        if isinstance(result, Mapping) and result.get("type") == "SchedRunResult":
            out.append(dict(result))
    return out


def winners_matrix(results: Iterable[Mapping[str, Any]]) -> WinnersMatrix:
    """Fold raw ``SchedRunResult`` dicts into the who-wins-where matrix."""
    sums: Dict[Tuple[str, str], List[float]] = {}
    for r in results:
        key = (str(r["policy"]), str(r["scenario"]))
        agg = sums.setdefault(key, [0.0, 0.0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += float(r["deadline_success_rate"])
        agg[2] += float(r["makespan"])
        agg[3] += float(r.get("p99_response", 0.0))

    cells: Dict[Tuple[str, str], PolicyCell] = {}
    for (policy, scenario), (n, succ, mk, p99) in sums.items():
        cells[(policy, scenario)] = PolicyCell(
            policy=policy, scenario=scenario, runs=int(n),
            success_rate=succ / n, makespan=mk / n, p99_response=p99 / n)

    policies = tuple(sorted({p for p, _ in cells}))
    scenarios = tuple(sorted({s for _, s in cells}))
    winners: Dict[str, str] = {}
    for scenario in scenarios:
        ranked = sorted(
            (c for c in cells.values() if c.scenario == scenario),
            # higher success first; inside a tie band, lower makespan first
            key=lambda c: (-round(c.success_rate / _TIE_EPS) * _TIE_EPS,
                           c.makespan, c.policy))
        if ranked:
            winners[scenario] = ranked[0].policy

    overall = None
    if winners:
        tally: Dict[str, int] = {}
        for policy in winners.values():
            tally[policy] = tally.get(policy, 0) + 1
        overall = sorted(
            tally, key=lambda p: (-tally[p],
                                  -_mean_success(cells, p, scenarios), p))[0]
    return WinnersMatrix(policies=policies, scenarios=scenarios,
                         cells=cells, winners=winners, overall=overall)


def _mean_success(cells: Dict[Tuple[str, str], PolicyCell], policy: str,
                  scenarios: Tuple[str, ...]) -> float:
    have = [cells[(policy, s)].success_rate
            for s in scenarios if (policy, s) in cells]
    return sum(have) / len(have) if have else 0.0


def render_winners(results: Iterable[Mapping[str, Any]],
                   title: str = "Policy vs scenario: deadline success rate "
                                "(* = scenario winner)") -> str:
    """The comparison table ``report`` prints.

    One row per policy, one column per scenario; each cell is the mean
    deadline-success rate, the scenario winner's cell starred.  A
    verdict block follows: the winner of each scenario and the overall
    winner (most scenarios won).
    """
    matrix = winners_matrix(results)
    if not matrix.cells:
        return "No sched sweep runs found."
    rows = []
    for policy in matrix.policies:
        row: List[Any] = [policy]
        for scenario in matrix.scenarios:
            cell = matrix.cell(policy, scenario)
            if cell is None:
                row.append("-")
                continue
            star = "*" if matrix.winners.get(scenario) == policy else ""
            row.append(f"{cell.success_rate:.3f}{star}")
        rows.append(row)
    text = render_table(["policy"] + list(matrix.scenarios), rows, title=title)
    verdicts = [f"{scenario}: {matrix.winners[scenario]}"
                for scenario in matrix.scenarios if scenario in matrix.winners]
    text += "\n\nwinners: " + "; ".join(verdicts)
    if matrix.overall is not None:
        text += f"\noverall: {matrix.overall} (most scenarios won)"
    return text
