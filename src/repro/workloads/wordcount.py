"""WordCount (paper §4.1): count word occurrences in text.

Ported conceptually from Phoenix++; here as a functional kernel with
MapReduce-compatible ``map_fn``/``reduce_fn`` plus its architecture
profile (:data:`PROFILE`).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from .profiles import WORDCOUNT as PROFILE

__all__ = ["PROFILE", "wordcount", "map_fn", "reduce_fn"]


def wordcount(text: str) -> Dict[str, int]:
    """Reference implementation: whole-text word histogram."""
    return dict(Counter(text.split()))


def map_fn(chunk: str) -> List[Tuple[str, int]]:
    """MapReduce map: emit (word, 1) per word in the chunk."""
    return [(word, 1) for word in chunk.split()]


def reduce_fn(key: str, values: Iterable[int]) -> Tuple[str, int]:
    """MapReduce reduce: sum the counts for one word."""
    return key, sum(values)
