"""KMP string matching (paper §4.1): the basic big-data scan primitive.

Pure-Python Knuth–Morris–Pratt (the assembly twin lives in
:mod:`repro.isa.programs` and drives the timing model with a genuine
instruction stream).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..errors import WorkloadError
from .profiles import KMP as PROFILE

__all__ = ["PROFILE", "failure_table", "kmp_search", "kmp_count",
           "map_fn", "reduce_fn"]


def failure_table(pattern: str) -> List[int]:
    """KMP prefix-function (failure) table."""
    if not pattern:
        raise WorkloadError("empty pattern")
    fail = [0] * len(pattern)
    k = 0
    for i in range(1, len(pattern)):
        while k > 0 and pattern[i] != pattern[k]:
            k = fail[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        fail[i] = k
    return fail


def kmp_search(text: str, pattern: str) -> List[int]:
    """All (overlapping) match start positions of ``pattern`` in ``text``."""
    fail = failure_table(pattern)
    matches = []
    k = 0
    for i, ch in enumerate(text):
        while k > 0 and ch != pattern[k]:
            k = fail[k - 1]
        if ch == pattern[k]:
            k += 1
        if k == len(pattern):
            matches.append(i - k + 1)
            k = fail[k - 1]
    return matches


def kmp_count(text: str, pattern: str) -> int:
    return len(kmp_search(text, pattern))


def map_fn(chunk: Tuple[str, str, int]) -> List[Tuple[str, List[int]]]:
    """MapReduce map: search one text chunk; positions are rebased by the
    chunk offset so the reduce can merge them globally."""
    text, pattern, offset = chunk
    return [(pattern, [offset + pos for pos in kmp_search(text, pattern)])]


def reduce_fn(key: str, values: Iterable[List[int]]) -> Tuple[str, List[int]]:
    """MapReduce reduce: merge and sort global match positions."""
    merged: List[int] = []
    for positions in values:
        merged.extend(positions)
    return key, sorted(merged)
