"""RNC (paper §4.1): Radio Network Controller, the hard-real-time
benchmark.

A UMTS RNC terminates control-plane procedures (connection setup,
handover, paging) under hard response deadlines.  The functional model
processes connection events into scheduler :class:`~repro.sched.task.Task`
objects — exactly what the laxity-aware scheduler evaluation (Fig 21)
consumes — and provides a reference in-order processor to validate
response bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import WorkloadError
from ..sched.task import Task, TaskPriority
from .datasets import rnc_events
from .profiles import RNC as PROFILE

__all__ = ["PROFILE", "ConnectionEvent", "make_tasks", "process_serial",
           "map_fn", "reduce_fn"]


@dataclass(frozen=True)
class ConnectionEvent:
    """One control-plane procedure request."""

    arrival: float
    work_cycles: float
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= self.arrival:
            raise WorkloadError("deadline must be after arrival")
        if self.work_cycles <= 0:
            raise WorkloadError("work must be positive")


def make_tasks(events: Iterable[ConnectionEvent],
               high_priority_fraction: float = 0.1) -> List[Task]:
    """Convert events to scheduler tasks; the first fraction of each
    batch is flagged HIGH (e.g. emergency/handover procedures)."""
    events = list(events)
    n_high = int(len(events) * high_priority_fraction)
    tasks = []
    for i, ev in enumerate(events):
        tasks.append(Task(
            work_cycles=ev.work_cycles,
            deadline=ev.deadline,
            arrival=ev.arrival,
            priority=TaskPriority.HIGH if i < n_high else TaskPriority.NORMAL,
        ))
    return tasks


def default_events(n: int = 128, seed: int = 0) -> List[ConnectionEvent]:
    """The Fig 21 task set: n tasks, 340 000-cycle deadline budget."""
    return [ConnectionEvent(*tup) for tup in rnc_events(n, seed=seed)]


def process_serial(events: Sequence[ConnectionEvent]) -> Tuple[int, int]:
    """Reference serial processor: (met, missed) deadline counts if one
    context handled every event in arrival order."""
    now = 0.0
    met = missed = 0
    for ev in sorted(events, key=lambda e: e.arrival):
        now = max(now, ev.arrival) + ev.work_cycles
        if now <= ev.deadline:
            met += 1
        else:
            missed += 1
    return met, missed


def map_fn(chunk: Sequence[ConnectionEvent]) -> List[Tuple[str, int]]:
    """MapReduce map: classify each event's (met/missed) under the serial
    reference (used by the examples to sanity-check scheduling gains)."""
    met, missed = process_serial(chunk)
    return [("met", met), ("missed", missed)]


def reduce_fn(key: str, values: Iterable[int]) -> Tuple[str, int]:
    return key, sum(values)
