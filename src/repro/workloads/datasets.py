"""Synthetic dataset generators for the functional benchmark kernels.

The paper drives its benchmarks with real corpora (Phoenix++ inputs,
Xapian document sets, UMTS traffic).  We have none of those offline, so
each generator produces a statistically similar synthetic stand-in: Zipf
word frequencies for text, uniform random keys for sorting, Gaussian
clusters for K-means, low-entropy alphabets for string matching, and
Poisson-ish connection events for the RNC.
"""

from __future__ import annotations

import math
import random
import string
from typing import List, Sequence, Tuple

__all__ = [
    "synthetic_text",
    "random_records",
    "clustered_points",
    "low_entropy_string",
    "document_corpus",
    "rnc_events",
]

_WORD_STEMS = [
    "data", "center", "cloud", "server", "query", "video", "photo", "user",
    "page", "view", "cache", "ring", "core", "thread", "memory", "packet",
    "search", "index", "sort", "count", "map", "reduce", "task", "deadline",
]


def synthetic_text(n_words: int, seed: int = 0) -> str:
    """Zipf-distributed word stream (WordCount input)."""
    rng = random.Random(seed)
    vocab = [f"{stem}{i}" for i in range(8) for stem in _WORD_STEMS]
    weights = [1.0 / (rank + 1) for rank in range(len(vocab))]   # Zipf s=1
    return " ".join(rng.choices(vocab, weights=weights, k=n_words))


def random_records(n: int, key_bytes: int = 10, value_bytes: int = 6,
                   seed: int = 0) -> List[Tuple[bytes, bytes]]:
    """TeraSort-style (key, value) records with uniform random keys."""
    rng = random.Random(seed)
    return [
        (bytes(rng.randrange(256) for _ in range(key_bytes)),
         bytes(rng.randrange(256) for _ in range(value_bytes)))
        for _ in range(n)
    ]


def clustered_points(n: int, dim: int = 2, clusters: int = 4,
                     spread: float = 0.5, seed: int = 0) -> List[List[float]]:
    """Gaussian blobs around well-separated centres (K-means input)."""
    rng = random.Random(seed)
    centres = [[rng.uniform(-10, 10) for _ in range(dim)] for _ in range(clusters)]
    points = []
    for i in range(n):
        centre = centres[i % clusters]
        points.append([rng.gauss(c, spread) for c in centre])
    return points


def low_entropy_string(n: int, alphabet: str = "acgt", seed: int = 0) -> str:
    """DNA-like text where short patterns recur (KMP input)."""
    rng = random.Random(seed)
    return "".join(rng.choice(alphabet) for _ in range(n))


def document_corpus(n_docs: int, words_per_doc: int = 40,
                    seed: int = 0) -> List[str]:
    """Small synthetic document set (Search input)."""
    rng = random.Random(seed)
    return [synthetic_text(words_per_doc, seed=rng.randrange(1 << 30))
            for _ in range(n_docs)]


def rnc_events(n: int, mean_gap: float = 400.0, work_range=(60_000, 160_000),
               deadline_slack: float = 340_000, seed: int = 0
               ) -> List[Tuple[float, float, float]]:
    """UMTS RNC connection events: (arrival, work_cycles, deadline).

    Deadlines are ``arrival + deadline_slack`` — the hard-real-time budget
    Fig 21 uses (340 000 cycles).
    """
    rng = random.Random(seed)
    events = []
    t = 0.0
    for _ in range(n):
        t += rng.expovariate(1.0 / mean_gap)
        work = rng.uniform(*work_range)
        events.append((t, work, t + deadline_slack))
    return events
