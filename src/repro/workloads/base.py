"""Workload profiles: the statistical skeletons of the paper's benchmarks.

A :class:`WorkloadProfile` captures what the architecture cares about —
instruction mix, memory-access granularity (paper Fig 8), SPM residency,
working-set size, code footprint — and synthesises:

* **TCG instruction streams** (:meth:`stream`) for the SmarCo cores, with
  the LSQ-visible address layout of :mod:`repro.core.tcg` (SPM window /
  uncached streaming window / cacheable heap);
* **Xeon samplers** (:meth:`xeon_data_sampler` / :meth:`xeon_code_sampler`)
  for the baseline's quantum model — on the Xeon there is no SPM, so
  SPM-resident accesses become ordinary cacheable accesses (that is the
  architectural difference the paper exploits).

Six HTC profiles live in :mod:`repro.workloads.profiles`; each benchmark
module also ships a *functional* kernel used by the MapReduce examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..core.stream import CoreInstr
from ..core.tcg import UNCACHED_BASE
from ..errors import WorkloadError
from ..noc.traffic import GranularityDist
from ..sim.snapshot import register_snapshot_class, snapshotable

__all__ = ["WorkloadProfile", "InstrStream", "register_profile",
           "get_profile", "all_profiles"]

# Cacheable-heap layout: each (core, thread) gets a private region so cache
# contention between threads is real, as on the paper's testbed.
HEAP_BASE = 0x0001_0000_0000
THREAD_REGION = 1 << 26          # 64 MB per thread, far beyond any cache
CODE_BASE = 0x0000_1000_0000


@dataclass(frozen=True)
class WorkloadProfile:
    """Architecture-level description of one benchmark."""

    name: str
    mem_ratio: float                 # fraction of instructions touching memory
    branch_ratio: float
    granularity: GranularityDist     # access size distribution (Fig 8)
    spm_fraction: float              # memory accesses resolved in SPM (SmarCo)
    uncached_fraction: float         # accesses streaming to DRAM (MACT path)
    working_set_bytes: int           # cacheable working set per thread
    code_footprint_bytes: int        # instruction footprint
    ilp: float = 1.8                 # Xeon base IPC per thread
    mlp: float = 4.0                 # Xeon OoO memory overlap factor
    branch_taken_ratio: float = 0.4
    branch_miss_rate: float = 0.06   # Xeon predictor miss rate
    mul_ratio: float = 0.02
    streaming_locality: float = 0.9  # P(next uncached access is sequential)
    #: share of uncached accesses that walk a dataset SHARED by a gang of
    #: threads with round-robin element partitioning (each thread owns
    #: every gang_size-th element).  Neighbouring threads' accesses land
    #: in the same cache lines at the same time — the cross-core
    #: adjacency the MACT batches (paper §3.4: "discrete and small
    #: granularity packets from adjacent cores").
    shared_uncached_fraction: float = 0.6
    #: the shared gang dataset wraps within this window
    shared_window_bytes: int = 1 << 20
    #: per-thread dataset the Xeon must pull through its caches — the
    #: data SmarCo stages in SPM (the architectural asymmetry of Fig 22)
    xeon_dataset_bytes: int = 32 * 1024
    realtime: bool = False           # RNC-style hard-deadline tasks

    def __post_init__(self) -> None:
        fractions = (self.mem_ratio, self.branch_ratio, self.spm_fraction,
                     self.uncached_fraction, self.branch_taken_ratio,
                     self.branch_miss_rate, self.mul_ratio,
                     self.streaming_locality)
        if any(not 0 <= f <= 1 for f in fractions):
            raise WorkloadError(f"{self.name}: fractions must be in [0,1]")
        if self.mem_ratio + self.branch_ratio + self.mul_ratio > 1:
            raise WorkloadError(f"{self.name}: instruction mix exceeds 1")
        if self.spm_fraction + self.uncached_fraction > 1:
            raise WorkloadError(f"{self.name}: memory mix exceeds 1")
        if self.working_set_bytes <= 0 or self.code_footprint_bytes <= 0:
            raise WorkloadError(f"{self.name}: footprints must be positive")
        if self.xeon_dataset_bytes <= 0 or self.shared_window_bytes <= 0:
            raise WorkloadError(f"{self.name}: dataset sizes must be positive")

    # -- TCG stream ------------------------------------------------------------

    def stream(
        self,
        n_instrs: int,
        rng: random.Random,
        thread_id: int = 0,
        spm_base: Optional[int] = None,
        spm_bytes: int = 128 * 1024,
        gang_size: int = 1,
        gang_rank: int = 0,
        gang_base: Optional[int] = None,
    ) -> "InstrStream":
        """Build an ``n_instrs``-long pipeline stream for one SmarCo thread.

        ``gang_size``/``gang_rank``/``gang_base`` describe the thread's
        position in a gang processing one shared dataset round-robin
        (e.g. all threads of a sub-ring); with the default gang of one,
        shared accesses degenerate to a private stream.
        """
        return InstrStream(self, n_instrs, rng, thread_id=thread_id,
                           spm_base=spm_base, spm_bytes=spm_bytes,
                           gang_size=gang_size, gang_rank=gang_rank,
                           gang_base=gang_base)

    def _shared_region_offset(self) -> int:
        """Stable per-profile placement of the shared gang dataset (keeps
        different workloads' regions apart in the address space)."""
        import hashlib

        digest = hashlib.sha256(self.name.encode()).digest()
        slot = int.from_bytes(digest[:4], "little") % 1024
        return slot * self.shared_window_bytes

    # -- Xeon samplers ------------------------------------------------------------

    def xeon_data_sampler(
        self, thread_id: int, rng: random.Random
    ) -> "XeonDataSampler":
        """Data-address sampler for the baseline quantum model.

        SPM-resident accesses become cacheable accesses on the Xeon; the
        streaming fraction walks sequentially (prefetch-friendly but
        cache-polluting), the rest hits the thread's working set.
        """
        return XeonDataSampler(self, thread_id, rng)

    def xeon_code_sampler(self, rng: random.Random,
                          thread_id: int = 0) -> "XeonCodeSampler":
        """Instruction-address sampler.

        Threads exercise different request types / service phases, so each
        software thread walks its own slice of the service binary —
        co-resident threads then contend for the L1I (Fig 1b's rising
        starvation).
        """
        return XeonCodeSampler(self, rng, thread_id)


@snapshotable
class InstrStream:
    """Explicit-state form of the TCG instruction generator.

    Behaves exactly like the generator it replaced — same per-instruction
    RNG draw order, and the initial stream-pointer draw happens lazily on
    the first ``__next__`` (several streams may share one generator, so
    construction order must not consume entropy) — but every local is an
    attribute, so a checkpoint can freeze a thread mid-stream.

    ``retarget`` moves the instruction budget without disturbing any
    positional state; warm-started sweep points use it to extend a
    restored prefix to the point's own budget.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        n_instrs: int,
        rng: random.Random,
        thread_id: int = 0,
        spm_base: Optional[int] = None,
        spm_bytes: int = 128 * 1024,
        gang_size: int = 1,
        gang_rank: int = 0,
        gang_base: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.total = n_instrs
        self.emitted = 0
        self.rng = rng
        self.thread_id = thread_id
        self.spm_base = spm_base
        self.spm_bytes = spm_bytes
        self.gang_size = gang_size
        self.gang_rank = gang_rank
        self.gang_base = gang_base
        self.started = False
        # positional state, filled in by _start()
        self.heap = 0
        self.stream_ptr = 0
        self.chunk_bytes = 256
        self.chunk_count = 0
        self.chunk_idx = gang_rank
        self.intra = 0
        self.pending_stores = 0
        self.code_pcs = max(1, profile.code_footprint_bytes // 4)
        self.pc = 0

    def _start(self) -> None:
        from ..mem.spm import SPM_REGION_BASE

        profile = self.profile
        if self.spm_base is None:
            self.spm_base = SPM_REGION_BASE
        self.heap = HEAP_BASE + self.thread_id * THREAD_REGION
        # random start offset spreads streams over channels and banks
        self.stream_ptr = (
            UNCACHED_BASE + (self.thread_id + 1) * THREAD_REGION
            + self.rng.randrange(THREAD_REGION // 2))
        if self.gang_base is None:
            self.gang_base = UNCACHED_BASE + profile._shared_region_offset()
        self.started = True

    def retarget(self, n_instrs: int) -> None:
        """Change the total instruction budget (used by warm starts)."""
        if n_instrs < self.emitted:
            raise WorkloadError(
                f"cannot retarget stream to {n_instrs} instructions; "
                f"{self.emitted} already emitted")
        self.total = n_instrs

    # Block-partitioned shared dataset: the thread owns every
    # gang_size-th 256B chunk and walks each chunk sequentially, so
    # its own small stores are contiguous (they merge in the MACT)
    # and neighbouring threads work adjacent chunks.
    def _shared_addr(self, size: int) -> int:
        if self.intra + size > self.chunk_bytes:
            self.chunk_count += 1
            self.chunk_idx = self.chunk_count * self.gang_size + self.gang_rank
            self.intra = 0
        addr = self.gang_base + (
            self.chunk_idx * self.chunk_bytes + self.intra
        ) % self.profile.shared_window_bytes
        self.intra += size
        return addr

    def __iter__(self) -> "InstrStream":
        return self

    def __next__(self) -> CoreInstr:
        if self.emitted >= self.total:
            raise StopIteration
        if not self.started:
            self._start()
        self.emitted += 1
        profile = self.profile
        rng = self.rng
        self.pc = (self.pc + 1) % self.code_pcs
        pc = self.pc
        if self.pending_stores:
            # tail of a store burst: contiguous output elements
            self.pending_stores -= 1
            size = profile.granularity.sample(rng)
            return CoreInstr("store", addr=self._shared_addr(size),
                             size=size, pc=pc)
        draw = rng.random()
        p_mem = profile.mem_ratio
        p_branch = p_mem + profile.branch_ratio
        p_mul = p_branch + profile.mul_ratio
        if draw < p_mem:
            size = profile.granularity.sample(rng)
            is_write = rng.random() < 0.25
            kind = "store" if is_write else "load"
            mem_draw = rng.random()
            if mem_draw < profile.spm_fraction:
                addr = self.spm_base + rng.randrange(
                    max(1, self.spm_bytes - 256 - size))
            elif mem_draw < profile.spm_fraction + profile.uncached_fraction:
                if rng.random() < profile.shared_uncached_fraction:
                    addr = self._shared_addr(size)
                    if is_write:
                        self.pending_stores = 1 + rng.randrange(3)
                else:
                    if rng.random() < profile.streaming_locality:
                        self.stream_ptr += size
                    else:
                        self.stream_ptr += size * rng.randrange(2, 64)
                    addr = self.stream_ptr
            else:
                addr = self.heap + rng.randrange(profile.working_set_bytes)
            return CoreInstr(kind, addr=addr, size=size, pc=pc)
        if draw < p_branch:
            taken = rng.random() < profile.branch_taken_ratio
            return CoreInstr("branch", pc=pc, taken=taken)
        if draw < p_mul:
            return CoreInstr("mul", pc=pc)
        return CoreInstr("alu", pc=pc)


@snapshotable
class XeonDataSampler:
    """Explicit-state form of the Xeon data-address closure."""

    def __init__(self, profile: WorkloadProfile, thread_id: int,
                 rng: random.Random) -> None:
        self.profile = profile
        self.thread_id = thread_id
        self.rng = rng
        self.heap = HEAP_BASE + thread_id * THREAD_REGION
        # the data SmarCo would stage in SPM lives in ordinary cacheable
        # memory here — per-thread slices so cache contention is real
        self.dataset = HEAP_BASE + (1 << 40) + thread_id * THREAD_REGION
        self.gang_base = UNCACHED_BASE + profile._shared_region_offset()
        self.chunk_bytes = 256
        self.stream_ptr = (UNCACHED_BASE + (thread_id + 1) * THREAD_REGION
                           + rng.randrange(THREAD_REGION // 2))
        self.chunk = thread_id % 48
        self.count = 0
        self.intra = 0

    def __call__(self) -> Tuple[int, int, bool]:
        profile = self.profile
        rng = self.rng
        size = profile.granularity.sample(rng)
        is_write = rng.random() < 0.25
        draw = rng.random()
        if draw < profile.uncached_fraction:
            if rng.random() < profile.shared_uncached_fraction:
                # chunked slice of the gang-shared dataset
                if self.intra + size > self.chunk_bytes:
                    self.count += 1
                    self.chunk = self.count * 48 + (self.thread_id % 48)
                    self.intra = 0
                addr = self.gang_base + (
                    self.chunk * self.chunk_bytes + self.intra
                ) % profile.shared_window_bytes
                self.intra += size
                return addr, size, is_write
            self.stream_ptr += size * rng.randrange(1, 16)
            return self.stream_ptr, size, is_write
        if draw < profile.uncached_fraction + profile.spm_fraction:
            return (self.dataset + rng.randrange(profile.xeon_dataset_bytes),
                    size, is_write)
        return (self.heap + rng.randrange(profile.working_set_bytes),
                size, is_write)


@snapshotable
class XeonCodeSampler:
    """Explicit-state form of the Xeon instruction-address closure."""

    def __init__(self, profile: WorkloadProfile, rng: random.Random,
                 thread_id: int = 0) -> None:
        self.profile = profile
        self.rng = rng
        self.base = CODE_BASE + thread_id * profile.code_footprint_bytes

    def __call__(self) -> int:
        return self.base + self.rng.randrange(
            self.profile.code_footprint_bytes)


# profiles and their granularity histograms travel by value inside
# stream/sampler state
register_snapshot_class(WorkloadProfile)
register_snapshot_class(GranularityDist)

_REGISTRY: Dict[str, WorkloadProfile] = {}


def register_profile(profile: WorkloadProfile) -> WorkloadProfile:
    if profile.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload profile {profile.name!r}")
    _REGISTRY[profile.name] = profile
    return profile


def get_profile(name: str) -> WorkloadProfile:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_profiles() -> Dict[str, WorkloadProfile]:
    return dict(_REGISTRY)
