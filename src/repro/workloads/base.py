"""Workload profiles: the statistical skeletons of the paper's benchmarks.

A :class:`WorkloadProfile` captures what the architecture cares about —
instruction mix, memory-access granularity (paper Fig 8), SPM residency,
working-set size, code footprint — and synthesises:

* **TCG instruction streams** (:meth:`stream`) for the SmarCo cores, with
  the LSQ-visible address layout of :mod:`repro.core.tcg` (SPM window /
  uncached streaming window / cacheable heap);
* **Xeon samplers** (:meth:`xeon_data_sampler` / :meth:`xeon_code_sampler`)
  for the baseline's quantum model — on the Xeon there is no SPM, so
  SPM-resident accesses become ordinary cacheable accesses (that is the
  architectural difference the paper exploits).

Six HTC profiles live in :mod:`repro.workloads.profiles`; each benchmark
module also ships a *functional* kernel used by the MapReduce examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..core.stream import CoreInstr
from ..core.tcg import UNCACHED_BASE
from ..errors import WorkloadError
from ..noc.traffic import GranularityDist

__all__ = ["WorkloadProfile", "register_profile", "get_profile", "all_profiles"]

# Cacheable-heap layout: each (core, thread) gets a private region so cache
# contention between threads is real, as on the paper's testbed.
HEAP_BASE = 0x0001_0000_0000
THREAD_REGION = 1 << 26          # 64 MB per thread, far beyond any cache
CODE_BASE = 0x0000_1000_0000


@dataclass(frozen=True)
class WorkloadProfile:
    """Architecture-level description of one benchmark."""

    name: str
    mem_ratio: float                 # fraction of instructions touching memory
    branch_ratio: float
    granularity: GranularityDist     # access size distribution (Fig 8)
    spm_fraction: float              # memory accesses resolved in SPM (SmarCo)
    uncached_fraction: float         # accesses streaming to DRAM (MACT path)
    working_set_bytes: int           # cacheable working set per thread
    code_footprint_bytes: int        # instruction footprint
    ilp: float = 1.8                 # Xeon base IPC per thread
    mlp: float = 4.0                 # Xeon OoO memory overlap factor
    branch_taken_ratio: float = 0.4
    branch_miss_rate: float = 0.06   # Xeon predictor miss rate
    mul_ratio: float = 0.02
    streaming_locality: float = 0.9  # P(next uncached access is sequential)
    #: share of uncached accesses that walk a dataset SHARED by a gang of
    #: threads with round-robin element partitioning (each thread owns
    #: every gang_size-th element).  Neighbouring threads' accesses land
    #: in the same cache lines at the same time — the cross-core
    #: adjacency the MACT batches (paper §3.4: "discrete and small
    #: granularity packets from adjacent cores").
    shared_uncached_fraction: float = 0.6
    #: the shared gang dataset wraps within this window
    shared_window_bytes: int = 1 << 20
    #: per-thread dataset the Xeon must pull through its caches — the
    #: data SmarCo stages in SPM (the architectural asymmetry of Fig 22)
    xeon_dataset_bytes: int = 32 * 1024
    realtime: bool = False           # RNC-style hard-deadline tasks

    def __post_init__(self) -> None:
        fractions = (self.mem_ratio, self.branch_ratio, self.spm_fraction,
                     self.uncached_fraction, self.branch_taken_ratio,
                     self.branch_miss_rate, self.mul_ratio,
                     self.streaming_locality)
        if any(not 0 <= f <= 1 for f in fractions):
            raise WorkloadError(f"{self.name}: fractions must be in [0,1]")
        if self.mem_ratio + self.branch_ratio + self.mul_ratio > 1:
            raise WorkloadError(f"{self.name}: instruction mix exceeds 1")
        if self.spm_fraction + self.uncached_fraction > 1:
            raise WorkloadError(f"{self.name}: memory mix exceeds 1")
        if self.working_set_bytes <= 0 or self.code_footprint_bytes <= 0:
            raise WorkloadError(f"{self.name}: footprints must be positive")
        if self.xeon_dataset_bytes <= 0 or self.shared_window_bytes <= 0:
            raise WorkloadError(f"{self.name}: dataset sizes must be positive")

    # -- TCG stream ------------------------------------------------------------

    def stream(
        self,
        n_instrs: int,
        rng: random.Random,
        thread_id: int = 0,
        spm_base: Optional[int] = None,
        spm_bytes: int = 128 * 1024,
        gang_size: int = 1,
        gang_rank: int = 0,
        gang_base: Optional[int] = None,
    ) -> Iterator[CoreInstr]:
        """Generate ``n_instrs`` pipeline records for one SmarCo thread.

        ``gang_size``/``gang_rank``/``gang_base`` describe the thread's
        position in a gang processing one shared dataset round-robin
        (e.g. all threads of a sub-ring); with the default gang of one,
        shared accesses degenerate to a private stream.
        """
        from ..mem.spm import SPM_REGION_BASE

        if spm_base is None:
            spm_base = SPM_REGION_BASE
        heap = HEAP_BASE + thread_id * THREAD_REGION
        # random start offset spreads streams over channels and banks
        stream_ptr = (UNCACHED_BASE + (thread_id + 1) * THREAD_REGION
                      + rng.randrange(THREAD_REGION // 2))
        if gang_base is None:
            gang_base = UNCACHED_BASE + self._shared_region_offset()
        # Block-partitioned shared dataset: the thread owns every
        # gang_size-th 256B chunk and walks each chunk sequentially, so
        # its own small stores are contiguous (they merge in the MACT)
        # and neighbouring threads work adjacent chunks.
        chunk_bytes = 256
        chunk_count = 0
        chunk_idx = gang_rank
        intra = 0
        pending_stores = 0
        code_pcs = max(1, self.code_footprint_bytes // 4)
        pc = 0
        p_mem = self.mem_ratio
        p_branch = p_mem + self.branch_ratio
        p_mul = p_branch + self.mul_ratio
        def shared_addr(size: int) -> int:
            nonlocal chunk_count, chunk_idx, intra
            if intra + size > chunk_bytes:
                chunk_count += 1
                chunk_idx = chunk_count * gang_size + gang_rank
                intra = 0
            addr = gang_base + (chunk_idx * chunk_bytes + intra) % self.shared_window_bytes
            intra += size
            return addr

        for _ in range(n_instrs):
            pc = (pc + 1) % code_pcs
            if pending_stores:
                # tail of a store burst: contiguous output elements
                pending_stores -= 1
                size = self.granularity.sample(rng)
                yield CoreInstr("store", addr=shared_addr(size), size=size, pc=pc)
                continue
            draw = rng.random()
            if draw < p_mem:
                size = self.granularity.sample(rng)
                is_write = rng.random() < 0.25
                kind = "store" if is_write else "load"
                mem_draw = rng.random()
                if mem_draw < self.spm_fraction:
                    addr = spm_base + rng.randrange(max(1, spm_bytes - 256 - size))
                elif mem_draw < self.spm_fraction + self.uncached_fraction:
                    if rng.random() < self.shared_uncached_fraction:
                        addr = shared_addr(size)
                        if is_write:
                            pending_stores = 1 + rng.randrange(3)
                    else:
                        if rng.random() < self.streaming_locality:
                            stream_ptr += size
                        else:
                            stream_ptr += size * rng.randrange(2, 64)
                        addr = stream_ptr
                else:
                    addr = heap + rng.randrange(self.working_set_bytes)
                yield CoreInstr(kind, addr=addr, size=size, pc=pc)
            elif draw < p_branch:
                taken = rng.random() < self.branch_taken_ratio
                yield CoreInstr("branch", pc=pc, taken=taken)
            elif draw < p_mul:
                yield CoreInstr("mul", pc=pc)
            else:
                yield CoreInstr("alu", pc=pc)

    def _shared_region_offset(self) -> int:
        """Stable per-profile placement of the shared gang dataset (keeps
        different workloads' regions apart in the address space)."""
        import hashlib

        digest = hashlib.sha256(self.name.encode()).digest()
        slot = int.from_bytes(digest[:4], "little") % 1024
        return slot * self.shared_window_bytes

    # -- Xeon samplers ------------------------------------------------------------

    def xeon_data_sampler(
        self, thread_id: int, rng: random.Random
    ) -> Callable[[], Tuple[int, int, bool]]:
        """Data-address sampler for the baseline quantum model.

        SPM-resident accesses become cacheable accesses on the Xeon; the
        streaming fraction walks sequentially (prefetch-friendly but
        cache-polluting), the rest hits the thread's working set.
        """
        heap = HEAP_BASE + thread_id * THREAD_REGION
        # the data SmarCo would stage in SPM lives in ordinary cacheable
        # memory here — per-thread slices so cache contention is real
        dataset = HEAP_BASE + (1 << 40) + thread_id * THREAD_REGION
        gang_base = UNCACHED_BASE + self._shared_region_offset()
        chunk_bytes = 256
        state = {"stream": UNCACHED_BASE + (thread_id + 1) * THREAD_REGION
                 + rng.randrange(THREAD_REGION // 2),
                 "chunk": thread_id % 48, "count": 0, "intra": 0}

        def sample() -> Tuple[int, int, bool]:
            size = self.granularity.sample(rng)
            is_write = rng.random() < 0.25
            draw = rng.random()
            if draw < self.uncached_fraction:
                if rng.random() < self.shared_uncached_fraction:
                    # chunked slice of the gang-shared dataset
                    if state["intra"] + size > chunk_bytes:
                        state["count"] += 1
                        state["chunk"] = state["count"] * 48 + (thread_id % 48)
                        state["intra"] = 0
                    addr = gang_base + (
                        state["chunk"] * chunk_bytes + state["intra"]
                    ) % self.shared_window_bytes
                    state["intra"] += size
                    return addr, size, is_write
                state["stream"] += size * rng.randrange(1, 16)
                return state["stream"], size, is_write
            if draw < self.uncached_fraction + self.spm_fraction:
                return (dataset + rng.randrange(self.xeon_dataset_bytes),
                        size, is_write)
            return heap + rng.randrange(self.working_set_bytes), size, is_write

        return sample

    def xeon_code_sampler(self, rng: random.Random,
                          thread_id: int = 0) -> Callable[[], int]:
        """Instruction-address sampler.

        Threads exercise different request types / service phases, so each
        software thread walks its own slice of the service binary —
        co-resident threads then contend for the L1I (Fig 1b's rising
        starvation).
        """
        base = CODE_BASE + thread_id * self.code_footprint_bytes

        def sample() -> int:
            return base + rng.randrange(self.code_footprint_bytes)

        return sample


_REGISTRY: Dict[str, WorkloadProfile] = {}


def register_profile(profile: WorkloadProfile) -> WorkloadProfile:
    if profile.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload profile {profile.name!r}")
    _REGISTRY[profile.name] = profile
    return profile


def get_profile(name: str) -> WorkloadProfile:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_profiles() -> Dict[str, WorkloadProfile]:
    return dict(_REGISTRY)
