"""Workloads: the six HTC benchmarks, SPLASH2 profiles, and the CDN model."""

from . import kmeans, kmp, rnc, search, terasort, wordcount
from .base import WorkloadProfile, all_profiles, get_profile
from .cdn import CdnConfig, CdnModel, CdnPoint
from .profiles import (
    HTC_PROFILES,
    SPLASH2_PROFILES,
    htc_profile_names,
    splash2_profile_names,
)

__all__ = [
    "WorkloadProfile",
    "get_profile",
    "all_profiles",
    "HTC_PROFILES",
    "SPLASH2_PROFILES",
    "htc_profile_names",
    "splash2_profile_names",
    "wordcount",
    "terasort",
    "search",
    "kmeans",
    "kmp",
    "rnc",
    "CdnModel",
    "CdnConfig",
    "CdnPoint",
]
