"""CDN video-service model (paper Fig 2).

The paper builds a CDN with Nginx and a 10 Gbps NIC serving 25 Mbps
videos, then shows the mismatch signatures on a conventional processor:
CPU utilisation stays under 10 % while the NIC saturates, the branch miss
ratio exceeds 10 % near the connection limit, and the L1 miss ratio is
~40 %.

We cannot run Nginx against a NIC offline, so this is a **closed model of
the same server** (substitution documented in DESIGN.md §2):

* the NIC cap and per-connection stream rate give the connection limit
  (10 Gbps / 25 Mbps = 400 clients) and CPU demand;
* the L1 miss curve is *measured*, not assumed: we replay each
  connection's buffer accesses round-robin through a real
  :class:`~repro.mem.cache.Cache` of L1 size, so the miss ratio emerges
  from capacity pressure as connections grow;
* the branch-miss curve models predictor-state thrash across connection
  contexts (more interleaved flows -> colder history), calibrated to the
  paper's endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import WorkloadError
from ..mem.cache import Cache

__all__ = ["CdnConfig", "CdnModel", "CdnPoint"]


@dataclass(frozen=True)
class CdnConfig:
    nic_gbps: float = 10.0
    video_rate_mbps: float = 25.0
    cores: int = 24
    frequency_ghz: float = 2.2
    #: nginx per-streamed-byte CPU cost (syscalls, buffer management,
    #: TCP bookkeeping) — a few cycles/byte keeps 24 cores <10 % busy at
    #: NIC saturation, matching the paper's measurement
    cycles_per_byte: float = 3.0
    #: per-connection live buffer the server touches per service turn
    connection_buffer_bytes: int = 48 * 1024
    l1_bytes: int = 32 * 1024
    cache_line_bytes: int = 64
    base_branch_miss: float = 0.02
    max_branch_miss_rise: float = 0.12

    @property
    def max_connections(self) -> int:
        """NIC-bound client limit (paper: 10 Gbps / 25 Mbps = 400)."""
        return int(self.nic_gbps * 1000 / self.video_rate_mbps)

    def validate(self) -> None:
        if self.nic_gbps <= 0 or self.video_rate_mbps <= 0:
            raise WorkloadError("rates must be positive")
        if self.video_rate_mbps > self.nic_gbps * 1000:
            raise WorkloadError("one video exceeds the NIC")


@dataclass(frozen=True)
class CdnPoint:
    """One x-axis point of Fig 2."""

    connections: int
    nic_utilization: float
    cpu_utilization: float
    branch_miss_ratio: float
    l1_miss_ratio: float


class CdnModel:
    """The CDN server under ``n`` concurrent video connections."""

    def __init__(self, config: CdnConfig = CdnConfig()) -> None:
        config.validate()
        self.config = config

    # -- analytic components -------------------------------------------------

    def nic_utilization(self, connections: int) -> float:
        cfg = self.config
        offered = connections * cfg.video_rate_mbps / 1000.0
        return min(1.0, offered / cfg.nic_gbps)

    def cpu_utilization(self, connections: int) -> float:
        """Streaming work / available cycles: tiny, the paper's point."""
        cfg = self.config
        served = min(connections, cfg.max_connections)
        bytes_per_s = served * cfg.video_rate_mbps * 1e6 / 8
        demand = bytes_per_s * cfg.cycles_per_byte
        capacity = cfg.cores * cfg.frequency_ghz * 1e9
        return min(1.0, demand / capacity)

    def branch_miss_ratio(self, connections: int) -> float:
        """Predictor thrash grows with interleaved connection contexts."""
        cfg = self.config
        pressure = min(1.0, connections / cfg.max_connections)
        return cfg.base_branch_miss + cfg.max_branch_miss_rise * pressure ** 1.5

    # -- measured component ------------------------------------------------------

    def l1_miss_ratio(self, connections: int, turns: int = 4,
                      stream_accesses: int = 16, header_accesses: int = 12,
                      header_bytes: int = 512) -> float:
        """Replay connection buffers round-robin through an L1-sized cache.

        Per service turn a connection touches its hot header region
        (socket/HTTP state — resident while few connections are live) and
        streams video payload at sub-line granularity (new lines, but
        several accesses per line).  With hundreds of connections the
        headers evict each other and the measured miss ratio climbs to
        the paper's ~40 % at the connection limit.
        """
        if connections <= 0:
            return 0.0
        cfg = self.config
        cache = Cache("cdn.l1", cfg.l1_bytes, cfg.cache_line_bytes, ways=8)
        step = 16                                       # sub-line payload reads
        cursor = [0] * connections
        for turn in range(turns):
            for conn in range(connections):
                base = conn * cfg.connection_buffer_bytes
                for i in range(header_accesses):
                    cache.access(base + (i * 48) % header_bytes)
                for _ in range(stream_accesses):
                    offset = header_bytes + cursor[conn] % (
                        cfg.connection_buffer_bytes - header_bytes)
                    cache.access(base + offset)
                    cursor[conn] += step
        return cache.miss_ratio

    # -- the figure ------------------------------------------------------------------

    def point(self, connections: int) -> CdnPoint:
        return CdnPoint(
            connections=connections,
            nic_utilization=self.nic_utilization(connections),
            cpu_utilization=self.cpu_utilization(connections),
            branch_miss_ratio=self.branch_miss_ratio(connections),
            l1_miss_ratio=self.l1_miss_ratio(connections),
        )

    def sweep(self, points: int = 8) -> List[CdnPoint]:
        """Fig 2's x-axis: connection counts up to the NIC limit."""
        limit = self.config.max_connections
        counts = sorted({max(1, limit * i // points) for i in range(1, points + 1)})
        return [self.point(n) for n in counts]
