"""TeraSort (paper §4.1): sort large key/value datasets by key.

The classic TeraSort structure: sample the keys, cut partition
boundaries, route records to partitions (map), sort each partition
(reduce), concatenate.  The functional kernel works on (key, value) byte
tuples from :func:`repro.workloads.datasets.random_records`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import WorkloadError
from .profiles import TERASORT as PROFILE

__all__ = ["PROFILE", "terasort", "sample_splitters", "partition_of",
           "map_fn", "reduce_fn"]

Record = Tuple[bytes, bytes]


def sample_splitters(records: Sequence[Record], partitions: int,
                     sample_every: int = 7) -> List[bytes]:
    """Choose ``partitions - 1`` key boundaries from a sample of records."""
    if partitions <= 0:
        raise WorkloadError("partitions must be positive")
    if partitions == 1:
        return []
    sample = sorted(r[0] for r in records[::sample_every]) or sorted(
        r[0] for r in records
    )
    if not sample:
        return []
    step = max(1, len(sample) // partitions)
    return [sample[min(i * step, len(sample) - 1)]
            for i in range(1, partitions)]


def partition_of(key: bytes, splitters: Sequence[bytes]) -> int:
    """Index of the partition holding ``key``."""
    for i, boundary in enumerate(splitters):
        if key < boundary:
            return i
    return len(splitters)


def terasort(records: Sequence[Record], partitions: int = 4) -> List[Record]:
    """Reference implementation: full sample-sort."""
    splitters = sample_splitters(records, partitions)
    buckets: List[List[Record]] = [[] for _ in range(len(splitters) + 1)]
    for record in records:
        buckets[partition_of(record[0], splitters)].append(record)
    out: List[Record] = []
    for bucket in buckets:
        out.extend(sorted(bucket, key=lambda r: r[0]))
    return out


def map_fn(chunk: Sequence[Record], splitters: Sequence[bytes] = ()
           ) -> List[Tuple[int, Record]]:
    """MapReduce map: tag each record with its partition index."""
    return [(partition_of(r[0], splitters), r) for r in chunk]


def reduce_fn(key: int, values: Iterable[Record]) -> Tuple[int, List[Record]]:
    """MapReduce reduce: sort one partition."""
    return key, sorted(values, key=lambda r: r[0])
