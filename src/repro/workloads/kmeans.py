"""K-means (paper §4.1): unsupervised clustering.

Lloyd's algorithm in pure Python (datasets are small in the examples;
the architecture experiments use the statistical profile, not this
kernel's wall-clock speed).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from ..errors import WorkloadError
from .profiles import KMEANS as PROFILE

__all__ = ["PROFILE", "kmeans", "assign", "distance_sq", "map_fn", "reduce_fn"]

Point = Sequence[float]


def distance_sq(a: Point, b: Point) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def assign(point: Point, centroids: Sequence[Point]) -> int:
    """Index of the nearest centroid."""
    if not centroids:
        raise WorkloadError("no centroids")
    return min(range(len(centroids)),
               key=lambda i: (distance_sq(point, centroids[i]), i))


def _mean(points: List[Point], dim: int) -> List[float]:
    return [sum(p[d] for p in points) / len(points) for d in range(dim)]


def kmeans(points: Sequence[Point], k: int, iterations: int = 10,
           ) -> Tuple[List[List[float]], List[int]]:
    """Lloyd's algorithm; returns (centroids, assignment per point)."""
    if k <= 0 or k > len(points):
        raise WorkloadError(f"k={k} invalid for {len(points)} points")
    dim = len(points[0])
    centroids: List[List[float]] = [list(points[i * len(points) // k])
                                    for i in range(k)]
    labels = [0] * len(points)
    for _ in range(iterations):
        labels = [assign(p, centroids) for p in points]
        moved = False
        for c in range(k):
            members = [points[i] for i, l in enumerate(labels) if l == c]
            if members:
                new = _mean(members, dim)
                if new != centroids[c]:
                    centroids[c] = new
                    moved = True
        if not moved:
            break
    return centroids, labels


def map_fn(chunk: Tuple[Sequence[Point], Sequence[Point]]
           ) -> List[Tuple[int, Tuple[List[float], int]]]:
    """MapReduce map: partial (sum, count) per cluster for a point chunk."""
    points, centroids = chunk
    dim = len(centroids[0])
    sums = [[0.0] * dim for _ in centroids]
    counts = [0] * len(centroids)
    for p in points:
        c = assign(p, centroids)
        counts[c] += 1
        for d in range(dim):
            sums[c][d] += p[d]
    return [(c, (sums[c], counts[c])) for c in range(len(centroids))
            if counts[c]]


def reduce_fn(key: int, values: Iterable[Tuple[List[float], int]]
              ) -> Tuple[int, List[float]]:
    """MapReduce reduce: combine partial sums into the new centroid."""
    total_count = 0
    total_sum: List[float] = []
    for partial_sum, count in values:
        if not total_sum:
            total_sum = [0.0] * len(partial_sum)
        total_count += count
        for d, v in enumerate(partial_sum):
            total_sum[d] += v
    if total_count == 0:
        raise WorkloadError(f"cluster {key} received no points")
    return key, [s / total_count for s in total_sum]
