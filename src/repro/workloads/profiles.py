"""The six HTC benchmark profiles (paper §4.1) plus SPLASH2 baselines.

Granularity distributions follow the paper's Fig 8: HTC applications are
dominated by small (≤8 B) accesses — KMP and RNC are the extreme cases
with large 1–2 B shares, K-means is the outlier with few 1–2 B accesses —
while the eleven conventional SPLASH2 applications cluster at 32–64 B+.

Other parameters encode the paper's qualitative statements:

* *Search* has a low memory-instruction ratio ("it can not take full
  advantage of our pairing threads mechanism", Fig 17) and the biggest
  code footprint of the six (it is extracted from Xapian);
* *RNC* is the hard-real-time benchmark (§4.2.4);
* *K-means* is compute-heavy with larger vector accesses, which is why
  MACT batching slightly hurts it (Fig 20's <1 speedup).
"""

from __future__ import annotations

from typing import Dict, List

from ..noc.traffic import GranularityDist
from .base import WorkloadProfile, register_profile

__all__ = ["HTC_PROFILES", "SPLASH2_PROFILES", "htc_profile_names",
           "splash2_profile_names"]

KB = 1024


def _dist(*pairs) -> GranularityDist:
    return GranularityDist(tuple(pairs))


WORDCOUNT = register_profile(WorkloadProfile(
    name="wordcount",
    mem_ratio=0.35, branch_ratio=0.18,
    granularity=_dist((1, 0.35), (2, 0.20), (4, 0.20), (8, 0.15), (16, 0.10)),
    spm_fraction=0.88, uncached_fraction=0.04,
    working_set_bytes=int(1.5 * KB), code_footprint_bytes=8 * KB,
    xeon_dataset_bytes=24 * KB, ilp=1.8, branch_miss_rate=0.06,
))

TERASORT = register_profile(WorkloadProfile(
    name="terasort",
    mem_ratio=0.40, branch_ratio=0.15,
    granularity=_dist((2, 0.15), (4, 0.20), (8, 0.35), (16, 0.20), (32, 0.10)),
    spm_fraction=0.82, uncached_fraction=0.06,
    working_set_bytes=2 * KB, code_footprint_bytes=12 * KB,
    xeon_dataset_bytes=48 * KB, ilp=1.6, branch_miss_rate=0.08, streaming_locality=0.5,
))

SEARCH = register_profile(WorkloadProfile(
    name="search",
    mem_ratio=0.15, branch_ratio=0.22,
    granularity=_dist((4, 0.30), (8, 0.30), (16, 0.25), (32, 0.15)),
    spm_fraction=0.80, uncached_fraction=0.005,
    working_set_bytes=3 * KB, code_footprint_bytes=64 * KB,
    xeon_dataset_bytes=32 * KB, ilp=2.2, branch_miss_rate=0.10, branch_taken_ratio=0.5,
))

KMEANS = register_profile(WorkloadProfile(
    name="kmeans",
    mem_ratio=0.30, branch_ratio=0.10,
    granularity=_dist((8, 0.30), (16, 0.25), (32, 0.25), (64, 0.20)),
    spm_fraction=0.88, uncached_fraction=0.04,
    working_set_bytes=2 * KB, code_footprint_bytes=8 * KB,
    xeon_dataset_bytes=24 * KB, ilp=2.0, branch_miss_rate=0.04, mul_ratio=0.12,
))

KMP = register_profile(WorkloadProfile(
    name="kmp",
    mem_ratio=0.45, branch_ratio=0.20,
    granularity=_dist((1, 0.50), (2, 0.25), (4, 0.15), (8, 0.10)),
    spm_fraction=0.84, uncached_fraction=0.07,
    working_set_bytes=1 * KB, code_footprint_bytes=4 * KB,
    xeon_dataset_bytes=16 * KB, ilp=1.7, branch_miss_rate=0.07,
))

RNC = register_profile(WorkloadProfile(
    name="rnc",
    mem_ratio=0.40, branch_ratio=0.20,
    granularity=_dist((1, 0.30), (2, 0.30), (4, 0.25), (8, 0.15)),
    spm_fraction=0.84, uncached_fraction=0.06,
    working_set_bytes=int(1.5 * KB), code_footprint_bytes=16 * KB,
    xeon_dataset_bytes=24 * KB, ilp=1.5, branch_miss_rate=0.09, realtime=True,
))

HTC_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (WORDCOUNT, TERASORT, SEARCH, KMEANS, KMP, RNC)
}


def _splash(name: str, mem: float, ws_kb: int, mul: float = 0.05) -> WorkloadProfile:
    """Conventional HPC app: line-sized and larger accesses dominate."""
    return register_profile(WorkloadProfile(
        name=name,
        mem_ratio=mem, branch_ratio=0.12,
        granularity=_dist((8, 0.10), (16, 0.15), (32, 0.30), (64, 0.35),
                          (128, 0.10)),
        spm_fraction=0.0, uncached_fraction=0.15,
        working_set_bytes=ws_kb * KB, code_footprint_bytes=24 * KB,
        ilp=2.2, branch_miss_rate=0.03, mul_ratio=mul,
    ))


SPLASH2_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (
        _splash("splash2.barnes", 0.30, 256, mul=0.10),
        _splash("splash2.cholesky", 0.35, 512, mul=0.15),
        _splash("splash2.fft", 0.32, 1024, mul=0.18),
        _splash("splash2.fmm", 0.28, 256, mul=0.12),
        _splash("splash2.lu", 0.34, 512, mul=0.16),
        _splash("splash2.ocean", 0.38, 2048, mul=0.10),
        _splash("splash2.radiosity", 0.30, 256, mul=0.08),
        _splash("splash2.radix", 0.40, 1024, mul=0.04),
        _splash("splash2.raytrace", 0.28, 512, mul=0.12),
        _splash("splash2.volrend", 0.26, 256, mul=0.08),
        _splash("splash2.water", 0.30, 128, mul=0.14),
    )
}


def htc_profile_names() -> List[str]:
    return list(HTC_PROFILES)


def splash2_profile_names() -> List[str]:
    return list(SPLASH2_PROFILES)
