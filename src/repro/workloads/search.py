"""Search (paper §4.1): web-search scoring, extracted from Xapian.

A small inverted index with TF-IDF ranking: enough structure to exercise
the pointer-chasing, low-memory-ratio behaviour the paper attributes to
the Search benchmark, and functional enough for the examples to run real
queries.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import WorkloadError
from .profiles import SEARCH as PROFILE

__all__ = ["PROFILE", "SearchIndex", "map_fn", "reduce_fn"]


class SearchIndex:
    """In-memory inverted index with TF-IDF scoring."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[int, int]] = defaultdict(dict)
        self._doc_lengths: Dict[int, int] = {}

    def add_document(self, doc_id: int, text: str) -> None:
        if doc_id in self._doc_lengths:
            raise WorkloadError(f"duplicate document id {doc_id}")
        terms = text.split()
        self._doc_lengths[doc_id] = len(terms)
        for term in terms:
            postings = self._postings[term]
            postings[doc_id] = postings.get(doc_id, 0) + 1

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    def df(self, term: str) -> int:
        """Document frequency of a term."""
        return len(self._postings.get(term, {}))

    def query(self, text: str, top_k: int = 10) -> List[Tuple[int, float]]:
        """Ranked (doc_id, score) list for a free-text query."""
        scores: Dict[int, float] = defaultdict(float)
        n = max(1, self.num_documents)
        for term in text.split():
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = math.log(1 + n / len(postings))
            for doc_id, tf in postings.items():
                scores[doc_id] += (tf / self._doc_lengths[doc_id]) * idf
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_k]


def map_fn(chunk: Tuple[SearchIndex, Sequence[str]]
           ) -> List[Tuple[str, List[Tuple[int, float]]]]:
    """MapReduce map: answer a batch of queries against a shared index."""
    index, queries = chunk
    return [(q, index.query(q)) for q in queries]


def reduce_fn(key: str, values: Iterable[List[Tuple[int, float]]]
              ) -> Tuple[str, List[Tuple[int, float]]]:
    """MapReduce reduce: merge ranked lists for the same query."""
    merged: Dict[int, float] = {}
    for ranking in values:
        for doc_id, score in ranking:
            merged[doc_id] = max(merged.get(doc_id, 0.0), score)
    ranked = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
    return key, ranked[:10]
