"""SmarCo reproduction: a many-core high-throughput processor simulator.

Reimplementation of *SmarCo: An Efficient Many-Core Processor for
High-Throughput Applications in Datacenters* (Fan et al., HPCA 2018) as a
pure-Python discrete-event simulation library.

Quickstart::

    from repro import SmarCoChip, smarco_scaled, get_profile

    chip = SmarCoChip(smarco_scaled(sub_rings=2))
    chip.load_profile(get_profile("kmp"), threads_per_core=8,
                      instrs_per_thread=500)
    result = chip.run()
    print(result.ipc, result.mean_request_latency)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-figure reproduction status.
"""

from .chip import (
    ComparisonResult,
    RunOutcome,
    SmarCoChip,
    SmarcoRunResult,
    TcgRunResult,
    XeonRunResult,
    XeonSystem,
    compare,
    execute,
    run_smarco,
    run_xeon,
)
from .config import (
    MACTConfig,
    MemoryConfig,
    RingConfig,
    SchedulerConfig,
    SmarCoConfig,
    TCGConfig,
    XeonConfig,
    smarco_default,
    smarco_scaled,
    xeon_default,
)
from .exp import ExperimentSpec, RunRequest
from .workloads import all_profiles, get_profile

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "SmarCoChip",
    "SmarcoRunResult",
    "XeonSystem",
    "XeonRunResult",
    "TcgRunResult",
    "ComparisonResult",
    "RunOutcome",
    "execute",
    "run_smarco",
    "run_xeon",
    "compare",
    "RunRequest",
    "ExperimentSpec",
    "SmarCoConfig",
    "TCGConfig",
    "RingConfig",
    "MACTConfig",
    "MemoryConfig",
    "SchedulerConfig",
    "XeonConfig",
    "smarco_default",
    "smarco_scaled",
    "xeon_default",
    "get_profile",
    "all_profiles",
]
