"""Task objects for the laxity-aware scheduler (paper §3.7).

A task is one thread's worth of work with a hard deadline.  Laxity is the
classic least-laxity quantity ``deadline − now − remaining_work``; the
hardware scheduler orders by *static slack* (``deadline − work``), which
equals laxity up to a constant while a task is not running — exactly what
a RAM-based chain table can keep sorted without re-walking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SchedulerError
from ..sim.snapshot import register_snapshot_class

__all__ = ["TaskPriority", "Task", "task_id_state", "set_task_id_state"]

_next_task_id = 0


def _new_task_id() -> int:
    global _next_task_id
    tid = _next_task_id
    _next_task_id += 1
    return tid


def task_id_state() -> int:
    """The module-global id counter's next value (for checkpoints)."""
    return _next_task_id


def set_task_id_state(value: int) -> None:
    """Restore the id counter (checkpoint restore only)."""
    global _next_task_id
    _next_task_id = int(value)


class TaskPriority(enum.IntEnum):
    """Chain-table classes of Fig 16 (null = unoccupied slot)."""

    NORMAL = 0
    HIGH = 1


@dataclass
class Task:
    """One schedulable thread task."""

    work_cycles: float
    deadline: float                    # absolute cycle by which it must exit
    priority: TaskPriority = TaskPriority.NORMAL
    arrival: float = 0.0
    payload: Any = None
    task_id: int = field(default_factory=_new_task_id)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.work_cycles <= 0:
            raise SchedulerError(f"task {self.task_id}: non-positive work")

    @property
    def static_slack(self) -> float:
        """Deadline minus total work: the hardware chain-table sort key."""
        return self.deadline - self.work_cycles

    def laxity(self, now: float) -> float:
        """deadline − now − remaining work (for an unstarted task)."""
        return self.deadline - now - self.work_cycles

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def missed(self) -> bool:
        """Did the task exit after its deadline (or never exit)?"""
        if self.finished_at is None:
            return True
        return self.finished_at > self.deadline

    @property
    def response_time(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Task#{self.task_id}(work={self.work_cycles:.0f}, "
            f"deadline={self.deadline:.0f}, {self.priority.name})"
        )


register_snapshot_class(Task)
