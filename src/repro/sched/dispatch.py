"""Chip-level task dispatch and a scheduler testbed.

:class:`MainScheduler` models the main-ring scheduler (paper §3.7): it
receives tasks from the host CPU and spreads them over the sub-ring
schedulers for load balance (least-loaded by default, round-robin as
ablation).

:class:`SchedulerTestbed` executes one sub-ring's tasks on a pool of
hardware thread contexts (16 cores x 4 running threads = 64 contexts by
default, 128 thread *slots* as in Fig 21's caption) under any policy, and
records per-task exit times — the quantity Fig 21 plots.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..errors import SchedulerError
from ..sim.engine import Simulator
from ..sim.stats import StatsRegistry
from .task import Task

__all__ = ["MainScheduler", "SchedulerTestbed", "TestbedResult"]


class MainScheduler:
    """Main-ring dispatcher: host tasks -> sub-ring schedulers."""

    def __init__(self, sub_schedulers: Sequence, policy: str = "least-loaded",
                 dispatch_latency: int = 8) -> None:
        if not sub_schedulers:
            raise SchedulerError("need at least one sub-ring scheduler")
        if policy not in ("least-loaded", "round-robin"):
            raise SchedulerError(f"unknown dispatch policy {policy!r}")
        self.sub_schedulers = list(sub_schedulers)
        self.policy = policy
        self.dispatch_latency = dispatch_latency
        self._rr_next = 0
        self.dispatched_to = [0] * len(self.sub_schedulers)

    def dispatch(self, task: Task) -> int:
        """Send a task to a sub-ring; returns the chosen sub-ring index."""
        if self.policy == "round-robin":
            idx = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.sub_schedulers)
        else:
            idx = min(range(len(self.sub_schedulers)),
                      key=lambda i: self.sub_schedulers[i].pending)
        self.sub_schedulers[idx].submit(task)
        self.dispatched_to[idx] += 1
        return idx

    def imbalance(self) -> float:
        """max/mean dispatched tasks (1.0 = perfectly balanced)."""
        counts = self.dispatched_to
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0


class TestbedResult:
    """Per-task exit times plus summary statistics."""

    def __init__(self, tasks: List[Task]) -> None:
        self.tasks = tasks

    @property
    def exit_times(self) -> List[float]:
        return [t.finished_at for t in self.tasks if t.finished_at is not None]

    @property
    def success_rate(self) -> float:
        """Fraction of tasks that exited by their deadline."""
        if not self.tasks:
            return 0.0
        return sum(1 for t in self.tasks if not t.missed) / len(self.tasks)

    @property
    def spread(self) -> float:
        """max − min exit time (Fig 21's visual width)."""
        times = self.exit_times
        return max(times) - min(times) if times else 0.0

    @property
    def earliest(self) -> float:
        return min(self.exit_times) if self.exit_times else 0.0

    @property
    def latest(self) -> float:
        return max(self.exit_times) if self.exit_times else 0.0


class TimeSharedTestbed:
    """Preemptive time-sharing of many resident tasks over fewer running
    slots — the Fig 21 execution model: one sub-ring holds 128 task
    threads but only 64 run at any instant (4 of 8 threads per core).

    Policies:

    * ``"fair"`` — the software Deadline scheduler's behaviour for
      equal-deadline tasks: OS round-robin gives every task an equal
      service rate, so a task exits at (tasks/slots) x its own work —
      exit times spread exactly like the work distribution;
    * ``"laxity"`` — the hardware scheduler: each (fine) quantum the
      least-laxity tasks run.  With equal deadlines that is
      longest-remaining-first, which equalises remaining work and makes
      exit times cluster tightly just before the deadline.
    """

    def __init__(self, slots: int = 64, policy: str = "laxity",
                 quantum: float = 1024.0) -> None:
        if slots <= 0 or quantum <= 0:
            raise SchedulerError("slots and quantum must be positive")
        if policy not in ("fair", "laxity"):
            raise SchedulerError(f"unknown time-sharing policy {policy!r}")
        self.slots = slots
        self.policy = policy
        self.quantum = quantum

    def run(self, tasks: Sequence[Task]) -> TestbedResult:
        remaining = {t.task_id: t.work_cycles for t in tasks}
        by_id = {t.task_id: t for t in tasks}
        alive = sorted(remaining, key=lambda tid: tid)
        now = 0.0
        while alive:
            if self.policy == "laxity":
                # least laxity == most remaining work (equal deadlines)
                ordered = sorted(
                    alive,
                    key=lambda tid: (by_id[tid].deadline - now
                                     - remaining[tid], tid),
                )
            else:
                # fair: rotate so every alive task gets an equal share
                ordered = alive
            running = ordered[:self.slots]
            for tid in running:
                remaining[tid] -= self.quantum
                if remaining[tid] <= 0:
                    by_id[tid].finished_at = now + self.quantum + remaining[tid]
            if self.policy == "fair":
                # round-robin rotation of the run queue
                alive = alive[len(running):] + running
            alive = [tid for tid in alive if remaining[tid] > 0]
            now += self.quantum
        return TestbedResult(list(tasks))


class SchedulerTestbed:
    """Run tasks on ``contexts`` hardware thread contexts under a policy."""

    def __init__(self, sim: Simulator, scheduler, contexts: int = 64) -> None:
        if contexts <= 0:
            raise SchedulerError("need at least one context")
        self.sim = sim
        self.scheduler = scheduler
        self.contexts = contexts
        self._wake = sim.signal("testbed.wake")
        self._tasks: List[Task] = []
        self._started = False

    def submit(self, task: Task) -> None:
        self._tasks.append(task)
        self.scheduler.submit(task)
        self._wake.fire()

    def submit_all(self, tasks: Sequence[Task]) -> None:
        for task in tasks:
            self.submit(task)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for ctx in range(self.contexts):
            self.sim.spawn(self._context_proc(), f"testbed.ctx{ctx}")

    def run(self) -> TestbedResult:
        """Start contexts, drain the simulator, and collect results."""
        self.start()
        self.sim.run()
        return TestbedResult(list(self._tasks))

    def _context_proc(self) -> Generator:
        while True:
            task = self.scheduler.next_task()
            if task is None:
                if all(t.finished for t in self._tasks):
                    return
                yield self._wake
                continue
            yield self.scheduler.decision_overhead
            task.started_at = self.sim.now
            yield task.work_cycles
            task.finished_at = self.sim.now
            self._wake.fire()       # idle contexts re-check for exit
