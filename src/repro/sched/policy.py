"""The formal scheduler-policy surface: ABC + named registry.

Thread-to-core allocation is a design space, not a single algorithm (the
paper's laxity scheduler is one point; the SMT allocation-policy family
and data-criticality-aware placement are others).  This module defines
the contract every policy implements and the registry that makes the
set pluggable:

* :class:`SchedulerPolicy` — the abstract base.  Subclasses implement
  the *selection* hooks (``_enqueue`` / ``_select`` / ``pending``); the
  base class provides the full **context lifecycle** (the Fig 16 null
  thread chain: ``acquire_context`` / ``release_context`` /
  ``free_contexts`` / ``assign``) and the submit/dispatch stats
  counters, so every policy exposes the same surface — the historical
  asymmetry where only the laxity scheduler managed contexts is gone.
* :func:`register_policy` — class decorator adding a policy under a
  stable name (``@register_policy("laxity")``).
* :func:`get_policy` / :func:`create_policy` / :func:`list_policies` /
  :func:`policy_summaries` — lookup, construction and introspection
  (the ``policies`` CLI subcommand renders these).

Every policy constructor takes the same keyword surface
``(name=None, config=None, registry=None)`` so factories, the scenario
harness and the conformance test suite can instantiate any registered
policy uniformly.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, ClassVar, Deque, Dict, List, Optional, Tuple, Type

from ..errors import SchedulerError
from ..sim.stats import StatsRegistry
from .task import Task

__all__ = [
    "SchedulerPolicy",
    "register_policy",
    "get_policy",
    "create_policy",
    "list_policies",
    "policy_summaries",
]


class SchedulerPolicy(abc.ABC):
    """Abstract base of every task-scheduling policy.

    The surface a chip, testbed or scenario harness may rely on:

    ``submit(task)``
        enqueue one task (counts ``<name>.submitted``).
    ``next_task()``
        pop the policy's best pending task, or None when idle (counts
        ``<name>.dispatched``).
    ``pending``
        number of queued tasks.
    ``acquire_context()`` / ``release_context(id)`` / ``free_contexts``
        the null thread chain of free execution contexts (FIFO).
    ``assign()``
        one hardware dispatch step: pair the best task with a free
        context, or None when either chain is empty.
    ``decision_overhead``
        cycles charged per scheduling decision (hardware vs software).
    """

    #: registry key; set by :func:`register_policy`
    policy_name: ClassVar[str] = ""
    #: one-line description for ``policies list`` / docs
    summary: ClassVar[str] = ""
    #: cycles per scheduling decision
    decision_overhead: ClassVar[int] = 50

    def __init__(self, name: Optional[str] = None,
                 config=None,
                 registry: Optional[StatsRegistry] = None) -> None:
        from ..config import SchedulerConfig

        self.name = name if name is not None else (self.policy_name or
                                                   type(self).__name__)
        self.config = config if config is not None else SchedulerConfig()
        reg = registry if registry is not None else StatsRegistry()
        self.registry = reg
        self.submitted = reg.counter(f"{self.name}.submitted")
        self.dispatched = reg.counter(f"{self.name}.dispatched")
        self._null_chain: Deque[int] = deque()
        self._setup()

    def _setup(self) -> None:
        """Subclass hook: build queues/tables (runs at the end of init)."""

    # -- task queue (selection is the subclass's whole job) ----------------

    def submit(self, task: Task) -> None:
        self.submitted.inc()
        self._enqueue(task)

    def next_task(self) -> Optional[Task]:
        """The policy's best pending task (None when idle)."""
        task = self._select()
        if task is not None:
            self.dispatched.inc()
        return task

    @abc.abstractmethod
    def _enqueue(self, task: Task) -> None:
        """Add one task to the policy's pending structure."""

    @abc.abstractmethod
    def _select(self) -> Optional[Task]:
        """Remove and return the best pending task (None when empty)."""

    @property
    @abc.abstractmethod
    def pending(self) -> int:
        """Number of tasks waiting to be dispatched."""

    # -- null thread chain (free contexts; uniform across policies) --------

    def release_context(self, context_id: int) -> None:
        """A thread context finished its task: append to the null chain."""
        self._null_chain.append(context_id)
        self._on_release(context_id)

    def acquire_context(self) -> Optional[int]:
        """Pop a free thread context (None when every context is busy)."""
        return self._null_chain.popleft() if self._null_chain else None

    def withdraw_context(self, context_id: int) -> bool:
        """Remove one *specific* free context from the null chain.

        This is the drain/failure event of a sub-ring: the context stops
        being schedulable.  Returns False when the context is not
        currently free (e.g. already granted)."""
        try:
            self._null_chain.remove(context_id)
        except ValueError:
            return False
        return True

    @property
    def free_contexts(self) -> int:
        return len(self._null_chain)

    def assign(self) -> Optional[Tuple[int, Task]]:
        """One hardware dispatch step: pair the best pending task with a
        free context.  Returns None when either chain is empty."""
        if not self._null_chain or not self.pending:
            return None
        context = self.acquire_context()
        task = self.next_task()
        return context, task

    def _on_release(self, context_id: int) -> None:
        """Subclass hook: observe a context returning to the null chain
        (allocation-aware policies track per-context history here)."""

    # -- snapshot protocol --------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the policy's mutable scheduling state.

        The base class owns the null thread chain; the pending-task
        structure comes from the :meth:`_queue_state` hook, which every
        registered policy must implement (the conformance suite enforces
        ``load_state(state_dict())`` identity).  The submitted/dispatched
        counters live in the stats registry and travel with it.
        """
        return {
            "null_chain": list(self._null_chain),
            "queue": self._queue_state(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._null_chain = deque(state["null_chain"])
        self._load_queue_state(state["queue"])

    def _queue_state(self) -> object:
        """Subclass hook: snapshot the pending-task structure."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement _queue_state(); "
            f"every registered policy must support checkpointing")

    def _load_queue_state(self, state: object) -> None:
        """Subclass hook: restore the pending-task structure."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement _load_queue_state(); "
            f"every registered policy must support checkpointing")

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Live counters (the stats hook of the policy protocol)."""
        return {
            "submitted": self.submitted.value,
            "dispatched": self.dispatched.value,
            "pending": float(self.pending),
            "free_contexts": float(self.free_contexts),
        }

    @classmethod
    def describe(cls) -> Dict[str, object]:
        """Registry card: name, overhead, one-liner, full docstring."""
        return {
            "name": cls.policy_name or cls.__name__,
            "class": cls.__name__,
            "decision_overhead": cls.decision_overhead,
            "summary": cls.summary or (cls.__doc__ or "").strip().splitlines()[0],
            "doc": (cls.__doc__ or "").strip(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"pending={self.pending}, free={self.free_contexts})")


# -- the registry ------------------------------------------------------------

_POLICIES: Dict[str, Type[SchedulerPolicy]] = {}


def register_policy(name: str) -> Callable[[Type[SchedulerPolicy]],
                                           Type[SchedulerPolicy]]:
    """Class decorator: add a :class:`SchedulerPolicy` under ``name``."""

    def decorate(cls: Type[SchedulerPolicy]) -> Type[SchedulerPolicy]:
        if not (isinstance(cls, type) and issubclass(cls, SchedulerPolicy)):
            raise SchedulerError(
                f"@register_policy({name!r}): {cls!r} is not a "
                f"SchedulerPolicy subclass")
        if name in _POLICIES:
            raise SchedulerError(f"duplicate scheduler policy {name!r}")
        cls.policy_name = name
        _POLICIES[name] = cls
        return cls

    return decorate


def get_policy(name: str) -> Type[SchedulerPolicy]:
    """The registered policy class for ``name`` (raises on unknown)."""
    _ensure_builtin_policies()
    try:
        return _POLICIES[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduling policy {name!r}; "
            f"registered: {', '.join(sorted(_POLICIES))}") from None


def create_policy(name: str, *, instance_name: Optional[str] = None,
                  config=None,
                  registry: Optional[StatsRegistry] = None) -> SchedulerPolicy:
    """Instantiate the registered policy ``name``."""
    return get_policy(name)(name=instance_name, config=config,
                            registry=registry)


def list_policies() -> List[str]:
    """Sorted names of every registered policy."""
    _ensure_builtin_policies()
    return sorted(_POLICIES)


def policy_summaries() -> List[Dict[str, object]]:
    """``describe()`` cards for every registered policy, name-sorted."""
    _ensure_builtin_policies()
    return [_POLICIES[name].describe() for name in sorted(_POLICIES)]


def _ensure_builtin_policies() -> None:
    """Import the modules whose import registers the built-in zoo.

    Keeps registry lookups correct even when a caller imports
    ``repro.sched.policy`` directly instead of the package.
    """
    from . import policies, zoo  # noqa: F401
