"""Task-scheduling policies.

* :class:`LaxityScheduler` — the paper's hardware scheduler: per-sub-ring
  chain tables (high-priority + normal) ordered by static slack
  (deadline − work).  With equal deadlines this schedules the *longest*
  task first, which is what tightens the exit-time spread in Fig 21.
  Hardware decision overhead is a few cycles.
* :class:`DeadlineScheduler` — the software baseline ([21] in the paper):
  earliest-deadline-first with FIFO tie-break (so equal-deadline tasks run
  in arrival order) and a software decision overhead of hundreds of
  cycles.
* :class:`FifoScheduler` — arrival order, no deadline awareness.

All policies expose the same interface: ``submit(task)`` and
``next_task()``; a testbed or chip binds them to execution contexts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..config import SchedulerConfig
from ..sim.stats import StatsRegistry
from .chains import ChainTable
from .task import Task, TaskPriority

__all__ = ["LaxityScheduler", "DeadlineScheduler", "FifoScheduler", "make_scheduler"]


class LaxityScheduler:
    """Hardware laxity-aware scheduler of one sub-ring (Fig 16).

    Three chain tables, as the figure draws them: the *null thread chain*
    (free thread contexts, FIFO), the *normal thread chain*, and the
    *high-priority thread chain* (both sorted by static slack).
    """

    #: cycles per scheduling decision (RAM chain head pop + thread attach)
    decision_overhead = 4

    def __init__(self, name: str = "laxity",
                 config: Optional[SchedulerConfig] = None,
                 registry: Optional[StatsRegistry] = None) -> None:
        cfg = config if config is not None else SchedulerConfig()
        entries = cfg.chain_table_entries
        self.name = name
        self.high = ChainTable(f"{name}.high", key=lambda t: t.static_slack,
                               capacity=entries)
        self.normal = ChainTable(f"{name}.normal", key=lambda t: t.static_slack,
                                 capacity=entries)
        self._null_chain: Deque[int] = deque()     # free thread contexts
        reg = registry if registry is not None else StatsRegistry()
        self.submitted = reg.counter(f"{name}.submitted")
        self.dispatched = reg.counter(f"{name}.dispatched")

    def submit(self, task: Task) -> None:
        self.submitted.inc()
        table = self.high if task.priority is TaskPriority.HIGH else self.normal
        table.insert(task)

    def next_task(self) -> Optional[Task]:
        """Highest-priority, least-slack task (None when idle)."""
        task = self.high.pop_head()
        if task is None:
            task = self.normal.pop_head()
        if task is not None:
            self.dispatched.inc()
        return task

    # -- null thread chain (free contexts) -------------------------------

    def release_context(self, context_id: int) -> None:
        """A thread context finished its task: append to the null chain."""
        self._null_chain.append(context_id)

    def acquire_context(self) -> Optional[int]:
        """Pop a free thread context (None when every context is busy)."""
        return self._null_chain.popleft() if self._null_chain else None

    @property
    def free_contexts(self) -> int:
        return len(self._null_chain)

    def assign(self) -> Optional[Tuple[int, Task]]:
        """One hardware dispatch step: pair the best pending task with a
        free context.  Returns None when either chain is empty."""
        if not self._null_chain or not self.pending:
            return None
        context = self.acquire_context()
        task = self.next_task()
        return context, task

    @property
    def pending(self) -> int:
        return len(self.high) + len(self.normal)


class DeadlineScheduler:
    """Software EDF baseline with per-decision OS overhead."""

    decision_overhead = 200

    def __init__(self, name: str = "deadline",
                 registry: Optional[StatsRegistry] = None) -> None:
        self.name = name
        self._queue: Deque[Task] = deque()
        reg = registry if registry is not None else StatsRegistry()
        self.submitted = reg.counter(f"{name}.submitted")
        self.dispatched = reg.counter(f"{name}.dispatched")

    def submit(self, task: Task) -> None:
        self.submitted.inc()
        self._queue.append(task)

    def next_task(self) -> Optional[Task]:
        if not self._queue:
            return None
        # EDF with FIFO tie-break: min deadline, earliest arrival wins
        best = min(self._queue, key=lambda t: (t.deadline, t.arrival, t.task_id))
        self._queue.remove(best)
        self.dispatched.inc()
        return best

    @property
    def pending(self) -> int:
        return len(self._queue)


class FifoScheduler:
    """Arrival-order baseline."""

    decision_overhead = 50

    def __init__(self, name: str = "fifo",
                 registry: Optional[StatsRegistry] = None) -> None:
        self.name = name
        self._queue: Deque[Task] = deque()
        reg = registry if registry is not None else StatsRegistry()
        self.submitted = reg.counter(f"{name}.submitted")
        self.dispatched = reg.counter(f"{name}.dispatched")

    def submit(self, task: Task) -> None:
        self.submitted.inc()
        self._queue.append(task)

    def next_task(self) -> Optional[Task]:
        if not self._queue:
            return None
        self.dispatched.inc()
        return self._queue.popleft()

    @property
    def pending(self) -> int:
        return len(self._queue)


def make_scheduler(policy: str, name: Optional[str] = None,
                   config: Optional[SchedulerConfig] = None,
                   registry: Optional[StatsRegistry] = None):
    """Factory keyed by :class:`~repro.config.SchedulerConfig` policy."""
    if policy == "laxity":
        return LaxityScheduler(name or "laxity", config, registry)
    if policy == "deadline":
        return DeadlineScheduler(name or "deadline", registry)
    if policy == "fifo":
        return FifoScheduler(name or "fifo", registry)
    from ..errors import SchedulerError

    raise SchedulerError(f"unknown scheduling policy {policy!r}")
