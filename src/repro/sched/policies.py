"""The paper's task-scheduling policies, on the pluggable policy API.

* :class:`LaxityScheduler` — the paper's hardware scheduler: per-sub-ring
  chain tables (high-priority + normal) ordered by static slack
  (deadline − work).  With equal deadlines this schedules the *longest*
  task first, which is what tightens the exit-time spread in Fig 21.
  Hardware decision overhead is a few cycles.
* :class:`DeadlineScheduler` — the software baseline ([21] in the paper):
  earliest-deadline-first with FIFO tie-break (so equal-deadline tasks run
  in arrival order) and a software decision overhead of hundreds of
  cycles.
* :class:`FifoScheduler` — arrival order, no deadline awareness.

All three are registered with :mod:`repro.sched.policy` (``"laxity"``,
``"deadline"``, ``"fifo"``) and share the full
:class:`~repro.sched.policy.SchedulerPolicy` surface — including the
context lifecycle that used to be laxity-only.  The related-work policies
live in :mod:`repro.sched.zoo`.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Deque, Optional

from ..config import SchedulerConfig
from ..sim.stats import StatsRegistry
from .chains import ChainTable
from .policy import SchedulerPolicy, create_policy, register_policy
from .task import Task, TaskPriority

__all__ = ["LaxityScheduler", "DeadlineScheduler", "FifoScheduler",
           "make_scheduler"]


@register_policy("laxity")
class LaxityScheduler(SchedulerPolicy):
    """Hardware laxity-aware scheduler of one sub-ring (Fig 16).

    Three chain tables, as the figure draws them: the *null thread chain*
    (free thread contexts, FIFO — provided by the policy base class), the
    *normal thread chain*, and the *high-priority thread chain* (both
    sorted by static slack).
    """

    summary = ("paper 3.7: least static slack first via RAM chain tables "
               "(HIGH chain preempts NORMAL)")
    #: cycles per scheduling decision (RAM chain head pop + thread attach)
    decision_overhead = 4

    def _setup(self) -> None:
        entries = self.config.chain_table_entries
        self.high = ChainTable(f"{self.name}.high",
                               key=lambda t: t.static_slack,
                               capacity=entries)
        self.normal = ChainTable(f"{self.name}.normal",
                                 key=lambda t: t.static_slack,
                                 capacity=entries)

    def _enqueue(self, task: Task) -> None:
        table = self.high if task.priority is TaskPriority.HIGH else self.normal
        table.insert(task)

    def _select(self) -> Optional[Task]:
        """Highest-priority, least-slack task (None when idle)."""
        task = self.high.pop_head()
        if task is None:
            task = self.normal.pop_head()
        return task

    @property
    def pending(self) -> int:
        return len(self.high) + len(self.normal)

    def _queue_state(self) -> dict:
        return {"high": self.high.state_dict(),
                "normal": self.normal.state_dict()}

    def _load_queue_state(self, state: dict) -> None:
        self.high.load_state(state["high"])
        self.normal.load_state(state["normal"])


@register_policy("deadline")
class DeadlineScheduler(SchedulerPolicy):
    """Software EDF baseline with per-decision OS overhead."""

    summary = ("software EDF baseline: earliest deadline first, FIFO "
               "tie-break, OS-scale decision cost")
    decision_overhead = 200

    def _setup(self) -> None:
        self._queue: Deque[Task] = deque()

    def _enqueue(self, task: Task) -> None:
        self._queue.append(task)

    def _select(self) -> Optional[Task]:
        if not self._queue:
            return None
        # EDF with FIFO tie-break: min deadline, earliest arrival wins
        best = min(self._queue, key=lambda t: (t.deadline, t.arrival, t.task_id))
        self._queue.remove(best)
        return best

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _queue_state(self) -> list:
        return list(self._queue)

    def _load_queue_state(self, state: list) -> None:
        self._queue = deque(state)


@register_policy("fifo")
class FifoScheduler(SchedulerPolicy):
    """Arrival-order baseline."""

    summary = "arrival order, no deadline awareness"
    decision_overhead = 50

    def _setup(self) -> None:
        self._queue: Deque[Task] = deque()

    def _enqueue(self, task: Task) -> None:
        self._queue.append(task)

    def _select(self) -> Optional[Task]:
        if not self._queue:
            return None
        return self._queue.popleft()

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _queue_state(self) -> list:
        return list(self._queue)

    def _load_queue_state(self, state: list) -> None:
        self._queue = deque(state)


def make_scheduler(policy: str, name: Optional[str] = None,
                   config: Optional[SchedulerConfig] = None,
                   registry: Optional[StatsRegistry] = None):
    """Deprecated string-dispatch factory; use the policy registry.

    Kept as a warning shim (in the style of the ``run.py`` kwargs shims):
    it delegates to :func:`repro.sched.policy.create_policy`, which also
    knows every policy registered after this factory was written.
    """
    warnings.warn(
        "make_scheduler(policy) is deprecated; use "
        "repro.sched.create_policy(policy) / get_policy(policy) — the "
        "registry also covers plug-in policies",
        DeprecationWarning, stacklevel=2)
    return create_policy(policy, instance_name=name, config=config,
                         registry=registry)
