"""Adversarial scheduling scenarios and the audited scenario harness.

A *scenario* is a deterministic, seed-driven script of trouble for a
scheduler: a timed task arrival sequence plus optional context-drain
events.  Four adversarial families (plus a benign baseline) stress the
axes along which the related-work policies differ:

* ``uniform``        — the benign Fig 21 shape: one wave, moderate slack.
* ``skewed``         — heavy-tailed (Pareto) task sizes: a few monsters
  among many minnows; punishes policies that let one context eat a
  monster late.
* ``deadline-storm`` — bursts of near-simultaneous arrivals with tight
  per-burst deadlines; punishes high decision overhead and any policy
  that lets early bursts starve late ones.
* ``subring-drain``  — half the execution contexts fail mid-run (a
  sub-ring drain); punishes plans that banked on full parallelism.
* ``mact-hostile``   — sparse-access tasks whose small scattered
  requests defeat MACT batching, inflating their effective work and
  memory-stall share; this is where the data-criticality signal earns
  its keep.

Every scenario draws exclusively from named
:class:`~repro.sim.rng.RngTree` streams, so a (scenario, seed) pair is
bit-reproducible across processes and platforms.

:func:`run_sched_scenario` races one registered policy against one
scenario on a :class:`ScenarioTestbed` — a context pool that exercises
the *full* policy protocol (``submit`` / ``assign`` / context
lifecycle) — under the PR 4 invariant audit layer (task conservation,
context conservation), and returns a :class:`SchedRunResult` that
serialises through the shared result protocol into the experiment
cache, telemetry and report layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.quantiles import quantile, thin_sorted
from ..chip.results import DictResult
from ..errors import SchedulerError
from ..sim.engine import Simulator
from ..sim.rng import RngTree
from ..sim.snapshot import snapshotable
from ..sim.stats import StatsRegistry
from .policy import create_policy
from .task import Task, TaskPriority

__all__ = [
    "SchedScenario",
    "ScenarioScript",
    "ScenarioTestbed",
    "SchedRunResult",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_summaries",
    "prepare_sched_scenario",
    "collect_sched_result",
    "run_sched_scenario",
]

#: default deadline-success metric horizon scale (cycles of work per task)
_WORK_LO, _WORK_HI = 60_000.0, 160_000.0

#: most response samples a result record ships (thinned to evenly-spaced
#: order statistics beyond this, which preserves the quantile structure)
RESPONSE_SAMPLE_CAP = 512


@dataclass(frozen=True)
class ScenarioScript:
    """The expanded, deterministic event script of one scenario run."""

    #: (arrival_time, task) pairs; arrival times need not be sorted
    arrivals: Tuple[Tuple[float, Task], ...]
    #: (time, n_contexts) drain events (a drain never kills the last
    #: context — the harness clamps it)
    drains: Tuple[Tuple[float, int], ...] = ()


#: a scenario builder: (rng_tree, profile, n_tasks, contexts) -> script
ScenarioFn = Callable[[RngTree, Any, int, int], ScenarioScript]


@dataclass(frozen=True)
class SchedScenario:
    """One registered adversarial scenario."""

    name: str
    summary: str
    build: ScenarioFn


_SCENARIOS: Dict[str, SchedScenario] = {}


def register_scenario(name: str, summary: str) -> Callable[[ScenarioFn],
                                                           ScenarioFn]:
    """Function decorator: add a scenario builder under ``name``."""

    def decorate(fn: ScenarioFn) -> ScenarioFn:
        if name in _SCENARIOS:
            raise SchedulerError(f"duplicate scenario {name!r}")
        _SCENARIOS[name] = SchedScenario(name=name, summary=summary, build=fn)
        return fn

    return decorate


def get_scenario(name: str) -> SchedScenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scenario {name!r}; "
            f"registered: {', '.join(sorted(_SCENARIOS))}") from None


def list_scenarios() -> List[str]:
    return sorted(_SCENARIOS)


def scenario_summaries() -> List[Dict[str, str]]:
    return [{"name": s.name, "summary": s.summary}
            for _, s in sorted(_SCENARIOS.items())]


# -- criticality stamping -----------------------------------------------------


def _base_criticality(profile: Any) -> float:
    """Static per-workload criticality estimate (stall share of work).

    The live signal comes from the hop-trace latency breakdown
    (``repro.analysis.breakdown`` / PR 3) via
    :func:`repro.sched.zoo.criticality_from_breakdown`; scenarios fall
    back to the workload profile's memory shape when no measured rows
    are supplied: accesses that neither hit SPM nor batch well are the
    ones that stall.
    """
    if profile is None:
        return 0.5
    return max(0.05, profile.mem_ratio * (1.0 - profile.spm_fraction))


def _stamp(task: Task, criticality: float, **extra: float) -> Task:
    payload = {"criticality": round(criticality, 9)}
    payload.update(extra)
    task.payload = payload
    return task


# -- the scenario catalogue ---------------------------------------------------


@register_scenario("uniform",
                   "benign baseline: one wave, uniform sizes, loose deadline")
def _s_uniform(rng_tree: RngTree, profile: Any, n_tasks: int,
               contexts: int) -> ScenarioScript:
    rng = rng_tree.stream("uniform.tasks")
    base = _base_criticality(profile)
    # tight enough that a policy wasting its last wave misses the tail
    deadline = _WORK_HI * max(2.0, n_tasks / max(1, contexts)) * 0.80
    arrivals = []
    for _ in range(n_tasks):
        work = rng.uniform(_WORK_LO, _WORK_HI)
        pri = TaskPriority.HIGH if rng.random() < 0.15 else TaskPriority.NORMAL
        task = Task(work_cycles=work, deadline=deadline, priority=pri)
        arrivals.append((0.0, _stamp(task, base * rng.uniform(0.8, 1.2))))
    return ScenarioScript(arrivals=tuple(arrivals))


@register_scenario("skewed",
                   "heavy-tailed (Pareto) task sizes: a few monsters among "
                   "many minnows")
def _s_skewed(rng_tree: RngTree, profile: Any, n_tasks: int,
              contexts: int) -> ScenarioScript:
    rng = rng_tree.stream("skewed.tasks")
    base = _base_criticality(profile)
    deadline = _WORK_HI * max(2.0, n_tasks / max(1, contexts)) * 1.2
    arrivals = []
    for _ in range(n_tasks):
        work = min(8.0 * _WORK_HI, 0.4 * _WORK_LO * rng.paretovariate(1.3)
                   + 0.5 * _WORK_LO)
        task = Task(work_cycles=work, deadline=deadline)
        arrivals.append((0.0, _stamp(task, base * rng.uniform(0.8, 1.2))))
    return ScenarioScript(arrivals=tuple(arrivals))


@register_scenario("deadline-storm",
                   "bursts of near-simultaneous arrivals with tight "
                   "per-burst deadlines")
def _s_deadline_storm(rng_tree: RngTree, profile: Any, n_tasks: int,
                      contexts: int) -> ScenarioScript:
    rng = rng_tree.stream("storm.tasks")
    base = _base_criticality(profile)
    bursts = 4
    # bursts land faster than the pool can drain them, so the backlog
    # compounds: by the last burst the queue is the real adversary
    mean_work = 0.5 * (0.5 * _WORK_LO + 0.8 * _WORK_HI)
    gap = mean_work * max(1.0, n_tasks / (bursts * max(1, contexts))) * 0.55
    arrivals = []
    for i in range(n_tasks):
        burst = i % bursts
        at = burst * gap + rng.uniform(0.0, 0.02 * gap)
        work = rng.uniform(0.5 * _WORK_LO, 0.8 * _WORK_HI)
        slack = rng.uniform(1.1, 2.6)       # tight relative to queue depth
        pri = TaskPriority.HIGH if rng.random() < 0.3 else TaskPriority.NORMAL
        task = Task(work_cycles=work, priority=pri, arrival=at,
                    deadline=at + slack * work
                    * max(1.0, n_tasks / (bursts * max(1, contexts))))
        arrivals.append((at, _stamp(task, base * rng.uniform(0.9, 1.1))))
    return ScenarioScript(arrivals=tuple(arrivals))


@register_scenario("subring-drain",
                   "half the contexts fail mid-run (sub-ring drain)")
def _s_subring_drain(rng_tree: RngTree, profile: Any, n_tasks: int,
                     contexts: int) -> ScenarioScript:
    rng = rng_tree.stream("drain.tasks")
    base = _base_criticality(profile)
    # headroom budgeted for the *full* pool: the drain is the surprise
    deadline = _WORK_HI * max(2.0, n_tasks / max(1, contexts)) * 0.9
    arrivals = []
    for _ in range(n_tasks):
        work = rng.uniform(_WORK_LO, _WORK_HI)
        task = Task(work_cycles=work, deadline=deadline)
        arrivals.append((0.0, _stamp(task, base * rng.uniform(0.8, 1.2))))
    drain_at = _WORK_HI * 1.5
    return ScenarioScript(arrivals=tuple(arrivals),
                          drains=((drain_at, contexts // 2),))


@register_scenario("mact-hostile",
                   "sparse scattered accesses defeat MACT batching: "
                   "inflated work, high criticality variance")
def _s_mact_hostile(rng_tree: RngTree, profile: Any, n_tasks: int,
                    contexts: int) -> ScenarioScript:
    rng = rng_tree.stream("mact.tasks")
    base = _base_criticality(profile)
    deadline = _WORK_HI * max(2.0, n_tasks / max(1, contexts)) * 1.15
    arrivals = []
    for _ in range(n_tasks):
        # sparsity: fraction of a task's accesses that land alone in a
        # MACT line and pay full DRAM latency instead of batching
        sparsity = rng.uniform(0.1, 1.0)
        work = rng.uniform(0.6 * _WORK_LO, _WORK_HI) * (1.0 + 1.5 * sparsity)
        task = Task(work_cycles=work, deadline=deadline)
        arrivals.append((0.0, _stamp(task, base * (0.5 + 2.5 * sparsity),
                                     sparsity=round(sparsity, 9))))
    return ScenarioScript(arrivals=tuple(arrivals))


# -- the audited scenario testbed --------------------------------------------


@snapshotable
class _ContextSlot:
    """Explicit-state form of one context's dispatch loop.

    Each phase boundary is one resume of the old ``_context_proc``
    generator, issuing identical schedule/wait calls in identical order,
    so the slot can travel through checkpoints.
    """

    __slots__ = ("bed", "ctx", "task", "phase")

    def __init__(self, bed: "ScenarioTestbed", ctx: int) -> None:
        self.bed = bed
        self.ctx = ctx
        self.task: Optional[Task] = None
        self.phase = "init"

    def _step(self, _payload=None) -> None:
        bed = self.bed
        sim = bed.sim
        while True:
            if self.phase == "init":
                bed.scheduler.release_context(self.ctx)
                bed._dispatch()
                self.phase = "pick"
                continue
            if self.phase == "pick":
                task = bed._grants.pop(self.ctx, None)
                if task is None:
                    if (bed._drain_pending
                            and bed.scheduler.withdraw_context(self.ctx)):
                        bed._drain_pending -= 1
                        bed.drained += 1
                        return
                    if bed._finished >= bed._expected:
                        return
                    bed._wake.wait(self._step)
                    return
                self.task = task
                self.phase = "start"
                sim.schedule(bed.scheduler.decision_overhead, self._step, None)
                return
            if self.phase == "start":
                task = self.task
                task.started_at = sim.now
                self.phase = "work"
                sim.schedule(task.work_cycles, self._step, None)
                return
            # work done
            task = self.task
            task.finished_at = sim.now
            self.task = None
            bed._finished += 1
            bed.scheduler.release_context(self.ctx)
            bed._dispatch()
            bed._wake.fire()        # idle contexts re-check for exit/drain
            self.phase = "pick"


class ScenarioTestbed:
    """A context pool driving the *full* policy protocol under audit.

    Unlike :class:`~repro.sched.dispatch.SchedulerTestbed` (which only
    calls ``next_task``), this testbed runs the hardware dispatch
    protocol end-to-end: idle contexts park in the policy's null thread
    chain, a dispatch step pairs them with tasks via ``assign()``, and
    contexts return themselves on completion — so allocation-aware
    policies (``smt-balance``) see real per-context history, and the
    audit layer can check both task and context conservation.
    """

    def __init__(self, sim: Simulator, scheduler, contexts: int = 64,
                 auditor=None) -> None:
        if contexts <= 0:
            raise SchedulerError("need at least one context")
        self.sim = sim
        self.scheduler = scheduler
        self.contexts = contexts
        self.auditor = auditor
        self._wake = sim.signal("scenario.wake")
        self._tasks: List[Task] = []
        self._expected = 0
        self._finished = 0
        self._grants: Dict[int, Task] = {}
        self._started_ids: set = set()
        self._drain_pending = 0
        self.drained = 0
        self._started = False
        self._slots: List[_ContextSlot] = []

    # -- script loading ----------------------------------------------------

    def load(self, script: ScenarioScript) -> None:
        """Schedule every arrival and drain event of a scenario script."""
        self._expected += len(script.arrivals)
        for at, task in script.arrivals:
            if at <= 0:
                self._submit(task)
            else:
                self.sim.schedule_at(at, self._submit, task)
        for at, count in script.drains:
            self.sim.schedule_at(at, self._drain, count)

    def _submit(self, task: Task) -> None:
        self._tasks.append(task)
        self.scheduler.submit(task)
        self._dispatch()
        self._wake.fire()

    def _drain(self, count: int) -> None:
        # never kill the last context: the script must stay completable
        alive = self.contexts - self.drained - self._drain_pending
        self._drain_pending += max(0, min(count, alive - 1))
        self._wake.fire()

    # -- the dispatch protocol ---------------------------------------------

    def _dispatch(self) -> None:
        """Pair free contexts with tasks until either chain runs dry."""
        while True:
            pair = self.scheduler.assign()
            if pair is None:
                return
            context, task = pair
            if self.auditor is not None:
                self.auditor.count("task_conservation")
                if context in self._grants:
                    self.auditor.violation(
                        "task_conservation", f"sched.{self.scheduler.name}",
                        self.sim.now,
                        f"context {context} granted twice concurrently")
                if task.task_id in self._started_ids:
                    self.auditor.violation(
                        "task_conservation", f"sched.{self.scheduler.name}",
                        self.sim.now,
                        f"task {task.task_id} dispatched twice")
            self._started_ids.add(task.task_id)
            self._grants[context] = task

    # -- snapshot protocol --------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "tasks": list(self._tasks),
            "expected": self._expected,
            "finished": self._finished,
            "grants": dict(self._grants),
            "started_ids": set(self._started_ids),
            "drain_pending": self._drain_pending,
            "drained": self.drained,
            "started": self._started,
            "slots": list(self._slots),
        }

    def load_state(self, state: dict) -> None:
        self._tasks = list(state["tasks"])
        self._expected = state["expected"]
        self._finished = state["finished"]
        self._grants = dict(state["grants"])
        self._started_ids = set(state["started_ids"])
        self._drain_pending = state["drain_pending"]
        self.drained = state["drained"]
        self._started = state["started"]
        self._slots = list(state["slots"])

    # -- running -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for ctx in range(self.contexts):
            slot = _ContextSlot(self, ctx)
            self._slots.append(slot)
            self.sim.schedule(0, slot._step, None)

    def run(self) -> List[Task]:
        self.start()
        self.sim.run()
        if self.auditor is not None:
            self._end_of_run_audit()
        return list(self._tasks)

    def _end_of_run_audit(self) -> None:
        now = self.sim.now
        where = f"sched.{self.scheduler.name}"
        self.auditor.count("task_conservation")
        unfinished = [t for t in self._tasks if not t.finished]
        if unfinished:
            self.auditor.violation(
                "task_conservation", where, now,
                f"{len(unfinished)} of {len(self._tasks)} tasks never "
                f"finished (first: {unfinished[0]!r})")
        if self._finished != self._expected:
            self.auditor.violation(
                "task_conservation", where, now,
                f"finished {self._finished} tasks, expected {self._expected}")
        if self.scheduler.pending:
            self.auditor.violation(
                "task_conservation", where, now,
                f"{self.scheduler.pending} tasks still queued at end-of-run")
        self.auditor.count("context_conservation")
        if self._grants:
            self.auditor.violation(
                "context_conservation", where, now,
                f"{len(self._grants)} granted contexts never ran their task")
        alive_free = self.scheduler.free_contexts
        if alive_free + self.drained != self.contexts:
            self.auditor.violation(
                "context_conservation", where, now,
                f"context leak: {alive_free} free + {self.drained} drained "
                f"!= {self.contexts} total")


# -- the run result -----------------------------------------------------------


@dataclass
class SchedRunResult(DictResult):
    """Outcome of one (policy, scenario) race (``kind="sched"``)."""

    policy: str
    scenario: str
    workload: str
    tasks_total: int
    tasks_finished: int
    contexts: int
    contexts_drained: int
    decision_overhead: int
    makespan: float              # sim time when the last task exited
    earliest_exit: float
    latest_exit: float
    deadline_success_rate: float
    mean_response: float
    #: exact nearest-rank p99 of this run's response times; ``nan`` (never
    #: a silent 0.0) when no task produced a response time
    p99_response: float
    #: up to :data:`RESPONSE_SAMPLE_CAP` evenly-spaced order statistics of
    #: the sorted response times — the pooling payload
    #: ``analysis.winners`` aggregates instead of averaging p99s
    response_samples: Tuple[float, ...] = ()

    _COMPUTED = ("miss_rate", "exit_spread")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        # lists round-trip through JSON unchanged; tuples would not
        out["response_samples"] = list(self.response_samples)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SchedRunResult":
        obj = super().from_dict(data)
        obj.response_samples = tuple(obj.response_samples or ())
        return obj

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.deadline_success_rate

    @property
    def exit_spread(self) -> float:
        """max − min exit time (Fig 21's visual width)."""
        return self.latest_exit - self.earliest_exit


# -- the harness --------------------------------------------------------------


@dataclass
class ScenarioRun:
    """A fully-wired (policy, scenario) race, ready to simulate.

    The session/checkpoint layer builds one of these, runs the simulator
    to an arbitrary horizon, snapshots or restores the pieces, and calls
    :func:`collect_sched_result` at the end; :func:`run_sched_scenario`
    is the one-shot convenience wrapper over the same parts.
    """

    sim: Simulator
    registry: StatsRegistry
    rng: RngTree
    scheduler: Any
    bed: "ScenarioTestbed"
    policy: str
    scenario: str
    workload: str


def prepare_sched_scenario(
    policy: str = "laxity",
    scenario: str = "uniform",
    seed: int = 0,
    workload: Optional[str] = "kmp",
    tasks: int = 128,
    contexts: int = 64,
    config=None,
    registry: Optional[StatsRegistry] = None,
    auditor=None,
) -> ScenarioRun:
    """Build the testbed and load the scenario script (no sim run yet)."""
    if tasks <= 0:
        raise SchedulerError("need at least one task")
    profile = None
    if workload:
        from ..workloads.base import get_profile

        profile = get_profile(workload)
    sched_scenario = get_scenario(scenario)
    reg = registry if registry is not None else StatsRegistry()
    sched = create_policy(policy, config=config, registry=reg)
    if auditor is not None:
        auditor.installed.append(f"sched:{policy}/{scenario}")
    rng_tree = RngTree(seed).child(f"sched.{scenario}")
    script = sched_scenario.build(rng_tree, profile, tasks, contexts)

    sim = Simulator()
    bed = ScenarioTestbed(sim, sched, contexts=contexts, auditor=auditor)
    bed.load(script)
    return ScenarioRun(sim=sim, registry=reg, rng=rng_tree, scheduler=sched,
                       bed=bed, policy=policy, scenario=scenario,
                       workload=workload or "")


def run_sched_scenario(
    policy: str = "laxity",
    scenario: str = "uniform",
    seed: int = 0,
    workload: Optional[str] = "kmp",
    tasks: int = 128,
    contexts: int = 64,
    config=None,
    registry: Optional[StatsRegistry] = None,
    auditor=None,
) -> SchedRunResult:
    """Race one registered policy against one scenario, audited.

    ``registry`` collects the policy's live counters alongside the
    result; ``auditor`` is a PR 4 :class:`~repro.sim.invariants.Auditor`
    (or None for an unaudited run).
    """
    run = prepare_sched_scenario(
        policy=policy, scenario=scenario, seed=seed, workload=workload,
        tasks=tasks, contexts=contexts, config=config, registry=registry,
        auditor=auditor)
    run.bed.run()
    return collect_sched_result(run)


def collect_sched_result(run: ScenarioRun) -> SchedRunResult:
    """Fold a finished :class:`ScenarioRun` into a result record."""
    bed = run.bed
    done = list(bed._tasks)
    sched = run.scheduler
    policy = run.policy
    scenario = run.scenario
    workload = run.workload
    contexts = bed.contexts

    exits = sorted(t.finished_at for t in done if t.finished_at is not None)
    responses = sorted(t.response_time for t in done
                       if t.response_time is not None)
    finished = len(exits)
    success = (sum(1 for t in done if not t.missed) / len(done)
               if done else 0.0)
    # ceil-based nearest rank via the shared quantile module; the old
    # int(0.99 * (n - 1)) truncated downward and reported ~p89 as "p99"
    # on small samples.  nan, never 0.0, when no task responded.
    p99 = (quantile(responses, 0.99, is_sorted=True)
           if responses else float("nan"))
    return SchedRunResult(
        policy=policy,
        scenario=scenario,
        workload=workload,
        tasks_total=len(done),
        tasks_finished=finished,
        contexts=contexts,
        contexts_drained=bed.drained,
        decision_overhead=sched.decision_overhead,
        makespan=exits[-1] if exits else 0.0,
        earliest_exit=exits[0] if exits else 0.0,
        latest_exit=exits[-1] if exits else 0.0,
        deadline_success_rate=success,
        mean_response=((sum(responses) / len(responses)) if responses
                       else float("nan")),
        p99_response=p99,
        response_samples=tuple(thin_sorted(responses, RESPONSE_SAMPLE_CAP))
        if responses else (),
    )
