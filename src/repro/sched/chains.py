"""RAM-based chain tables (paper §3.7, Fig 16).

The paper builds its hardware scheduler from *chain tables in RAM instead
of CAM* to save area/power: each table is a linked list kept sorted by the
scheduling key, so an insert walks the chain (O(n) RAM reads) and a pop is
O(1).  We model the walk length because it is the hardware cost the paper
traded against CAM.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import SchedulerError
from .task import Task

__all__ = ["ChainTable"]


class ChainTable:
    """A bounded, sorted linked list of tasks.

    ``key`` maps a task to its sort value (ascending = scheduled first).
    """

    def __init__(self, name: str, key: Callable[[Task], float],
                 capacity: int = 256) -> None:
        if capacity <= 0:
            raise SchedulerError("chain table needs positive capacity")
        self.name = name
        self.key = key
        self.capacity = capacity
        self._entries: List[Task] = []
        self.insert_steps = 0        # cumulative RAM-walk length (HW cost)

    def insert(self, task: Task) -> int:
        """Insert keeping sort order; returns the walk length used."""
        if len(self._entries) >= self.capacity:
            raise SchedulerError(f"{self.name}: chain table full "
                                 f"({self.capacity} entries)")
        k = self.key(task)
        steps = 0
        # linear walk, as the RAM linked list must
        for i, existing in enumerate(self._entries):
            steps += 1
            if k < self.key(existing):
                self._entries.insert(i, task)
                self.insert_steps += steps
                return steps
        self._entries.append(task)
        self.insert_steps += steps
        return steps

    def state_dict(self) -> dict:
        """Entries (in chain order) plus the cumulative walk cost."""
        return {"entries": list(self._entries),
                "insert_steps": self.insert_steps}

    def load_state(self, state: dict) -> None:
        self._entries = list(state["entries"])
        self.insert_steps = state["insert_steps"]

    def pop_head(self) -> Optional[Task]:
        """Remove and return the minimum-key task (None when empty)."""
        if not self._entries:
            return None
        return self._entries.pop(0)

    def peek(self) -> Optional[Task]:
        return self._entries[0] if self._entries else None

    def remove(self, task: Task) -> bool:
        try:
            self._entries.remove(task)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def is_sorted(self) -> bool:
        keys = [self.key(t) for t in self._entries]
        return keys == sorted(keys)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ChainTable({self.name}, {len(self._entries)}/{self.capacity})"
