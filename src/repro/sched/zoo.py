"""Related-work allocation policies (the "policy zoo").

Two competing thread-to-core allocation strategies from the literature,
implemented on the same :class:`~repro.sched.policy.SchedulerPolicy`
surface as the paper's laxity scheduler so the sweep harness can race
them head-to-head across adversarial scenarios:

* :class:`SmtBalanceScheduler` (``"smt-balance"``) — the
  throughput-balance member of the SMT allocation-policy family
  (arXiv 2507.00855): instead of a single global priority order it
  balances *served work* across execution contexts, pairing starved
  contexts with long tasks and well-fed contexts with short ones so no
  context's throughput collapses under a skewed task-size distribution.
* :class:`CriticalityScheduler` (``"criticality"``) — data-criticality
  aware placement (arXiv 2101.00055): tasks whose data path is most
  latency-critical are scheduled first.  The criticality signal is the
  expected memory-stall share of a task — in this repo derived from the
  hop-stamped per-layer latency data of the transaction tracing layer
  (:func:`criticality_from_breakdown` folds
  :class:`~repro.analysis.breakdown.BreakdownRow` aggregates into the
  per-task signal; scenario generators stamp it into ``task.payload``).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, List, Optional, Tuple

from .policy import SchedulerPolicy, register_policy
from .task import Task

__all__ = ["SmtBalanceScheduler", "CriticalityScheduler",
           "task_criticality", "criticality_from_breakdown"]


@register_policy("smt-balance")
class SmtBalanceScheduler(SchedulerPolicy):
    """Throughput-balance allocation (SMT policy family, arXiv 2507.00855).

    Keeps the pending queue sorted by work and serves it from *both
    ends*: a context whose served work is below the fleet mean receives
    the longest pending task (it has throughput headroom to burn), a
    context above the mean receives the shortest (keep it cycling).
    Without context knowledge (plain ``next_task``) the policy
    alternates ends, which equalises the per-slot service rate the same
    way.  All tie-breaks are ``task_id``-ordered, so scheduling is
    deterministic under fixed seeds.
    """

    summary = ("SMT-family throughput balance: serve the work-sorted "
               "queue from both ends to equalise per-context service")
    decision_overhead = 12        # hardware table + per-context accumulators

    def _setup(self) -> None:
        # (work, task_id, task), ascending — head is shortest
        self._queue: List[Tuple[float, int, Task]] = []
        self._ctx_work: dict = {}
        self._long_turn = True    # next_task alternation state

    def _enqueue(self, task: Task) -> None:
        insort(self._queue, (task.work_cycles, task.task_id, task))

    def _pop(self, longest: bool) -> Optional[Task]:
        if not self._queue:
            return None
        _work, _tid, task = self._queue.pop(-1 if longest else 0)
        return task

    def _select(self) -> Optional[Task]:
        task = self._pop(longest=self._long_turn)
        if task is not None:
            self._long_turn = not self._long_turn
        return task

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _queue_state(self) -> dict:
        return {"queue": list(self._queue),
                "ctx_work": dict(self._ctx_work),
                "long_turn": self._long_turn}

    def _load_queue_state(self, state: dict) -> None:
        self._queue = [tuple(entry) for entry in state["queue"]]
        self._ctx_work = dict(state["ctx_work"])
        self._long_turn = state["long_turn"]

    # -- allocation-aware dispatch ----------------------------------------

    def _on_release(self, context_id: int) -> None:
        self._ctx_work.setdefault(context_id, 0.0)

    def assign(self) -> Optional[Tuple[int, Task]]:
        """Pair the most-starved free context with the balancing task."""
        if not self._null_chain or not self._queue:
            return None
        # most-starved free context, FIFO-stable on ties
        context = min(self._null_chain,
                      key=lambda c: (self._ctx_work.get(c, 0.0),
                                     self._null_chain.index(c)))
        self._null_chain.remove(context)
        served = self._ctx_work.get(context, 0.0)
        mean = (sum(self._ctx_work.values()) / len(self._ctx_work)
                if self._ctx_work else 0.0)
        task = self._pop(longest=served <= mean)
        self.dispatched.inc()
        self._ctx_work[context] = served + task.work_cycles
        return context, task


def task_criticality(task: Task) -> float:
    """The data-criticality signal carried by a task.

    Scenario generators (and any chip-level feeder) stamp
    ``task.payload["criticality"]`` — expected memory-stall cycles per
    unit of work, derived from hop-trace latency aggregates.  Tasks
    without a stamp fall back to 0 (pure-compute: least critical).
    """
    payload = task.payload
    if isinstance(payload, dict):
        try:
            return float(payload.get("criticality", 0.0))
        except (TypeError, ValueError):
            return 0.0
    return 0.0


def criticality_from_breakdown(rows: Iterable) -> float:
    """Fold per-layer latency rows into one mean-stall-cycles signal.

    ``rows`` is any iterable of
    :class:`~repro.analysis.breakdown.BreakdownRow`-shaped objects (the
    PR 3 hop-trace aggregates).  Returns the hop-count-weighted mean hop
    latency — the cycles one memory transaction spends per layer on
    average, i.e. what one unit of data-criticality costs.  Feed it to a
    scenario (or multiply by a task's expected transaction count) to
    stamp ``payload["criticality"]``.
    """
    total = 0.0
    count = 0
    for row in rows:
        total += row.count * row.mean
        count += row.count
    return total / count if count else 0.0


@register_policy("criticality")
class CriticalityScheduler(SchedulerPolicy):
    """Data-criticality-aware placement (arXiv 2101.00055).

    Most-critical-first: tasks whose memory path is most
    latency-critical (largest expected stall share, per
    :func:`task_criticality`) dispatch ahead of compute-bound tasks,
    overlapping their long memory phases with everyone else's compute.
    Ties break on static slack (keep the laxity guarantee inside one
    criticality class), then ``task_id``.
    """

    summary = ("data-criticality placement: largest expected memory-stall "
               "share first, slack tie-break")
    decision_overhead = 20        # criticality table lookup + compare

    def _setup(self) -> None:
        # (-criticality, static_slack, task_id, task): ascending sort
        # puts the most-critical, least-slack task at the head
        self._queue: List[Tuple[float, float, int, Task]] = []

    def _enqueue(self, task: Task) -> None:
        insort(self._queue, (-task_criticality(task), task.static_slack,
                             task.task_id, task))

    def _select(self) -> Optional[Task]:
        if not self._queue:
            return None
        return self._queue.pop(0)[3]

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _queue_state(self) -> list:
        return list(self._queue)

    def _load_queue_state(self, state: list) -> None:
        self._queue = [tuple(entry) for entry in state]
