"""Task scheduling: laxity-aware hardware scheduler and baselines."""

from .chains import ChainTable
from .dispatch import (
    MainScheduler,
    SchedulerTestbed,
    TestbedResult,
    TimeSharedTestbed,
)
from .policies import (
    DeadlineScheduler,
    FifoScheduler,
    LaxityScheduler,
    make_scheduler,
)
from .task import Task, TaskPriority

__all__ = [
    "Task",
    "TaskPriority",
    "ChainTable",
    "LaxityScheduler",
    "DeadlineScheduler",
    "FifoScheduler",
    "make_scheduler",
    "MainScheduler",
    "SchedulerTestbed",
    "TimeSharedTestbed",
    "TestbedResult",
]
