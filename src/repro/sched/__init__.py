"""Task scheduling: the pluggable policy zoo and its adversarial scenarios.

The package is a plug-in subsystem: :mod:`repro.sched.policy` defines the
:class:`SchedulerPolicy` contract and the named registry, the paper's
schedulers live in :mod:`repro.sched.policies`, the related-work
competitors in :mod:`repro.sched.zoo`, and :mod:`repro.sched.scenarios`
supplies the deterministic adversarial scripts plus the audited harness
that races any (policy, scenario) pair.
"""

from .chains import ChainTable
from .dispatch import (
    MainScheduler,
    SchedulerTestbed,
    TestbedResult,
    TimeSharedTestbed,
)
from .policies import (
    DeadlineScheduler,
    FifoScheduler,
    LaxityScheduler,
    make_scheduler,
)
from .policy import (
    SchedulerPolicy,
    create_policy,
    get_policy,
    list_policies,
    policy_summaries,
    register_policy,
)
from .scenarios import (
    SchedRunResult,
    ScenarioTestbed,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_sched_scenario,
    scenario_summaries,
)
from .task import Task, TaskPriority
from .zoo import (
    CriticalityScheduler,
    SmtBalanceScheduler,
    criticality_from_breakdown,
    task_criticality,
)

__all__ = [
    "Task",
    "TaskPriority",
    "ChainTable",
    # the policy protocol + registry
    "SchedulerPolicy",
    "register_policy",
    "get_policy",
    "create_policy",
    "list_policies",
    "policy_summaries",
    # registered policies
    "LaxityScheduler",
    "DeadlineScheduler",
    "FifoScheduler",
    "SmtBalanceScheduler",
    "CriticalityScheduler",
    "task_criticality",
    "criticality_from_breakdown",
    "make_scheduler",
    # testbeds and scenarios
    "MainScheduler",
    "SchedulerTestbed",
    "TimeSharedTestbed",
    "TestbedResult",
    "ScenarioTestbed",
    "SchedRunResult",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_summaries",
    "run_sched_scenario",
]
