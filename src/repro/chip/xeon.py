"""Xeon E7-8890V4 baseline system (paper Table 2, Figs 1, 22, 23).

24 OoO cores x 2 SMT contexts, per-core L1/L2 and one shared 60 MB LLC,
an OS layer that time-slices software threads over the 48 hardware
contexts (context-switch cost) and serialises ``pthread_create`` on the
master — the two effects that make Fig 23's Xeon curve peak around 32–64
threads and fall beyond.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import XeonConfig, xeon_default
from ..core.ooo import OooCoreModel, SoftwareThread
from ..errors import ConfigError
from ..mem.hierarchy import CacheHierarchy
from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.rng import RngTree
from ..sim.stats import StatsRegistry
from ..workloads.base import WorkloadProfile
from .results import DictResult

__all__ = ["XeonSystem", "XeonRunResult"]


@dataclass
class XeonRunResult(DictResult):
    """Measured outcome of one workload run on the baseline."""

    cycles: float
    instructions: int
    threads: int
    frequency_ghz: float
    idle_ratio: float
    starvation_ratio: float
    busy_fraction: float
    miss_ratios: Dict[str, float]
    effective_latency: Dict[str, float]

    _COMPUTED = ("throughput_ips", "utilization")

    @property
    def throughput_ips(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles * self.frequency_ghz * 1e9

    @property
    def utilization(self) -> float:
        """Activity factor for the power model."""
        return min(1.0, self.busy_fraction)


class XeonSystem(Component):
    """The baseline server processor."""

    def __init__(self, config: Optional[XeonConfig] = None, seed: int = 0,
                 quantum_instrs: int = 20_000, name: str = "xeon") -> None:
        self.config = config if config is not None else xeon_default()
        self.config.validate()
        super().__init__(name, sim=Simulator())
        self.rng = RngTree(seed)
        self.llc = CacheHierarchy.make_shared_llc(self.config, self.stats)
        self.hierarchies: List[CacheHierarchy] = []
        self.cores: List[OooCoreModel] = []
        for cid in range(self.config.cores):
            hierarchy = CacheHierarchy(cid, self.config, shared_llc=self.llc,
                                       parent=self)
            self.hierarchies.append(hierarchy)
            self.cores.append(OooCoreModel(
                self.sim, cid, hierarchy, self.config,
                quantum_instrs=quantum_instrs, parent=self,
            ))
        self._threads: List[SoftwareThread] = []
        self._effective_ghz = self.config.frequency_ghz
        self.elaborate()

    # -- running ------------------------------------------------------------------

    def load_profile(
        self,
        profile: WorkloadProfile,
        n_threads: int,
        instrs_per_thread: int,
        stagger_creation: bool = True,
    ) -> None:
        """Create and schedule ``n_threads`` software threads (no sim yet)."""
        if n_threads <= 0:
            raise ConfigError("need at least one thread")
        if self._threads:
            raise ConfigError("system already loaded")
        threads = []
        for j in range(n_threads):
            rng = self.rng.stream(f"xeon.t{j}")
            threads.append(SoftwareThread(
                thread_id=j,
                instr_budget=instrs_per_thread,
                mem_ratio=profile.mem_ratio,
                branch_ratio=profile.branch_ratio,
                branch_miss_rate=profile.branch_miss_rate,
                ilp=profile.ilp,
                mlp=profile.mlp,
                data_sampler=profile.xeon_data_sampler(j, rng),
                code_sampler=profile.xeon_code_sampler(rng, thread_id=j),
            ))
        self._threads = threads

        # Turbo: with few active cores the Xeon clocks toward 3.4 GHz;
        # fully loaded it runs at the 2.2 GHz base (Table 2's range).
        cfg = self.config
        load = min(1.0, n_threads / cfg.cores)
        self._effective_ghz = (cfg.turbo_ghz
                               - (cfg.turbo_ghz - cfg.frequency_ghz) * load)

        create_cost = cfg.thread_create_cycles if stagger_creation else 0
        last_enqueue = 0.0
        for j, thread in enumerate(threads):
            core = self.cores[j % len(self.cores)]
            when = j * create_cost
            last_enqueue = max(last_enqueue, when)
            self.sim.schedule_at(when, core.enqueue, thread)
        for core in self.cores:
            core.start()
            self.sim.schedule_at(last_enqueue, core.close)

    def run_to(self, cycles: float) -> None:
        """Simulate to an absolute cycle horizon (a clean snapshot point)."""
        if not self._threads:
            raise ConfigError("load a profile first")
        self.sim.run(until=cycles)

    def run_profile(
        self,
        profile: WorkloadProfile,
        n_threads: int,
        instrs_per_thread: int,
        stagger_creation: bool = True,
    ) -> XeonRunResult:
        """Run ``n_threads`` software threads of a workload to completion."""
        self.load_profile(profile, n_threads, instrs_per_thread,
                          stagger_creation)
        self.sim.run()
        return self.collect_result()

    def collect_result(self) -> XeonRunResult:
        """Gather the run metrics at the current simulation time."""
        threads = self._threads
        cycles = max((t.finish_time or 0.0) for t in threads)
        instructions = sum(t.executed for t in threads)
        return XeonRunResult(
            cycles=cycles,
            instructions=instructions,
            threads=len(threads),
            frequency_ghz=self._effective_ghz,
            idle_ratio=self._aggregate_idle(),
            starvation_ratio=self._aggregate_starvation(),
            busy_fraction=self._busy_fraction(cycles),
            miss_ratios=self.miss_ratios(),
            effective_latency=self.effective_latencies(),
        )

    # -- snapshot protocol ----------------------------------------------------------

    def extra_state(self) -> dict:
        return {
            "threads": self._threads,
            "effective_ghz": self._effective_ghz,
            "llc": self.llc.state_dict(),
        }

    def load_extra_state(self, state: dict) -> None:
        self._threads = list(state["threads"])
        self._effective_ghz = state["effective_ghz"]
        self.llc.load_state(state["llc"])

    # -- metrics ----------------------------------------------------------------------

    def _buckets(self) -> Dict[str, float]:
        totals = {"busy": 0.0, "mem_stall": 0.0, "frontend_stall": 0.0,
                  "switch": 0.0}
        for core in self.cores:
            for key, value in core.cycle_breakdown().items():
                totals[key] += value
        return totals

    def _aggregate_idle(self) -> float:
        b = self._buckets()
        total = sum(b.values())
        return 1.0 - b["busy"] / total if total else 0.0

    def _aggregate_starvation(self) -> float:
        """Instruction starvation (Fig 1b): frontend stalls over issue
        opportunity (busy + frontend), excluding backend data stalls."""
        b = self._buckets()
        denom = b["busy"] + b["frontend_stall"]
        return b["frontend_stall"] / denom if denom else 0.0

    def _busy_fraction(self, cycles: float) -> float:
        if not cycles:
            return 0.0
        capacity = len(self.cores) * cycles
        return min(1.0, self._buckets()["busy"] / capacity)

    def miss_ratios(self) -> Dict[str, float]:
        """Aggregated per-level miss ratios (Fig 1c)."""
        hits = {"L1": 0, "L2": 0}
        misses = {"L1": 0, "L2": 0}
        for h in self.hierarchies:
            hits["L1"] += h.l1d.hits.value + h.l1i.hits.value
            misses["L1"] += h.l1d.misses.value + h.l1i.misses.value
            hits["L2"] += h.l2.hits.value
            misses["L2"] += h.l2.misses.value
        out = {}
        for level in ("L1", "L2"):
            total = hits[level] + misses[level]
            out[level] = misses[level] / total if total else 0.0
        llc_total = self.llc.hits.value + self.llc.misses.value
        out["LLC"] = self.llc.misses.value / llc_total if llc_total else 0.0
        return out

    def effective_latencies(self) -> Dict[str, float]:
        """Mean latency of an access *arriving* at each level (Fig 1d):
        hit latency plus miss-ratio-weighted next-level latency."""
        cfg = self.config
        ratios = self.miss_ratios()
        llc = cfg.llc_hit_latency + ratios["LLC"] * cfg.dram_latency
        l2 = cfg.l2_hit_latency + ratios["L2"] * llc
        l1 = cfg.l1_hit_latency + ratios["L1"] * l2
        return {"L1": l1, "L2": l2, "LLC": llc}
