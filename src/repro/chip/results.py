"""The ``to_dict`` / ``from_dict`` protocol shared by every run result.

The telemetry layer, the result cache and ``repro.analysis`` consume run
results through this protocol instead of reaching into per-class
attributes: ``to_dict()`` yields a plain JSON-ready dict (dataclass
fields plus the computed properties named in ``_COMPUTED``, tagged with
a ``"type"`` discriminator), and ``from_dict`` / :func:`result_from_dict`
rebuild the object, ignoring the computed extras.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple, Type

__all__ = ["DictResult", "result_from_dict"]

_RESULT_TYPES: Dict[str, Type["DictResult"]] = {}


class DictResult:
    """Mixin for dataclass results: symmetric dict serialisation."""

    #: property names included in :meth:`to_dict` for human/analysis use
    #: (dropped again by :meth:`from_dict` — they are derived, not state).
    _COMPUTED: Tuple[str, ...] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        _RESULT_TYPES[cls.__name__] = cls

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": type(self).__name__}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if dataclasses.is_dataclass(value):
                value = dataclasses.asdict(value)
            out[f.name] = value
        for name in self._COMPUTED:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DictResult":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


def result_from_dict(data: Dict[str, Any]) -> DictResult:
    """Rebuild any registered result from its ``to_dict`` form."""
    # ensure every result class has registered itself
    from . import run, smarco, xeon  # noqa: F401
    from ..sched import scenarios  # noqa: F401
    from ..traffic import cluster  # noqa: F401

    type_name = data.get("type")
    if type_name not in _RESULT_TYPES:
        raise ValueError(f"unknown result type {type_name!r}")
    return _RESULT_TYPES[type_name].from_dict(data)
