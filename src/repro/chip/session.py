"""Run sessions: build a system, pause it at a cycle, freeze it, resume it.

A :class:`RunSession` is the stateful counterpart of the one-shot
:func:`repro.chip.run.execute`: it builds the system a
:class:`~repro.exp.request.RunRequest` describes, can simulate to an
arbitrary cycle horizon (``run_to``), capture a versioned
:class:`~repro.sim.checkpoint.Checkpoint` of everything live (kernel
queues, component state, RNG streams, stats, id counters), restore one
into a freshly rebuilt system, and finish the run into the same
:class:`~repro.chip.run.RunOutcome` the one-shot path produces.

The contract is bit-identical resume: ``build -> run_to(T) -> save;
restore -> finish`` returns exactly the outcome of ``build -> finish``.
The warm-started sweep runner and the ``checkpoint`` CLI subcommands are
both thin layers over this class.

Checkpointable kinds are ``smarco``, ``xeon`` and ``sched`` — the three
run kinds with a single long-lived simulator.  (``tcg`` is a microbench
that finishes in milliseconds; ``compare`` is two sessions back to back.)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import CheckpointError, ConfigError
from ..exp.request import RunRequest, request_from_snapshot
from ..mem.request import request_id_state, set_request_id_state
from ..noc.packet import packet_id_state, set_packet_id_state
from ..sched.task import set_task_id_state, task_id_state
from ..sim.checkpoint import (
    Checkpoint,
    SnapshotScope,
    FORMAT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from ..workloads.base import get_profile
from .run import RunOutcome
from .smarco import SmarCoChip
from .xeon import XeonSystem

__all__ = ["RunSession", "SESSION_KINDS", "session_code_digest"]

#: run kinds a session can checkpoint/restore
SESSION_KINDS = ("smarco", "xeon", "sched")


def session_code_digest() -> str:
    """The code digest stamped into (and checked against) checkpoints."""
    from ..exp.cache import code_version

    return code_version()


class RunSession:
    """One buildable, pausable, freezable simulation run."""

    def __init__(self, request: RunRequest) -> None:
        if request.kind not in SESSION_KINDS:
            raise ConfigError(
                f"run kind {request.kind!r} does not support sessions; "
                f"supported: {', '.join(SESSION_KINDS)}")
        if request.shards:
            raise ConfigError(
                "sessions (checkpoint/restore) require the serial "
                "engine; drop shards from the request")
        request.validate()
        self.request = request
        self.kind = request.kind
        self._result = None
        if self.kind == "smarco":
            profile = get_profile(request.workload)
            chip = SmarCoChip(request.smarco_config, seed=request.seed,
                              core_policy=request.core_policy,
                              realtime_fraction=request.realtime_fraction)
            chip.load_profile(profile, request.threads_per_core,
                              request.instrs_per_thread,
                              total_threads=request.total_threads,
                              shared_code=request.shared_code)
            self.system = chip
            self.sim = chip.sim
            self.scope = SnapshotScope(
                chip.sim, roots=(chip,), rng=chip.rng,
                registry=chip.registry)
        elif self.kind == "xeon":
            profile = get_profile(request.workload)
            system = XeonSystem(request.xeon_config, seed=request.seed)
            system.load_profile(profile, request.xeon_threads,
                                request.xeon_instrs_per_thread,
                                stagger_creation=request.stagger_creation)
            self.system = system
            self.sim = system.sim
            self.scope = SnapshotScope(
                system.sim, roots=(system,), rng=system.rng,
                registry=system.registry)
        else:  # sched
            from ..sched.scenarios import prepare_sched_scenario

            sched_config = (request.smarco_config.scheduler
                            if request.smarco_config is not None else None)
            run = prepare_sched_scenario(
                policy=request.sched_policy,
                scenario=request.sched_scenario,
                seed=request.seed,
                workload=request.workload,
                tasks=request.sched_tasks,
                contexts=request.sched_contexts,
                config=sched_config,
            )
            self.system = run
            self.sim = run.sim
            self.scope = SnapshotScope(
                run.sim, roots=(), rng=run.rng, registry=run.registry,
                extra_anchors={"testbed": run.bed, "policy": run.scheduler})

    # -- driving -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def finished(self) -> bool:
        return self._result is not None

    def run_to(self, cycles: float) -> None:
        """Simulate to an absolute cycle horizon (a clean snapshot point)."""
        if self.kind == "smarco" or self.kind == "xeon":
            self.system.run_to(cycles)
        else:
            self.system.bed.start()
            self.sim.run(until=cycles)

    def finish(self) -> RunOutcome:
        """Run to the horizon (``request.run_cycles`` or completion) and
        collect the run outcome (idempotent)."""
        if self._result is not None:
            return self._result
        horizon = self.request.run_cycles
        if self.kind == "smarco":
            result = self.system.run(max_cycles=horizon)
            outcome = RunOutcome(request=self.request, result=result,
                                 stats=self.system.registry.dump(),
                                 components=self.system.tree_dict())
        elif self.kind == "xeon":
            self.sim.run(until=horizon)
            result = self.system.collect_result()
            outcome = RunOutcome(request=self.request, result=result,
                                 stats=self.system.registry.dump(),
                                 components=self.system.tree_dict())
        else:
            from ..sched.scenarios import collect_sched_result

            if horizon is not None:
                self.system.bed.start()
                self.sim.run(until=horizon)
            else:
                self.system.bed.run()
            result = collect_sched_result(self.system)
            outcome = RunOutcome(request=self.request, result=result,
                                 stats=self.system.registry.dump())
        self._result = outcome
        return outcome

    # -- checkpointing -------------------------------------------------------

    def _extra_state(self) -> Dict[str, Any]:
        extra: Dict[str, Any] = {
            "ids": {
                "request": request_id_state(),
                "packet": packet_id_state(),
                "task": task_id_state(),
            },
        }
        if self.kind == "sched":
            extra["testbed"] = self.system.bed.state_dict()
            extra["policy"] = self.system.scheduler.state_dict()
        return extra

    def _apply_extra(self, extra: Dict[str, Any]) -> None:
        ids = extra["ids"]
        set_request_id_state(ids["request"])
        set_packet_id_state(ids["packet"])
        set_task_id_state(ids["task"])
        if self.kind == "sched":
            self.system.bed.load_state(extra["testbed"])
            self.system.scheduler.load_state(extra["policy"])

    def checkpoint(self) -> Checkpoint:
        """Freeze the session at the current cycle."""
        if self._result is not None:
            raise CheckpointError("session already finished; nothing to save")
        data, objects = self.scope.capture(self._extra_state())
        return Checkpoint(
            format=FORMAT_VERSION,
            code_digest=session_code_digest(),
            schema=self.scope.schema_hash(),
            kind=self.kind,
            request=self.request.snapshot(),
            cycle=self.sim.now,
            data=data,
            objects=objects,
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Checkpoint and write to ``path`` (gzip when it ends in .gz)."""
        return save_checkpoint(self.checkpoint(), Path(path))

    @classmethod
    def restore(cls, source: Union[Checkpoint, str, Path],
                request: Optional[RunRequest] = None,
                allow_code_skew: bool = False) -> "RunSession":
        """Rebuild a session from a checkpoint (strict by default).

        The system is rebuilt from the checkpoint's own request snapshot
        (or an explicitly supplied equivalent ``request``), verified
        against the header, and then overwritten wholesale with the
        frozen state.
        """
        ckpt = (source if isinstance(source, Checkpoint)
                else load_checkpoint(Path(source)))
        req = (request if request is not None
               else request_from_snapshot(ckpt.request))
        session = cls(req)
        ckpt.verify(session.scope, session_code_digest(),
                    allow_code_skew=allow_code_skew)
        extra = session.scope.restore(ckpt.data, ckpt.objects)
        session._apply_extra(extra)
        return session
