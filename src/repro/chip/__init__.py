"""Full-chip assemblies: SmarCo, the Xeon baseline, and the run harness."""

from .results import DictResult, result_from_dict
from .run import (
    ComparisonResult,
    RunOutcome,
    TcgRunResult,
    compare,
    execute,
    run_smarco,
    run_xeon,
)
from .session import SESSION_KINDS, RunSession
from .smarco import SmarCoChip, SmarcoRunResult
from .xeon import XeonRunResult, XeonSystem

__all__ = [
    "RunSession",
    "SESSION_KINDS",
    "SmarCoChip",
    "SmarcoRunResult",
    "XeonSystem",
    "XeonRunResult",
    "TcgRunResult",
    "ComparisonResult",
    "RunOutcome",
    "DictResult",
    "result_from_dict",
    "execute",
    "run_smarco",
    "run_xeon",
    "compare",
]
