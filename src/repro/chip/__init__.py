"""Full-chip assemblies: SmarCo, the Xeon baseline, and the run harness."""

from .run import ComparisonResult, compare, run_smarco, run_xeon
from .smarco import SmarCoChip, SmarcoRunResult
from .xeon import XeonRunResult, XeonSystem

__all__ = [
    "SmarCoChip",
    "SmarcoRunResult",
    "XeonSystem",
    "XeonRunResult",
    "ComparisonResult",
    "run_smarco",
    "run_xeon",
    "compare",
]
