"""High-level experiment harness: run a workload on both chips and
compare (the machinery behind Figs 22, 23, 26).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import SmarCoConfig, XeonConfig, smarco_scaled, xeon_default
from ..power.energy import PowerModel, XeonPowerModel
from ..workloads.base import WorkloadProfile, get_profile
from .smarco import SmarCoChip, SmarcoRunResult
from .xeon import XeonRunResult, XeonSystem

__all__ = ["ComparisonResult", "run_smarco", "run_xeon", "compare"]


@dataclass
class ComparisonResult:
    """SmarCo-vs-Xeon outcome for one workload (one Fig 22 bar pair)."""

    workload: str
    smarco: SmarcoRunResult
    xeon: XeonRunResult
    smarco_watts: float
    xeon_watts: float

    @property
    def speedup(self) -> float:
        """SmarCo throughput over Xeon throughput (Fig 22 left bars)."""
        if not self.xeon.throughput_ips:
            return 0.0
        return self.smarco.throughput_ips / self.xeon.throughput_ips

    @property
    def energy_efficiency_gain(self) -> float:
        """(perf/W SmarCo) / (perf/W Xeon) (Fig 22 right bars)."""
        smarco_eff = self.smarco.throughput_ips / self.smarco_watts
        xeon_eff = self.xeon.throughput_ips / self.xeon_watts
        return smarco_eff / xeon_eff if xeon_eff else 0.0


def run_smarco(
    workload: str,
    config: Optional[SmarCoConfig] = None,
    threads_per_core: int = 8,
    instrs_per_thread: int = 600,
    seed: int = 0,
    core_policy: str = "inpair",
    realtime_fraction: float = 0.0,
) -> SmarcoRunResult:
    """Build a chip, load a named workload profile, run to completion."""
    profile = get_profile(workload)
    chip = SmarCoChip(config, seed=seed, core_policy=core_policy,
                      realtime_fraction=realtime_fraction)
    chip.load_profile(profile, threads_per_core, instrs_per_thread)
    return chip.run()


def run_xeon(
    workload: str,
    config: Optional[XeonConfig] = None,
    n_threads: int = 48,
    instrs_per_thread: int = 40_000,
    seed: int = 0,
    stagger_creation: bool = True,
) -> XeonRunResult:
    """Run a named workload on the baseline system."""
    profile = get_profile(workload)
    system = XeonSystem(config, seed=seed)
    return system.run_profile(profile, n_threads, instrs_per_thread,
                              stagger_creation=stagger_creation)


def compare(
    workload: str,
    smarco_config: Optional[SmarCoConfig] = None,
    xeon_config: Optional[XeonConfig] = None,
    smarco_threads_per_core: int = 8,
    smarco_instrs_per_thread: int = 600,
    xeon_threads: int = 48,
    xeon_instrs_per_thread: int = 40_000,
    seed: int = 0,
    technology_nm: Optional[int] = None,
    power_config: Optional[SmarCoConfig] = None,
) -> ComparisonResult:
    """One Fig 22 (or Fig 26, via ``technology_nm=40``) data point.

    Energy accounting is conservative: SmarCo is billed the *full-chip*
    power (paper Table 1's 240 W class) even when the simulated geometry
    is scaled down, with a 0.5 activity floor — the paper's workloads
    keep the chip busy.
    """
    smarco_result = run_smarco(workload, smarco_config,
                               smarco_threads_per_core,
                               smarco_instrs_per_thread, seed)
    xeon_result = run_xeon(workload, xeon_config, xeon_threads,
                           xeon_instrs_per_thread, seed)
    from ..config import smarco_default

    smarco_power = PowerModel(
        power_config if power_config is not None else smarco_default())
    xeon_power = XeonPowerModel(xeon_config)
    return ComparisonResult(
        workload=workload,
        smarco=smarco_result,
        xeon=xeon_result,
        smarco_watts=smarco_power.total_watts(
            utilization=max(0.5, smarco_result.utilization),
            technology_nm=technology_nm,
        ),
        xeon_watts=xeon_power.total_watts(
            utilization=max(0.1, xeon_result.utilization)),
    )
