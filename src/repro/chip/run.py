"""The unified run API.

Every simulation the repo can perform — one TCG core, a SmarCo chip, the
Xeon baseline, or a SmarCo-vs-Xeon comparison — is described by a frozen
:class:`repro.exp.RunRequest` and executed by :func:`execute`, which
returns a :class:`RunOutcome`: the result object *plus* the full
``StatsRegistry`` dump of the simulation.  The sweep runner
(``repro.exp.runner``), the CLI and the benches all go through this one
entry point, so there is a single source of truth for how a request maps
to a simulator build.

The historical per-kind helpers (:func:`run_smarco`, :func:`run_xeon`,
:func:`compare`) remain as thin shims: they accept a ``RunRequest`` as
their first argument, and their old kwargs signatures still work but
emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Union

from ..config import AuditConfig, SmarCoConfig, XeonConfig, smarco_default
from ..core.ports import FixedLatencyPort
from ..core.tcg import TCGCore
from ..errors import ConfigError
from ..exp.request import RunRequest
from ..power.energy import PowerModel, XeonPowerModel
from ..power.report import build_energy_report
from ..sim.engine import Simulator
from ..sim.rng import RngTree
from ..sim.stats import StatsRegistry
from ..workloads.base import get_profile
from .results import DictResult, result_from_dict
from .smarco import SmarCoChip, SmarcoRunResult
from .xeon import XeonRunResult, XeonSystem

__all__ = [
    "TcgRunResult",
    "ComparisonResult",
    "RunOutcome",
    "execute",
    "run_smarco",
    "run_xeon",
    "compare",
]


@dataclass
class TcgRunResult(DictResult):
    """Outcome of a single-core microbench (``kind="tcg"``, Fig 17)."""

    workload: str
    policy: str
    threads: int
    cycles: float
    instructions: int

    _COMPUTED = ("ipc",)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class ComparisonResult(DictResult):
    """SmarCo-vs-Xeon outcome for one workload (one Fig 22 bar pair)."""

    workload: str
    smarco: SmarcoRunResult
    xeon: XeonRunResult
    smarco_watts: float
    xeon_watts: float

    _COMPUTED = ("speedup", "energy_efficiency_gain")

    @property
    def speedup(self) -> float:
        """SmarCo throughput over Xeon throughput (Fig 22 left bars).

        ``nan`` (never a silent ``0.0``) when the baseline did no work.
        """
        if not self.xeon.throughput_ips:
            return float("nan")
        return self.smarco.throughput_ips / self.xeon.throughput_ips

    @property
    def energy_efficiency_gain(self) -> float:
        """(perf/W SmarCo) / (perf/W Xeon) (Fig 22 right bars).

        ``nan`` when either side's perf/W is undefined (zero baseline
        throughput or zero billed watts).
        """
        if not (self.xeon.throughput_ips and self.xeon_watts
                and self.smarco_watts):
            return float("nan")
        smarco_eff = self.smarco.throughput_ips / self.smarco_watts
        xeon_eff = self.xeon.throughput_ips / self.xeon_watts
        return smarco_eff / xeon_eff

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "type": type(self).__name__,
            "workload": self.workload,
            "smarco": self.smarco.to_dict(),
            "xeon": self.xeon.to_dict(),
            "smarco_watts": self.smarco_watts,
            "xeon_watts": self.xeon_watts,
        }
        for name in self._COMPUTED:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ComparisonResult":
        return cls(
            workload=data["workload"],
            smarco=SmarcoRunResult.from_dict(data["smarco"]),
            xeon=XeonRunResult.from_dict(data["xeon"]),
            smarco_watts=data["smarco_watts"],
            xeon_watts=data["xeon_watts"],
        )


@dataclass
class RunOutcome:
    """What :func:`execute` returns: the result plus the stats dump.

    ``stats`` is the flat registry dump; :meth:`stats_tree` nests it by
    component path.  ``components`` is the simulated system's component
    tree (:meth:`repro.sim.Component.tree_dict`) so per-run telemetry
    records exactly what was wired to what.
    """

    request: RunRequest
    result: DictResult
    stats: Dict[str, float]
    components: Dict[str, Any] = field(default_factory=dict)
    #: invariant audit report (:meth:`repro.sim.Auditor.summary`), or None
    #: when the run was not audited
    audit: Optional[Dict[str, Any]] = None
    #: activity-proportional energy report
    #: (:meth:`repro.power.report.EnergyReport.to_dict`), or None for run
    #: kinds without chip activity counters.  Observation-only: excluded
    #: from the pinned golden digests, which hash result + stats alone.
    energy: Optional[Dict[str, Any]] = None

    def stats_tree(self) -> Dict[str, Any]:
        """The flat stats dump nested by dotted component path."""
        from ..sim.stats import nest_flat_stats

        return nest_flat_stats(self.stats)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request": self.request.snapshot(),
            "result": self.result.to_dict(),
            "stats": self.stats,
            "components": self.components,
            "audit": self.audit,
            "energy": self.energy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunOutcome":
        from ..exp.request import request_from_snapshot

        return cls(
            request=request_from_snapshot(data["request"]),
            result=result_from_dict(data["result"]),
            stats=dict(data["stats"]),
            # tolerate cache files written before components existed
            components=dict(data.get("components", {})),
            audit=data.get("audit"),
            # tolerate cache files written before energy accounting existed
            energy=data.get("energy"),
        )


# -- the dispatcher ----------------------------------------------------------------


def execute(request: RunRequest,
            audit: Optional[AuditConfig] = None) -> RunOutcome:
    """Build the system a request describes, run it, and collect stats.

    ``audit=None`` defers to the ``REPRO_AUDIT`` environment variable
    (unset/off means no auditing); pass an explicit
    :class:`~repro.config.AuditConfig` to override.  An audited run adds
    no simulation events — results match the unaudited run exactly — and
    attaches the auditor's report as ``RunOutcome.audit``.
    """
    request.validate()
    executors = {
        "tcg": _execute_tcg,
        "smarco": _execute_smarco,
        "xeon": _execute_xeon,
        "compare": _execute_compare,
        "sched": _execute_sched,
        "traffic": _execute_traffic,
    }
    try:
        executor = executors[request.kind]
    except KeyError:  # pragma: no cover
        raise ConfigError(f"unknown run kind {request.kind!r}") from None
    outcome = executor(request, audit)
    # observation-only: billed from the finished run's stats, never fed
    # back, so results and golden digests are untouched
    energy_report = build_energy_report(outcome)
    if energy_report is not None:
        outcome.energy = energy_report.to_dict()
    return outcome


def _make_auditor(audit: Optional[AuditConfig]):
    """Resolve the effective audit config; None when auditing is off."""
    cfg = audit if audit is not None else AuditConfig.from_env()
    if not cfg.enabled:
        return None
    from ..sim.invariants import Auditor

    return Auditor(cfg)


def _execute_tcg(request: RunRequest,
                 audit: Optional[AuditConfig] = None) -> RunOutcome:
    """One TCG core behind a fixed-latency memory port (the Fig 17 rig)."""
    profile = get_profile(request.workload)
    sim = Simulator()
    registry = StatsRegistry()
    port = FixedLatencyPort(sim, request.mem_latency)
    core = TCGCore(sim, 0, port, policy=request.core_policy,
                   registry=registry)
    auditor = _make_auditor(audit)
    if auditor is not None:
        auditor.install(core)
    rng_tree = RngTree(request.seed)
    n = request.threads_per_core
    for t in range(n):
        core.add_thread(profile.stream(
            request.instrs_per_thread,
            rng_tree.stream(f"{request.workload}.{t}"),
            thread_id=t, gang_size=n, gang_rank=t,
        ))
    core.start()
    sim.run()
    if auditor is not None:
        auditor.end_of_run(sim.now)
    result = TcgRunResult(
        workload=request.workload,
        policy=request.core_policy,
        threads=n,
        # elapsed, not sim.now: core.ipc is defined over start->finish
        cycles=core.elapsed,
        instructions=core.instructions,
    )
    return RunOutcome(request=request, result=result, stats=registry.dump(),
                      components=core.tree_dict(),
                      audit=auditor.summary() if auditor is not None else None)


def _resolve_request_shards(request: RunRequest, auditor) -> int:
    """Effective shard count: the request's, unless a feature that
    requires the serial engine is active (warn and fall back)."""
    if not request.shards:
        return 0
    cfg = request.smarco_config if request.smarco_config is not None \
        else smarco_default()
    blockers = []
    if auditor is not None:
        blockers.append("runtime audits")
    if request.realtime_fraction:
        blockers.append("realtime scheduling")
    if cfg.trace_sample_rate:
        blockers.append("packet tracing")
    if blockers:
        warnings.warn(
            f"ignoring shards={request.shards}: {', '.join(blockers)} "
            "require(s) the serial engine; running serially",
            RuntimeWarning, stacklevel=3)
        return 0
    return request.shards


def _execute_smarco(request: RunRequest,
                    audit: Optional[AuditConfig] = None) -> RunOutcome:
    profile = get_profile(request.workload)
    auditor = _make_auditor(audit)
    shards = _resolve_request_shards(request, auditor)
    chip = SmarCoChip(request.smarco_config, seed=request.seed,
                      core_policy=request.core_policy,
                      realtime_fraction=request.realtime_fraction,
                      shards=shards)
    if auditor is not None:
        auditor.install(chip)
    chip.load_profile(profile, request.threads_per_core,
                      request.instrs_per_thread,
                      total_threads=request.total_threads,
                      shared_code=request.shared_code)
    result = chip.run(max_cycles=request.run_cycles,
                      quantum=request.shard_quantum if shards else None)
    if auditor is not None:
        auditor.end_of_run(chip.sim.now)
    return RunOutcome(request=request, result=result,
                      stats=chip.registry.dump(),
                      components=chip.tree_dict(),
                      audit=auditor.summary() if auditor is not None else None)


def _execute_xeon(request: RunRequest,
                  audit: Optional[AuditConfig] = None) -> RunOutcome:
    profile = get_profile(request.workload)
    system = XeonSystem(request.xeon_config, seed=request.seed)
    auditor = _make_auditor(audit)
    if auditor is not None:
        # the baseline declares no checkers yet; install() is a no-op walk
        # and the summary records zero checks
        auditor.install(system)
    system.load_profile(profile, request.xeon_threads,
                        request.xeon_instrs_per_thread,
                        stagger_creation=request.stagger_creation)
    system.sim.run(until=request.run_cycles)
    result = system.collect_result()
    if auditor is not None:
        auditor.end_of_run(system.sim.now)
    return RunOutcome(request=request, result=result,
                      stats=system.registry.dump(),
                      components=system.tree_dict(),
                      audit=auditor.summary() if auditor is not None else None)


def _execute_compare(request: RunRequest,
                     audit: Optional[AuditConfig] = None) -> RunOutcome:
    """One Fig 22 (or Fig 26, via ``technology_nm=40``) data point.

    Energy accounting is conservative: SmarCo is billed the *full-chip*
    power (paper Table 1's 240 W class) even when the simulated geometry
    is scaled down, with a 0.5 activity floor — the paper's workloads
    keep the chip busy.
    """
    smarco_outcome = _execute_smarco(replace(request, kind="smarco"), audit)
    xeon_outcome = _execute_xeon(replace(request, kind="xeon"), audit)
    smarco_result = smarco_outcome.result
    xeon_result = xeon_outcome.result

    smarco_power = PowerModel(
        request.power_config if request.power_config is not None
        else smarco_default())
    xeon_power = XeonPowerModel(request.xeon_config)
    result = ComparisonResult(
        workload=request.workload,
        smarco=smarco_result,
        xeon=xeon_result,
        smarco_watts=smarco_power.total_watts(
            utilization=max(0.5, smarco_result.utilization),
            technology_nm=request.technology_nm,
        ),
        xeon_watts=xeon_power.total_watts(
            utilization=max(0.1, xeon_result.utilization)),
    )
    # both systems are component roots ("chip." / "xeon." prefixes), so the
    # two flat dumps merge without collision
    stats: Dict[str, float] = {}
    stats.update(smarco_outcome.stats)
    stats.update(xeon_outcome.stats)
    combined_audit = None
    if smarco_outcome.audit is not None or xeon_outcome.audit is not None:
        combined_audit = {"smarco": smarco_outcome.audit,
                          "xeon": xeon_outcome.audit}
    return RunOutcome(
        request=request, result=result, stats=stats,
        components={"smarco": smarco_outcome.components,
                    "xeon": xeon_outcome.components},
        audit=combined_audit,
    )


def _execute_sched(request: RunRequest,
                   audit: Optional[AuditConfig] = None) -> RunOutcome:
    """One (policy, scenario) race on the audited scenario testbed."""
    from ..sched.scenarios import collect_sched_result, prepare_sched_scenario

    registry = StatsRegistry()
    auditor = _make_auditor(audit)
    sched_config = (request.smarco_config.scheduler
                    if request.smarco_config is not None else None)
    run = prepare_sched_scenario(
        policy=request.sched_policy,
        scenario=request.sched_scenario,
        seed=request.seed,
        workload=request.workload,
        tasks=request.sched_tasks,
        contexts=request.sched_contexts,
        config=sched_config,
        registry=registry,
        auditor=auditor,
    )
    if request.run_cycles is not None:
        # bounded horizon: an audit would flag the deliberately
        # unfinished tasks, so the audited path requires a full run
        run.bed.start()
        run.sim.run(until=request.run_cycles)
    else:
        run.bed.run()
    result = collect_sched_result(run)
    return RunOutcome(request=request, result=result, stats=registry.dump(),
                      audit=auditor.summary() if auditor is not None else None)


def _execute_traffic(request: RunRequest,
                     audit: Optional[AuditConfig] = None) -> RunOutcome:
    """One open-loop cluster run (see :mod:`repro.traffic.cluster`).

    The chip-model calibration run inside :func:`~repro.traffic.cluster.
    calibrate_chip` goes back through :func:`execute` (under the
    ``REPRO_AUDIT`` environment setting, like any run); the queueing tier
    itself declares no invariant checkers, so the explicit ``audit``
    override has nothing to attach to here.
    """
    from ..traffic.cluster import run_traffic

    registry = StatsRegistry()
    result = run_traffic(request, registry=registry)
    return RunOutcome(request=request, result=result, stats=registry.dump())


# -- legacy per-kind helpers (thin shims over execute) -----------------------------


def _warn_kwargs(name: str) -> None:
    warnings.warn(
        f"{name}(workload, **kwargs) is deprecated; build a "
        f"repro.exp.RunRequest and pass it as the only argument",
        DeprecationWarning, stacklevel=3)


def run_smarco(
    workload: Union[RunRequest, str],
    config: Optional[SmarCoConfig] = None,
    threads_per_core: int = 8,
    instrs_per_thread: int = 600,
    seed: int = 0,
    core_policy: str = "inpair",
    realtime_fraction: float = 0.0,
) -> SmarcoRunResult:
    """Run a named workload on a SmarCo chip (prefer passing a RunRequest)."""
    if isinstance(workload, RunRequest):
        return _execute_smarco(replace(workload, kind="smarco")).result
    _warn_kwargs("run_smarco")
    request = RunRequest(
        kind="smarco", workload=workload, seed=seed, smarco_config=config,
        threads_per_core=threads_per_core,
        instrs_per_thread=instrs_per_thread,
        core_policy=core_policy, realtime_fraction=realtime_fraction,
    )
    return _execute_smarco(request).result


def run_xeon(
    workload: Union[RunRequest, str],
    config: Optional[XeonConfig] = None,
    n_threads: int = 48,
    instrs_per_thread: int = 40_000,
    seed: int = 0,
    stagger_creation: bool = True,
) -> XeonRunResult:
    """Run a named workload on the baseline (prefer passing a RunRequest)."""
    if isinstance(workload, RunRequest):
        return _execute_xeon(replace(workload, kind="xeon")).result
    _warn_kwargs("run_xeon")
    request = RunRequest(
        kind="xeon", workload=workload, seed=seed, xeon_config=config,
        xeon_threads=n_threads, xeon_instrs_per_thread=instrs_per_thread,
        stagger_creation=stagger_creation,
    )
    return _execute_xeon(request).result


def compare(
    workload: Union[RunRequest, str],
    smarco_config: Optional[SmarCoConfig] = None,
    xeon_config: Optional[XeonConfig] = None,
    smarco_threads_per_core: int = 8,
    smarco_instrs_per_thread: int = 600,
    xeon_threads: int = 48,
    xeon_instrs_per_thread: int = 40_000,
    seed: int = 0,
    technology_nm: Optional[int] = None,
    power_config: Optional[SmarCoConfig] = None,
) -> ComparisonResult:
    """SmarCo vs Xeon on one workload (prefer passing a RunRequest)."""
    if isinstance(workload, RunRequest):
        return _execute_compare(replace(workload, kind="compare")).result
    _warn_kwargs("compare")
    request = RunRequest(
        kind="compare", workload=workload, seed=seed,
        smarco_config=smarco_config, xeon_config=xeon_config,
        threads_per_core=smarco_threads_per_core,
        instrs_per_thread=smarco_instrs_per_thread,
        xeon_threads=xeon_threads,
        xeon_instrs_per_thread=xeon_instrs_per_thread,
        technology_nm=technology_nm, power_config=power_config,
    )
    return _execute_compare(request).result
