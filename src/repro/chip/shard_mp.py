"""Multiprocess executor for a sharded :class:`SmarCoChip`.

One worker process per shard.  Worker ``w`` of ``W`` *owns* the
sub-ring domains ``{s : s % W == w}`` and **redundantly simulates the
hub domain** — hub replication trades duplicated hub work for a much
simpler protocol:

* the only cross-process traffic is ring->hub boundary messages, which
  every worker broadcasts so every hub replica sees the identical
  canonical ``(deliver time, tag)`` insertion stream and therefore
  stays bit-identical to every other replica;
* hub->ring messages never cross a process: the OWNER's hub replica
  produced them natively (original Python objects, so thread wake-ups
  and completion chains fire on the real core state), and the other
  replicas simply drop their copies for rings they do not own.

Synchronisation is leaderless: each window the workers exchange one
small packet all-to-all — (next event time, last event time, boundary
blob) — and every worker derives the identical global decision (window
edge, quiesce-flush, or stop) from the identical vector.  The exchange
itself is the window barrier; the parent process only forks the
workers and merges their final summaries.

Messages are pickled with a *persistent-id anchor table*: every chip
component, domain engine, registered signal, and hardware thread is
encoded as a stable path key and resolved against the receiving
worker's (fork-inherited, structurally identical) chip — identity is
preserved for the durable simulated hardware while the in-flight
payload (packets, requests, flights, completions) copies by value.
"""

from __future__ import annotations

import io
import multiprocessing
import multiprocessing.connection
import pickle
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..errors import ConfigError, ShardingError
from ..sim.domain import AccumulatorTap, CounterTap, merge_tap_samples
from ..sim.engine import _swap_active

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .smarco import SmarCoChip, SmarcoRunResult

__all__ = ["run_chip_mp", "boundary_anchors"]


# -- anchor-table message codec ----------------------------------------------


def boundary_anchors(chip: "SmarCoChip") -> Dict[str, Any]:
    """Stable key -> durable object table for boundary-message pickling.

    Keys are derived purely from the component tree and the domain plan,
    so the table built in any fork of the same chip maps the same keys
    to the corresponding (identical-by-construction) objects.
    """
    anchors: Dict[str, Any] = {}
    for comp in chip.walk():
        anchors[f"c:{comp.path}"] = comp
        for key, obj in comp.snapshot_anchors().items():
            anchors[f"a:{comp.path}/{key}"] = obj
    if chip.shard_plan is not None:
        for dom in chip.shard_plan.domains:
            anchors[f"e:{dom.name}"] = dom.sim
            for key, signal in dom.sim.signals().items():
                anchors[f"s:{dom.name}:{key}"] = signal
    for core in chip.cores:
        # threads hold generator frames (unpicklable) and their identity
        # is load-bearing: completion waiters resume the real thread
        for i, thread in enumerate(core.threads):
            anchors[f"t:{core.path}/{i}"] = thread
    return anchors


class _BoundaryPickler(pickle.Pickler):
    def __init__(self, file: io.BytesIO, by_id: Dict[int, str]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._by_id = by_id

    def persistent_id(self, obj: Any) -> Optional[str]:
        return self._by_id.get(id(obj))


class _BoundaryUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, anchors: Dict[str, Any]) -> None:
        super().__init__(file)
        self._anchors = anchors

    def persistent_load(self, pid: str) -> Any:
        try:
            return self._anchors[pid]
        except KeyError:
            raise ShardingError(
                f"boundary message references unknown anchor {pid!r}"
            ) from None


def encode_messages(messages: List[tuple], by_id: Dict[int, str]) -> bytes:
    buf = io.BytesIO()
    _BoundaryPickler(buf, by_id).dump(messages)
    return buf.getvalue()


def decode_messages(blob: bytes, anchors: Dict[str, Any]) -> List[tuple]:
    return _BoundaryUnpickler(io.BytesIO(blob), anchors).load()


# -- worker ------------------------------------------------------------------


def _exchange(peers: Dict[int, Any], packet: tuple) -> List[tuple]:
    """All-to-all: send ``packet`` to every peer, collect one from each.

    Sends complete before any receive, and the receive side drains
    every ready pipe while waiting, so a send blocked on a full pipe
    buffer always finds its peer draining — the exchange cannot
    deadlock.  Doubles as the window barrier.
    """
    for conn in peers.values():
        conn.send(packet)
    got: Dict[int, tuple] = {}
    by_conn = {conn: v for v, conn in peers.items()}
    while len(got) < len(peers):
        pending = [conn for v, conn in peers.items() if v not in got]
        for conn in multiprocessing.connection.wait(pending, timeout=10.0):
            msg = conn.recv()
            if msg[0] == "e":
                raise ShardingError(f"shard peer failed:\n{msg[1]}")
            got[by_conn[conn]] = msg
    if any(msg[1] != packet[1] for msg in got.values()):
        raise ShardingError("shard workers lost window lockstep")
    return [got[v] for v in sorted(got)]


def _worker_main(chip: "SmarCoChip", w: int, W: int, q: float,
                 until: Optional[float], peers: Dict[int, Any],
                 parent_conn) -> None:
    notified = False
    try:
        plan = chip.shard_plan
        assert plan is not None
        n_rings = len(chip.subrings)
        owned = [s for s in range(n_rings) if s % W == w]
        owned_set = set(owned)
        hub = plan.domains[0]
        ring_doms = plan.domains[1:]
        local_domains = [hub] + [ring_doms[s] for s in owned]
        anchors = boundary_anchors(chip)
        by_id = {id(obj): key for key, obj in anchors.items()}
        taps = chip._install_shard_taps()
        assert chip._to_hub is not None and chip._to_sub is not None

        # pending boundary messages not yet due for delivery
        pool_hub: List[tuple] = []
        pool_sub: Dict[int, List[tuple]] = {s: [] for s in owned}

        def gather_crossings() -> List[tuple]:
            """Drain the channels; return the messages to broadcast."""
            out: List[tuple] = []
            for s in owned:
                ch = chip._to_hub[s]
                if ch.queue:
                    out.extend(ch.queue)
                    pool_hub.extend(ch.queue)   # native copy for own hub
                    ch.queue = []
            for s, ch in enumerate(chip._to_sub):
                if ch.queue:
                    if s in owned_set:
                        pool_sub[s].extend(ch.queue)
                    # a replica's output for a foreign ring: the owner's
                    # replica produced the identical message natively
                    ch.queue = []
            return out

        def local_next() -> Optional[float]:
            nt: Optional[float] = None
            for d in local_domains:
                p = d.sim.peek()
                if p is not None and (nt is None or p < nt):
                    nt = p
            for entry in pool_hub:
                if nt is None or entry[0] < nt:
                    nt = entry[0]
            for s in owned:
                for entry in pool_sub[s]:
                    if nt is None or entry[0] < nt:
                        nt = entry[0]
            return nt

        def deliver(pool: List[tuple], dom, edge: float) -> List[tuple]:
            due = [e for e in pool if e[0] < edge]
            if not due:
                return pool
            keep = [e for e in pool if e[0] >= edge]
            due.sort(key=lambda e: (e[0], e[1]))
            for when, tag, fn, args in due:
                dom.sim.schedule_boundary(when, tag, fn, args)
            return keep

        hooks = 1                   # the MACT quiesce flush
        gen = 0
        while True:
            out = gather_crossings()
            blob = encode_messages(out, by_id) if out else b""
            nxt = local_next()
            last = max(d.sim.last_event_time for d in local_domains)
            stats = _exchange(peers, ("w", gen, nxt, last, blob))
            gen += 1
            nt = nxt
            t_last = last
            for msg in stats:
                if msg[2] is not None and (nt is None or msg[2] < nt):
                    nt = msg[2]
                t_last = max(t_last, msg[3])
            if nt is None or (until is not None and nt > until):
                # globally quiescent (or past the horizon): every worker
                # reaches the identical decision from the identical vector
                t_stop = until if until is not None else t_last
                for d in local_domains:
                    d.sim.now = t_stop
                if hooks:
                    hooks -= 1
                    # every replica flushes every MACT: flush events are
                    # hub events, identical across replicas
                    chip._flush_macts()
                    continue
                summary = {
                    "t_final": t_stop,
                    "stats": chip.registry.state_dict(),
                    "taps": {name: tap.samples
                             for name, tap in taps.items()},
                    "done": {core.core_id: core.done
                             for core in chip.cores
                             if chip.ring_of(core.core_id) in owned_set},
                }
                parent_conn.send(("summary", summary))
                notified = True
                return
            for msg in stats:
                if msg[4]:
                    pool_hub.extend(decode_messages(msg[4], anchors))
            edge = nt + q
            pool_hub = deliver(pool_hub, hub, edge)
            for s in owned:
                pool_sub[s] = deliver(pool_sub[s], ring_doms[s], edge)
            for d in local_domains:     # hub first, rings in index order
                prev = _swap_active(d.sim)
                try:
                    d.sim.run_window(edge, cap=until)
                finally:
                    _swap_active(prev)
    except BaseException:
        import traceback
        tb = traceback.format_exc()
        if not notified:
            try:
                parent_conn.send(("error", tb))
            except Exception:
                pass
            for conn in peers.values():
                try:
                    conn.send(("e", tb))
                except Exception:
                    pass


# -- parent ------------------------------------------------------------------


def run_chip_mp(chip: "SmarCoChip", max_cycles: Optional[float],
                workers: int, quantum: Optional[float]) -> "SmarcoRunResult":
    """Run a canonical-mode sharded chip across worker processes."""
    plan = chip.shard_plan
    if plan is None:
        raise ConfigError("chip has no shard plan")
    q = plan.default_quantum() if quantum is None else quantum
    if q <= 0:
        raise ConfigError(
            "multiprocess sharding requires a quantum > 0 (worker "
            "processes cannot interleave inside a window)")
    plan.validate_quantum(q)
    W = max(1, min(int(workers), len(chip.subrings)))
    if W < 2:
        raise ConfigError("multiprocess sharding needs >= 2 workers")

    # initial events must exist before the fork so every worker inherits
    # the identical started chip
    chip.start()

    ctx = multiprocessing.get_context("fork")
    pair_conns: Dict[tuple, Any] = {}
    for a in range(W):
        for b in range(a + 1, W):
            ca, cb = ctx.Pipe()
            pair_conns[(a, b)] = ca
            pair_conns[(b, a)] = cb
    parent_pipes = []
    procs = []
    for w in range(W):
        parent_conn, child_conn = ctx.Pipe()
        peers = {v: pair_conns[(w, v)] for v in range(W) if v != w}
        proc = ctx.Process(
            target=_worker_main,
            args=(chip, w, W, q, max_cycles, peers, child_conn),
            daemon=True)
        proc.start()
        child_conn.close()
        parent_pipes.append(parent_conn)
        procs.append(proc)
    for conn in pair_conns.values():
        conn.close()

    summaries: List[Optional[dict]] = [None] * W
    try:
        pending = set(range(W))
        while pending:
            ready = multiprocessing.connection.wait(
                [parent_pipes[w] for w in pending], timeout=10.0)
            if not ready:
                dead = [w for w in pending if not procs[w].is_alive()]
                if dead:
                    raise ShardingError(
                        f"shard workers {dead} died without a summary")
                continue
            for conn in ready:
                w = parent_pipes.index(conn)
                try:
                    msg = conn.recv()
                except EOFError:
                    raise ShardingError(
                        f"shard worker {w} exited uncleanly") from None
                if msg[0] == "error":
                    raise ShardingError(f"shard worker failed:\n{msg[1]}")
                summaries[w] = msg[1]
                pending.discard(w)
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        for conn in parent_pipes:
            conn.close()

    final = [s for s in summaries if s is not None]
    assert len(final) == W
    return _merge_summaries(chip, final, W)


def _merge_summaries(chip: "SmarCoChip", summaries: List[dict],
                     W: int) -> "SmarcoRunResult":
    deferred = chip.shard_deferred_stats()
    registry = chip.registry

    def owner_of(domain: int) -> int:
        return 0 if domain == 0 else (domain - 1) % W

    for name in registry.names():
        if name in deferred:
            continue
        domain = chip.shard_stat_domain(name)
        state = summaries[owner_of(domain)]["stats"].get(name)
        if state is not None:
            registry.get(name).load_state(state)

    # replay the cross-domain stats from the per-domain tap streams:
    # hub samples from worker 0 (all replicas recorded identical
    # streams), ring samples from each ring's owner
    n_rings = len(chip.subrings)
    tap_targets = {
        "req_latency": (AccumulatorTap, chip.req_latency),
        "noc.latency": (AccumulatorTap, chip.noc.latency),
        "noc.injected": (CounterTap, chip.noc.injected),
        "noc.delivered": (CounterTap, chip.noc.delivered),
    }
    for key, (tap_cls, stat) in tap_targets.items():
        streams = [{0: summaries[0]["taps"][key].get(0, [])}]
        for s in range(n_rings):
            domain = s + 1
            samples = summaries[owner_of(domain)]["taps"][key]
            streams.append({domain: samples.get(domain, [])})
        entries = merge_tap_samples(streams)
        tap_cls(stat).replay(entries)

    done: Dict[int, bool] = {}
    for summary in summaries:
        done.update(summary["done"])

    t_final = summaries[0]["t_final"]
    for dom in chip.shard_plan.domains:       # type: ignore[union-attr]
        dom.sim.now = t_final
    return chip.collect_result(done_override=done)
