"""Full-chip SmarCo assembly (paper Fig 4).

Wires every subsystem together and simulates the complete memory path:

    TCG core --sub-ring--> MACT (at the bridge) --main-ring--> memory
    controller --DRAM--> reply --main-ring--> bridge --sub-ring--> core

Real-time reads may ride the star-shaped direct datapath instead
(§3.5.2).  Remote-SPM requests travel core-to-core over the rings.

The chip is a :class:`~repro.sim.component.Component` tree::

    chip
    ├── noc                 hierarchical ring network
    ├── mem                 memory controllers + DRAM channels
    ├── direct              (optional) star datapath
    └── subring{s}
        ├── mact            request collection table
        ├── dma             sub-ring DMA engine
        ├── spm{cid}        per-core scratchpads
        └── core{cid}       TCG cores
            └── prefetch    (optional) SPM stream prefetcher

All cross-subsystem traffic flows over declared ports: cores issue on
``core{cid}.mem_req`` into the chip's ``core_req`` fan-in; MACT batches
leave on ``mact.batch_out`` into per-ring ``batch_in{s}`` ports; NoC
deliveries feed MACTs through ``mact_feed{s}``; packets are injected
through ``noc_out`` → ``noc.inject``.  ``chip.tree()`` renders the
hierarchy; ``chip.find("subring*/mact")`` navigates it.

The chip is the engine behind the headline experiments: Fig 19/20 (MACT),
Fig 22 (performance & energy vs Xeon), Fig 23 (scalability), and the
topology/direct-path ablations.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.breakdown import LatencyBreakdown
from ..config import SmarCoConfig, smarco_scaled
from ..core.tcg import TCGCore
from ..errors import ConfigError
from ..mem.controller import MemorySystem
from ..mem.dma import DmaEngine
from ..mem.mact import MACT, Batch
from ..mem.prefetch import StreamPrefetcher
from ..mem.request import MemRequest, Priority, TraceSampler
from ..mem.spm import Scratchpad, SpmAddressMap
from ..noc.directpath import DirectDatapath
from ..noc.hierring import HierarchicalRingNoC
from ..noc.packet import NodeId, Packet, PacketKind
from ..sim.component import Component
from ..sim.domain import (AccumulatorTap, BoundaryChannel, CounterTap,
                          DomainPlan, ShardedSimulator, SimDomain,
                          replay_taps)
from ..sim.engine import Simulator, _swap_active, active_sim
from ..sim.rng import RngTree
from ..sim.snapshot import snapshotable
from ..workloads.base import WorkloadProfile
from .results import DictResult

__all__ = ["SmarCoChip", "SmarcoRunResult", "SubRing"]

_BATCH_HEADER_BYTES = 8
# per-sub-ring gang datasets live here (uncached streaming space)
UNCACHED_GANG_BASE = 0x9000_0000_0000


@dataclass
class SmarcoRunResult(DictResult):
    """Measured outcome of one workload run on the chip."""

    cycles: float
    instructions: int
    cores_done: int
    total_cores: int
    frequency_ghz: float
    mem_requests: int
    mem_transactions: int
    mean_request_latency: float
    noc_bandwidth_utilization: float
    mact_request_reduction: float

    _COMPUTED = ("ipc", "throughput_ips", "utilization")

    @property
    def ipc(self) -> float:
        """Chip-level instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def throughput_ips(self) -> float:
        """Instructions per second (the cross-chip comparison metric)."""
        return self.ipc * self.frequency_ghz * 1e9

    @property
    def utilization(self) -> float:
        """Issue-slot activity factor, used by the power model."""
        if not self.total_cores:
            return 0.0
        return min(1.0, self.ipc / (4 * self.total_cores))


class SubRing(Component):
    """One sub-ring cluster: its MACT, DMA engine, cores and SPMs.

    In a sharded chip each sub-ring binds to its own domain engine
    (``sim``); its MACT is the one exception — it sits at the bridge and
    talks to the main ring over zero-latency ports, so it is absorbed
    into the hub domain.
    """

    def __init__(self, ring_id: int, parent: Component,
                 sim: Optional[Simulator] = None) -> None:
        super().__init__(f"subring{ring_id}", parent=parent, sim=sim)
        self.ring_id = ring_id


@snapshotable
class _BatchFlight:
    """Explicit-state form of the packed-batch memory round trip.

    Each phase is one resume of the old ``_batch_proc`` generator;
    everything derivable from ``(ring, batch)`` is recomputed per step so
    the flight state stays three fields.
    """

    __slots__ = ("chip", "ring", "batch", "phase")

    def __init__(self, chip: "SmarCoChip", ring: int, batch: Batch) -> None:
        self.chip = chip
        self.ring = ring
        self.batch = batch
        self.phase = "command"

    def _step(self, _payload=None) -> None:
        chip = self.chip
        sim = active_sim(chip.sim)
        batch = self.batch
        covered = max(1, batch.wanted_bytes)
        mc = chip.memory.controller_for(batch.base_addr)
        mc_node = NodeId("mc", index=mc.controller_id)
        bridge = NodeId("bridge", ring=self.ring)
        if self.phase == "command":
            # command (reads) or command+data (writes) to the controller
            out_size = _BATCH_HEADER_BYTES + (covered if batch.is_write else 0)
            out_pkt = Packet(src=bridge, dst=mc_node, size_bytes=out_size,
                             kind=PacketKind.MEM_WRITE if batch.is_write
                             else PacketKind.MEM_READ,
                             traces=chip._pkt_traces(*batch.requests))
            self.phase = "dram"
            chip.noc.send(out_pkt).wait(self._step)
            return
        if self.phase == "dram":
            # DRAM access for the packed transaction; the members' hop
            # chains ride the proxy request through the controller
            dram_req = MemRequest(addr=batch.base_addr, size=covered,
                                  is_write=batch.is_write)
            finish = mc.submit(dram_req, carried=batch.requests)
            self.phase = "reply"
            sim.schedule(max(0.0, finish - sim.now), self._step, None)
            return
        if self.phase == "reply":
            if batch.is_write:
                for req in batch.requests:
                    req.complete(sim.now)
                return
            # data back to the bridge, then per-request sub-ring delivery
            reply = Packet(src=mc_node, dst=bridge,
                           size_bytes=_BATCH_HEADER_BYTES + covered,
                           kind=PacketKind.MEM_REPLY,
                           traces=chip._pkt_traces(*batch.requests))
            self.phase = "fanout"
            chip.noc.send(reply).wait(self._step)
            return
        for req in batch.requests:
            final = Packet(
                src=bridge, dst=chip.core_node(req.core_id),
                size_bytes=max(1, req.size), kind=PacketKind.MEM_REPLY,
                on_delivered=functools.partial(chip._deliver_reply, req),
                traces=chip._pkt_traces(req),
            )
            chip.noc_out.send(final)


@snapshotable
class _DirectReadFlight:
    """Explicit-state form of the real-time direct-datapath read."""

    __slots__ = ("chip", "ring", "core_id", "request", "phase")

    def __init__(self, chip: "SmarCoChip", ring: int, core_id: int,
                 request: MemRequest) -> None:
        self.chip = chip
        self.ring = ring
        self.core_id = core_id
        self.request = request
        self.phase = "command"

    def _step(self, _payload=None) -> None:
        chip = self.chip
        sim = active_sim(chip.sim)
        request = self.request
        if self.phase == "command":
            out = Packet(src=chip.core_node(self.core_id),
                         dst=NodeId("mc", index=0), size_bytes=8,
                         kind=PacketKind.MEM_READ, realtime=True,
                         traces=chip._pkt_traces(request))
            self.phase = "dram"
            chip.direct.send(out, self.ring).wait(self._step)
            return
        if self.phase == "dram":
            mc = chip.memory.controller_for(request.addr)
            dram_req = MemRequest(addr=request.addr, size=request.size,
                                  is_write=False)
            finish = mc.submit(dram_req, carried=(request,))
            self.phase = "reply"
            sim.schedule(max(0.0, finish - sim.now), self._step, None)
            return
        if self.phase == "reply":
            mc = chip.memory.controller_for(request.addr)
            back = Packet(src=NodeId("mc", index=mc.controller_id),
                          dst=chip.core_node(self.core_id),
                          size_bytes=max(1, request.size),
                          kind=PacketKind.MEM_REPLY, realtime=True,
                          traces=chip._pkt_traces(request))
            self.phase = "done"
            chip.direct.send(back, self.ring).wait(self._step)
            return
        request.complete(sim.now)


@snapshotable
class _RemoteSpmFlight:
    """Explicit-state form of the core-to-core remote-SPM access."""

    __slots__ = ("chip", "core_id", "owner", "request", "phase")

    def __init__(self, chip: "SmarCoChip", core_id: int, owner: Scratchpad,
                 request: MemRequest) -> None:
        self.chip = chip
        self.core_id = core_id
        self.owner = owner
        self.request = request
        self.phase = "there"

    def _step(self, _payload=None) -> None:
        chip = self.chip
        sim = active_sim(chip.sim)
        request = self.request
        if self.phase == "there":
            there = Packet(src=chip.core_node(self.core_id),
                           dst=chip.core_node(self.owner.core_id),
                           size_bytes=max(1, request.size),
                           kind=PacketKind.SPM_TRANSFER,
                           traces=chip._pkt_traces(request))
            self.phase = "serve"
            chip.noc.send(there).wait(self._step)
            return
        if self.phase == "serve":
            latency = self.owner.serve_remote(
                request, sim.now, chip.config.tcg.spm_hit_latency)
            self.phase = "back"
            sim.schedule(latency, self._step, None)
            return
        if self.phase == "back" and not request.is_write:
            back = Packet(src=chip.core_node(self.owner.core_id),
                          dst=chip.core_node(self.core_id),
                          size_bytes=max(1, request.size),
                          kind=PacketKind.SPM_TRANSFER,
                          traces=chip._pkt_traces(request))
            self.phase = "done"
            chip.noc.send(back).wait(self._step)
            return
        request.complete(sim.now)


class SmarCoChip(Component):
    """A complete SmarCo processor instance."""

    def __init__(
        self,
        config: Optional[SmarCoConfig] = None,
        seed: int = 0,
        core_policy: str = "inpair",
        realtime_fraction: float = 0.0,
        spm_prefetch: bool = False,
        name: str = "chip",
        shards: int = 0,
    ) -> None:
        self.config = config if config is not None else smarco_scaled(4)
        self.config.validate()
        cfg = self.config

        # -- shardable time domains (tentpole): one per sub-ring plus the
        #    hub (main ring, bridges, MACTs, memory, direct path).
        self.shards = int(shards)
        self.shard_plan: Optional[DomainPlan] = None
        self._ring_domains: List[SimDomain] = []
        self._to_hub: Optional[List[BoundaryChannel]] = None
        self._to_sub: Optional[List[BoundaryChannel]] = None
        if self.shards:
            if spm_prefetch:
                raise ConfigError(
                    "sharded runs do not support spm_prefetch: the "
                    "prefetcher's fetch_out wire would cross domains with "
                    "zero latency")
            if realtime_fraction > 0.0:
                raise ConfigError(
                    "sharded runs do not support realtime_fraction > 0 "
                    "(direct-datapath reads are not domain-partitioned)")
            if cfg.trace_sample_rate > 0.0:
                raise ConfigError(
                    "sharded runs do not support trace sampling "
                    "(hop traces are stamped from several domains)")
            # shards == 1: every domain engine draws from ONE arrival
            # counter and the executor interleaves them in global event
            # order — bit-for-bit identical to the serial engine (the
            # equivalence testbed).  shards >= 2: canonical per-domain
            # tags that independent worker processes can agree on.
            shared = [0] if self.shards == 1 else None
            hub = SimDomain("hub", 0, shared_seq=shared)
            self._ring_domains = [
                SimDomain(f"sub{s}", s + 1, shared_seq=shared)
                for s in range(cfg.sub_rings)
            ]
            plan = DomainPlan([hub] + self._ring_domains)
            lat = cfg.ring.bridge_latency
            self._to_hub = [
                plan.channel(f"sub{s}->hub", self._ring_domains[s], hub, lat)
                for s in range(cfg.sub_rings)
            ]
            self._to_sub = [
                plan.channel(f"hub->sub{s}", hub, self._ring_domains[s], lat)
                for s in range(cfg.sub_rings)
            ]
            self.shard_plan = plan
            super().__init__(name, sim=hub.sim)
        else:
            super().__init__(name, sim=Simulator())
        self.rng = RngTree(seed)

        # -- chip-level ports (the seams between subsystems) ------------------
        self.core_req = self.in_port(
            "core_req", MemRequest, handler=self._on_core_request,
            doc="fan-in of every core's mem_req port",
        )
        self.noc_out = self.out_port(
            "noc_out", Packet, doc="fire-and-forget packet injection",
        )
        self._batch_in = [
            self.in_port(f"batch_in{s}", Batch,
                         handler=functools.partial(self._dispatch_batch, s),
                         doc=f"packed batches leaving sub-ring {s}'s MACT")
            for s in range(cfg.sub_rings)
        ]
        self._mact_feed = [
            self.out_port(f"mact_feed{s}", MemRequest,
                          doc=f"NoC-delivered requests entering MACT {s}")
            for s in range(cfg.sub_rings)
        ]

        # -- subsystems --------------------------------------------------------
        self.noc = HierarchicalRingNoC(
            self.sim, cfg.sub_rings, cfg.cores_per_sub_ring,
            cfg.memory.channels, cfg.ring, parent=self,
            sub_ring_sims=([d.sim for d in self._ring_domains]
                           if self.shard_plan is not None else None),
            shard_channels=((self._to_hub, self._to_sub)
                            if self.shard_plan is not None else None),
        )
        self.memory = MemorySystem(self.sim, cfg.memory, cfg.frequency_ghz,
                                   parent=self)
        self.direct: Optional[DirectDatapath] = None
        if cfg.ring.direct_datapath:
            self.direct = DirectDatapath(
                self.sim, cfg.sub_rings,
                latency=cfg.ring.direct_datapath_latency,
                parent=self,
            )

        self.subrings: List[SubRing] = [
            SubRing(s, parent=self, sim=self._domain_sim(s))
            for s in range(cfg.sub_rings)
        ]
        # MACTs sit at the bridges and exchange zero-latency port traffic
        # with the main ring, so they live on the hub engine even though
        # they are subring{s} children in the component tree.
        self.macts: List[MACT] = [
            MACT(self.sim, config=cfg.mact, parent=self.subrings[s])
            for s in range(cfg.sub_rings)
        ]
        # one DMA engine per sub-ring (SPM transfers + code prefetch, §3.5.1)
        self.dmas: List[DmaEngine] = [
            DmaEngine(self._domain_sim(s), parent=self.subrings[s])
            for s in range(cfg.sub_rings)
        ]

        self.spms: Dict[int, Scratchpad] = {
            cid: Scratchpad(cid, cfg.tcg.spm_bytes, cfg.tcg.spm_control_bytes,
                            parent=self.subrings[self.ring_of(cid)])
            for cid in range(cfg.total_cores)
        }
        self.spm_map = SpmAddressMap(self.spms)

        self.req_latency = self.stats.accumulator("req_latency")
        # hop-stamped transaction sampling (tentpole): which core requests
        # carry a trace, and where completed traces are aggregated
        self._trace_sampler = TraceSampler(cfg.trace_sample_rate)
        self.breakdown = LatencyBreakdown(self.registry)
        self.cores: List[TCGCore] = []
        # optional §7 extension: sequential-stream prefetch into SPM
        self.prefetchers: List[Optional[StreamPrefetcher]] = []
        for cid in range(cfg.total_cores):
            core = TCGCore(
                self._domain_sim(self.ring_of(cid)), cid,
                config=cfg.tcg, policy=core_policy,
                spm_map=self.spm_map,
                realtime_fraction=realtime_fraction,
                rng=self.rng.stream(f"core{cid}.rt") if realtime_fraction else None,
                parent=self.subrings[self.ring_of(cid)],
            )
            self.cores.append(core)
            if spm_prefetch:
                self.prefetchers.append(
                    StreamPrefetcher(cid, parent=core, name="prefetch"))
            else:
                self.prefetchers.append(None)
        self._loaded = False
        self._started = False
        self._shared_code = False
        self._code_payload = b""
        self._audit = None              # set by attach_audit
        self.elaborate()

    def attach_audit(self, auditor) -> None:
        if self.shard_plan is not None:
            raise ConfigError(
                "runtime audits require the serial engine; re-run without "
                "--shards (or REPRO_SHARDS) to audit")
        if auditor.register_chip(self):
            self._audit = auditor

    def _domain_sim(self, ring: int) -> Simulator:
        """The engine sub-ring ``ring``'s components bind to."""
        if self.shard_plan is None:
            return self.sim
        return self._ring_domains[ring].sim

    def on_connect(self) -> None:
        """Declare every cross-subsystem wire of Fig 4."""
        for core in self.cores:
            core.mem_req.connect(self.core_req)
        self.noc_out.connect(self.noc.inject)
        for s in range(self.config.sub_rings):
            mact = self.macts[s]
            mact.batch_out.connect(self._batch_in[s])
            self._mact_feed[s].connect(mact.submit_in)
        for prefetcher in self.prefetchers:
            if prefetcher is not None:
                ring = self.ring_of(prefetcher.core_id)
                prefetcher.fetch_out.connect(self.macts[ring].submit_in)

    # -- topology helpers --------------------------------------------------------

    def ring_of(self, core_id: int) -> int:
        return core_id // self.config.cores_per_sub_ring

    def core_node(self, core_id: int) -> NodeId:
        ring, idx = divmod(core_id, self.config.cores_per_sub_ring)
        return NodeId("core", ring=ring, index=idx)

    # -- the memory path ------------------------------------------------------------

    def _on_core_request(self, request: MemRequest) -> None:
        """``core_req`` handler: maybe trace, account latency, then route."""
        if self._trace_sampler.sample():
            trace = request.start_trace()
            trace.advance("issue", self.cores[request.core_id].path,
                          request.issue_time)
        request.on_complete = functools.partial(
            self._record_completion, request.on_complete)
        if self._audit is not None:
            self._audit.request_issued(request, self.sim.now)
        self._route_request(request.core_id, request)

    def _record_completion(self, prev, request: MemRequest, now: float) -> None:
        self.req_latency.add(now - request.issue_time)
        if self._audit is not None:
            self._audit.request_completed(request, now)
        if request.trace is not None:
            self.breakdown.record(request)
        if prev is not None:
            prev(request, now)

    @staticmethod
    def _pkt_traces(*requests: MemRequest) -> tuple:
        """Hop traces a packet must carry for the given riding requests."""
        return tuple(r.trace for r in requests if r.trace is not None)

    def _route_request(self, core_id: int, request: MemRequest) -> None:
        ring = self.ring_of(core_id)
        spm_owner = self.spm_map.owner_of(request.addr)
        sim = active_sim(self.sim)
        if spm_owner is not None:
            flight = _RemoteSpmFlight(self, core_id, spm_owner, request)
            sim.schedule(0, flight._step, None)
            return
        prefetcher = self.prefetchers[core_id]
        if prefetcher is not None and not request.is_write:
            if prefetcher.lookup(request.addr, request.size, sim.now,
                                 request=request):
                # data already staged in SPM by the stream prefetcher
                sim.schedule(self.config.tcg.spm_hit_latency + 1,
                             self._complete_now, request)
                return
            prefetcher.observe(request.addr, request.size, sim.now)
        if (self.direct is not None and not request.is_write
                and request.priority is Priority.REALTIME):
            flight = _DirectReadFlight(self, ring, core_id, request)
            sim.schedule(0, flight._step, None)
            return
        # normal path: ride the sub-ring to the MACT at the bridge
        packet = Packet(
            src=self.core_node(core_id), dst=NodeId("bridge", ring=ring),
            size_bytes=max(1, request.size),
            kind=PacketKind.MEM_WRITE if request.is_write else PacketKind.MEM_READ,
            on_delivered=functools.partial(self._forward_to_mact, ring, request),
            traces=self._pkt_traces(request),
        )
        self.noc_out.send(packet)

    def _forward_to_mact(self, ring: int, request: MemRequest,
                         packet: Packet, now: float) -> None:
        self._mact_feed[ring].send(request)

    def _deliver_reply(self, request: MemRequest,
                       packet: Packet, now: float) -> None:
        request.complete(now)

    def _complete_now(self, request: MemRequest) -> None:
        request.complete(active_sim(self.sim).now)

    def _dispatch_batch(self, ring: int, batch: Batch) -> None:
        flight = _BatchFlight(self, ring, batch)
        active_sim(self.sim).schedule(0, flight._step, None)

    # -- workload loading & running ------------------------------------------------------

    def load_profile(
        self,
        profile: WorkloadProfile,
        threads_per_core: int = 8,
        instrs_per_thread: int = 1000,
        total_threads: Optional[int] = None,
        shared_code: bool = False,
    ) -> None:
        """Attach synthetic workload threads.

        Default: ``threads_per_core`` threads on every core.  With
        ``total_threads`` set, exactly that many threads are distributed
        round-robin over the cores (the Fig 23 thread sweep) and
        ``threads_per_core`` becomes the per-core ceiling.

        ``shared_code=True`` enables the paper's §3.1.2 optimisation: the
        kernel's instruction segment is DMA-prefetched into each core's
        SPM before execution (cores start when their sub-ring's DMA
        delivers the segment) and instruction fetches then bypass the
        I-cache entirely.
        """
        if self._loaded:
            raise ConfigError("chip already loaded")
        if threads_per_core > self.config.tcg.hw_threads:
            raise ConfigError("more threads than hardware contexts")
        cfg = self.config
        if total_threads is None:
            assignment = [threads_per_core] * len(self.cores)
        else:
            if total_threads <= 0:
                raise ConfigError("total_threads must be positive")
            if total_threads > len(self.cores) * cfg.tcg.hw_threads:
                raise ConfigError("total_threads exceeds chip capacity")
            assignment = [0] * len(self.cores)
            for i in range(total_threads):
                assignment[i % len(self.cores)] += 1
        self._loaded = True
        self._shared_code = shared_code
        if shared_code:
            segment_bytes = min(profile.code_footprint_bytes,
                                self.config.tcg.spm_bytes
                                - self.config.tcg.spm_control_bytes)
            self._code_payload = bytes(segment_bytes)
            code_pcs = max(1, profile.code_footprint_bytes // 4)
            for core in self.cores:
                core.set_shared_segment(0, code_pcs)
        for cid, core in enumerate(self.cores):
            spm_base = self.spms[cid].base_addr
            ring, core_idx = divmod(cid, cfg.cores_per_sub_ring)
            # each sub-ring's threads form one gang over a shared dataset
            gang_base = (UNCACHED_GANG_BASE
                         + ring * profile.shared_window_bytes)
            n = assignment[cid]
            gang_size = max(1, cfg.cores_per_sub_ring * n)
            for t in range(n):
                tid = cid * cfg.tcg.hw_threads + t
                rng = self.rng.stream(f"wl.{cid}.{t}")
                core.add_thread(
                    profile.stream(instrs_per_thread, rng, thread_id=tid,
                                   spm_base=spm_base,
                                   spm_bytes=cfg.tcg.spm_bytes,
                                   gang_size=gang_size,
                                   gang_rank=core_idx * n + t,
                                   gang_base=gang_base),
                    name=f"{profile.name}.{tid}",
                )

    def _start_ring_cores(self, cores, _payload) -> None:
        for core in cores:
            core.start()

    def start(self) -> None:
        """Kick off every loaded core (idempotent across resumes)."""
        if not self._loaded:
            raise ConfigError("load a workload first")
        if self._started:
            return
        self._started = True
        active = [core for core in self.cores if core.threads]
        if self._shared_code and self._code_payload:
            # §3.1.2: ONE segment per sub-ring is DMA-staged into SPM and
            # shared among the neighbouring threads (the scheduler's job
            # in the paper); the ring's cores start when it lands.
            by_ring: Dict[int, List[TCGCore]] = {}
            for core in active:
                by_ring.setdefault(self.ring_of(core.core_id), []).append(core)
            for ring, cores in by_ring.items():
                spm = self.spms[cores[0].core_id]
                proc = self.dmas[ring].prefetch_fill(
                    spm, spm.base_addr, self._code_payload)
                proc.done_signal.wait(
                    functools.partial(self._start_ring_cores, tuple(cores)))
        else:
            for core in active:
                core.start()

    def run_to(self, cycles: float) -> None:
        """Simulate to an absolute cycle horizon (a clean snapshot point)."""
        if self.shard_plan is not None:
            raise ConfigError(
                "run_to/checkpointing requires the serial engine; build "
                "the chip without shards")
        self.start()
        self.sim.run(until=cycles)

    def run(self, max_cycles: Optional[float] = None,
            quantum: Optional[float] = None) -> SmarcoRunResult:
        """Start every core and simulate to completion (or the horizon)."""
        if self.shard_plan is not None:
            return self.run_sharded(max_cycles, quantum=quantum)
        if quantum is not None:
            raise ConfigError("quantum only applies to sharded runs")
        self.start()
        self.sim.run(until=max_cycles)
        for mact in self.macts:
            mact.flush_all()
        self.sim.run(until=max_cycles)
        return self.collect_result()

    # -- sharded execution ---------------------------------------------------------

    def run_sharded(
        self,
        max_cycles: Optional[float] = None,
        workers: Optional[int] = None,
        quantum: Optional[float] = None,
    ) -> SmarcoRunResult:
        """Run the partitioned chip under conservative time-window sync.

        ``workers >= 2`` shards the domain groups across processes; one
        worker runs every domain in-process (still windowed — the
        equivalence testbed).  ``quantum=None`` picks the largest safe
        window (the bridge latency); ``quantum=0`` is the bit-for-bit
        sequential reference mode.
        """
        if self.shard_plan is None:
            raise ConfigError("construct the chip with shards >= 1 first")
        nworkers = self.shards if workers is None else workers
        if nworkers >= 2:
            if self.shard_plan.serial_merged:
                raise ConfigError(
                    "this chip was built for in-process sharding "
                    "(shards=1); rebuild with shards >= 2 for a "
                    "multiprocess run")
            from .shard_mp import run_chip_mp
            return run_chip_mp(self, max_cycles, nworkers, quantum)
        if not self.shard_plan.serial_merged:
            raise ConfigError(
                "this chip was built for multiprocess sharding; rebuild "
                "with shards=1 for an in-process run")
        # serial-merge mode IS serially ordered, so the cross-domain
        # stats need no order-restoring taps
        self.start()
        ShardedSimulator(self.shard_plan, quantum).run(
            until=max_cycles, quiesce_hooks=[self._flush_macts])
        return self.collect_result()

    def _flush_macts(self) -> None:
        """Quiesce hook: drain every MACT (on the hub, where they live)."""
        prev = _swap_active(self.sim)
        try:
            for mact in self.macts:
                mact.flush_all()
        finally:
            _swap_active(prev)

    def _install_shard_taps(self) -> Dict[str, object]:
        """Swap the cross-domain stats for order-restoring recorders.

        Exactly four stats receive samples from more than one domain:
        the chip's request-latency accumulator and the NoC's injected /
        delivered counters and latency accumulator.  Accumulators are
        Welford-order-sensitive and multiprocess workers replicate the
        hub, so these record (time, domain, value) streams during the
        run and replay them serially afterwards.
        """
        taps: Dict[str, object] = {
            "req_latency": AccumulatorTap(self.req_latency),
            "noc.latency": AccumulatorTap(self.noc.latency),
            "noc.injected": CounterTap(self.noc.injected),
            "noc.delivered": CounterTap(self.noc.delivered),
        }
        self.req_latency = taps["req_latency"]        # type: ignore[assignment]
        self.noc.latency = taps["noc.latency"]        # type: ignore[assignment]
        self.noc.injected = taps["noc.injected"]      # type: ignore[assignment]
        self.noc.delivered = taps["noc.delivered"]    # type: ignore[assignment]
        return taps

    def _remove_shard_taps(self, taps: Dict[str, object]) -> None:
        self.req_latency = taps["req_latency"].stat      # type: ignore
        self.noc.latency = taps["noc.latency"].stat      # type: ignore
        self.noc.injected = taps["noc.injected"].stat    # type: ignore
        self.noc.delivered = taps["noc.delivered"].stat  # type: ignore

    def shard_deferred_stats(self) -> set:
        """Registry names of the tap-recorded (cross-domain) stats."""
        return {
            f"{self.path}.req_latency",
            f"{self.path}.noc.latency",
            f"{self.path}.noc.injected",
            f"{self.path}.noc.delivered",
        }

    def shard_stat_domain(self, stat_name: str) -> int:
        """Domain index (0 = hub) whose events mutate a registry stat.

        Used by the multiprocess executor to pick, for each stat, the
        single worker whose copy is authoritative.
        """
        prefix = self.path + "."
        if not stat_name.startswith(prefix):
            return 0
        rest = stat_name[len(prefix):]
        if rest.startswith("noc.sub"):
            ring = rest[len("noc.sub"):].split(".", 1)[0]
            return int(ring) + 1 if ring.isdigit() else 0
        if rest.startswith("noc."):
            return 0
        if rest.startswith("subring"):
            head, _, tail = rest.partition(".")
            ring = head[len("subring"):]
            if not ring.isdigit():
                return 0
            # the MACT is the hub-absorbed exception inside a sub-ring
            if tail.startswith("mact"):
                return 0
            return int(ring) + 1
        return 0

    def collect_result(
        self, done_override: Optional[Dict[int, bool]] = None,
    ) -> SmarcoRunResult:
        """Gather the run metrics at the current simulation time.

        ``done_override`` maps core_id -> finished flag; the multiprocess
        executor passes it because worker-side core FSMs never migrate
        back into the parent's objects.
        """
        active = [core for core in self.cores if core.threads]
        instructions = sum(core.instructions for core in active)
        requests_in = sum(m.requests_in.value for m in self.macts)
        batches = sum(m.batches_out.value for m in self.macts)
        if done_override is None:
            cores_done = sum(1 for c in active if c.done)
        else:
            cores_done = sum(
                1 for c in active if done_override.get(c.core_id, False))
        return SmarcoRunResult(
            cycles=self.sim.now,
            instructions=instructions,
            cores_done=cores_done,
            total_cores=len(active),
            frequency_ghz=self.config.frequency_ghz,
            mem_requests=requests_in,
            mem_transactions=batches,
            mean_request_latency=self.req_latency.mean,
            noc_bandwidth_utilization=self.noc.bandwidth_utilization(self.sim.now),
            mact_request_reduction=(requests_in / batches) if batches
            else float("nan"),
        )

    # -- snapshot protocol ---------------------------------------------------------

    def extra_state(self) -> dict:
        return {
            "loaded": self._loaded,
            "started": self._started,
            "shared_code": self._shared_code,
            "code_payload": self._code_payload,
            "sampler": self._trace_sampler,
            "breakdown": self.breakdown.state_dict(),
        }

    def load_extra_state(self, state: dict) -> None:
        self._loaded = state["loaded"]
        self._started = state["started"]
        self._shared_code = state["shared_code"]
        self._code_payload = state["code_payload"]
        self._trace_sampler = state["sampler"]
        self.breakdown.load_state(state["breakdown"])
