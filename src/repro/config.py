"""Configuration dataclasses for the SmarCo chip and the Xeon baseline.

Defaults follow the paper: §3 (architecture parameters), Table 2
(chip-level comparison against the Intel Xeon E7-8890V4), and §3.5.3
(DDR4-2133 memory system).  Every experiment bench builds its system from
these dataclasses, so a scaled run (fewer sub-rings, shorter workloads) is
just a modified config, never a code fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ConfigError

__all__ = [
    "AUDIT_ENV",
    "AuditConfig",
    "TCGConfig",
    "RingConfig",
    "MACTConfig",
    "MemoryConfig",
    "SchedulerConfig",
    "SmarCoConfig",
    "XeonConfig",
    "smarco_default",
    "smarco_scaled",
    "xeon_default",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


#: Environment knob: ``REPRO_AUDIT=1`` turns fail-fast audits on,
#: ``REPRO_AUDIT=collect`` gathers violations without raising,
#: empty / ``0`` / ``off`` leaves auditing disabled.
AUDIT_ENV = "REPRO_AUDIT"

_AUDIT_OFF_VALUES = ("", "0", "off", "false", "no")
_AUDIT_COLLECT_VALUES = ("collect", "report")


@dataclass(frozen=True)
class AuditConfig:
    """Runtime invariant audit layer (``repro.sim.invariants``).

    Opt-in: the default is fully disabled and an audits-off run is
    bit-identical to a run of a build without the audit layer — checkers
    only observe (counters, registered hooks), never schedule events.
    ``fail_fast=True`` raises :class:`~repro.errors.AuditError` at the
    first violation; otherwise violations are collected (up to
    ``max_violations``) and reported in the run outcome.
    """

    enabled: bool = False
    fail_fast: bool = True
    # per-checker switches
    request_conservation: bool = True
    link_conservation: bool = True
    mact_consistency: bool = True
    thread_fsm: bool = True
    trace_tiling: bool = True
    max_violations: int = 100

    def validate(self) -> None:
        if self.max_violations <= 0:
            raise ConfigError("max_violations must be positive")

    @classmethod
    def from_env(cls, value: "str | None" = None) -> "AuditConfig":
        """Build from ``$REPRO_AUDIT`` (or an explicit ``value``)."""
        import os

        if value is None:
            value = os.environ.get(AUDIT_ENV, "")
        text = value.strip().lower()
        if text in _AUDIT_OFF_VALUES:
            return cls(enabled=False)
        if text in _AUDIT_COLLECT_VALUES:
            return cls(enabled=True, fail_fast=False)
        return cls(enabled=True, fail_fast=True)


@dataclass(frozen=True)
class TCGConfig:
    """Thread Core Group parameters (paper §3.1).

    A TCG is a 4-wide-issue, 8-stage, in-order superscalar core hosting 8
    hardware threads of which 4 are *running* at any time; the other 4 are
    their in-pair friends.
    """

    issue_width: int = 4
    pipeline_depth: int = 8
    hw_threads: int = 8
    running_threads: int = 4
    icache_bytes: int = 16 * KB
    dcache_bytes: int = 16 * KB
    spm_bytes: int = 128 * KB
    cache_line_bytes: int = 64
    cache_ways: int = 4
    # Latencies in core cycles.
    dcache_hit_latency: int = 2
    spm_hit_latency: int = 1
    thread_switch_latency: int = 1      # in-pair handoff is a HW mux: 1 cycle
    # SPM control-register window (paper §3.5.1: top 256 bytes).
    spm_control_bytes: int = 256

    def validate(self) -> None:
        if self.running_threads > self.hw_threads:
            raise ConfigError("running_threads cannot exceed hw_threads")
        if self.hw_threads % 2:
            raise ConfigError("in-pair threading requires an even thread count")
        if self.spm_control_bytes >= self.spm_bytes:
            raise ConfigError("SPM control window larger than the SPM")


@dataclass(frozen=True)
class RingConfig:
    """Hierarchical ring NoC parameters (paper §3.2, §3.3).

    The main ring carries 8 logical 64-bit datapaths (512 bits); each
    sub-ring carries 4 (256 bits).  ``slice_bytes`` selects the
    high-density slicing granularity; 16 bytes per direction behaves like a
    conventional un-sliced link (it equals a whole direction's width on the
    sub-ring).
    """

    datapath_bits: int = 64
    main_ring_datapaths: int = 8        # 3 fixed/dir + 2 bidirectional
    sub_ring_datapaths: int = 4         # 1 fixed/dir + 2 bidirectional
    main_ring_fixed_per_dir: int = 3
    sub_ring_fixed_per_dir: int = 1
    slice_bytes: int = 2                # high-density slice granularity
    hop_latency: int = 1                # cycles per router hop
    router_latency: int = 1             # cycles through a router pipeline
    bridge_latency: int = 2             # sub-ring <-> main-ring transfer
    buffer_flits: int = 8               # per-input buffering
    greedy_allocation: bool = True      # paper's greedy slice allocator
    direct_datapath: bool = True        # star-shaped fast path (paper §3.5.2)
    direct_datapath_latency: int = 4    # cycles core->memory on the star path

    @property
    def main_ring_bits(self) -> int:
        return self.datapath_bits * self.main_ring_datapaths

    @property
    def sub_ring_bits(self) -> int:
        return self.datapath_bits * self.sub_ring_datapaths

    @property
    def sub_ring_bytes_per_dir(self) -> int:
        """Bytes per cycle one sub-ring direction can move (fixed+bidi/2)."""
        return self.sub_ring_bits // 8 // 2

    def validate(self) -> None:
        if self.slice_bytes not in (1, 2, 4, 8, 16):
            raise ConfigError("slice_bytes must be one of 1,2,4,8,16")
        if self.main_ring_fixed_per_dir * 2 > self.main_ring_datapaths:
            raise ConfigError("main ring fixed datapaths exceed total")
        if self.sub_ring_fixed_per_dir * 2 > self.sub_ring_datapaths:
            raise ConfigError("sub ring fixed datapaths exceed total")


@dataclass(frozen=True)
class MACTConfig:
    """Memory Access Collection Table parameters (paper §3.4).

    One MACT per sub-ring.  A line covers ``line_span_bytes`` of address
    space via a byte bitmap; a line flushes when its bitmap is full or its
    ``threshold_cycles`` deadline expires (paper sweeps 8..64, settles on
    16).  ``enabled=False`` gives the conventional send-as-you-go baseline.
    """

    enabled: bool = True
    lines: int = 64
    line_span_bytes: int = 64
    threshold_cycles: int = 16
    bypass_priority: bool = True        # real-time requests skip the table

    def validate(self) -> None:
        if self.lines <= 0:
            raise ConfigError("MACT needs at least one line")
        if self.threshold_cycles <= 0:
            raise ConfigError("MACT threshold must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory system (paper §3.5.3): 4x 128-bit DDR4-2133 channels."""

    channels: int = 4
    channel_bytes: int = 16 * GB
    channel_width_bits: int = 128
    data_rate_mts: int = 2133           # mega-transfers/s
    banks_per_channel: int = 16
    row_hit_latency: int = 22           # core cycles @1.5GHz (~15 ns CAS)
    row_miss_latency: int = 68          # precharge+activate+CAS
    # Bank occupancy per access (tCCD / tRC budgets): much shorter than
    # the data-return latency — banks pipeline back-to-back requests.
    row_hit_occupancy: int = 6
    row_miss_occupancy: int = 45
    controller_queue: int = 64

    @property
    def total_bytes(self) -> int:
        return self.channels * self.channel_bytes

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s (paper: 136.5 GB/s)."""
        per_channel = self.data_rate_mts * 1e6 * self.channel_width_bits / 8
        return self.channels * per_channel / 1e9

    def validate(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("memory needs >=1 channel and bank")


@dataclass(frozen=True)
class SchedulerConfig:
    """Laxity-aware task scheduler (paper §3.7)."""

    policy: str = "laxity"              # any repro.sched.list_policies() name
    dispatch_latency: int = 8           # cycles to dispatch a task to a thread
    chain_table_entries: int = 256      # per sub-ring RAM chain-table slots

    def validate(self) -> None:
        # lazy import: repro.sched imports this module at load time, so the
        # registry can only be consulted from inside the call
        from .sched.policy import list_policies

        known = list_policies()
        if self.policy not in known:
            raise ConfigError(
                f"unknown scheduler policy {self.policy!r}; "
                f"registered: {', '.join(known)}")


@dataclass(frozen=True)
class SmarCoConfig:
    """Full-chip configuration (paper Fig 4 / Table 2).

    256 cores = 16 sub-rings x 16 cores, 1.5 GHz, 2048 hardware threads.
    """

    sub_rings: int = 16
    cores_per_sub_ring: int = 16
    frequency_ghz: float = 1.5
    tcg: TCGConfig = field(default_factory=TCGConfig)
    ring: RingConfig = field(default_factory=RingConfig)
    mact: MACTConfig = field(default_factory=MACTConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    technology_nm: int = 32             # Table 1 evaluates at 32nm
    #: fraction of core requests that carry a HopTrace (0.0 = tracing off;
    #: sampled deterministically, see repro.mem.request.TraceSampler)
    trace_sample_rate: float = 0.0

    @property
    def total_cores(self) -> int:
        return self.sub_rings * self.cores_per_sub_ring

    @property
    def total_hw_threads(self) -> int:
        return self.total_cores * self.tcg.hw_threads

    @property
    def total_spm_bytes(self) -> int:
        return self.total_cores * self.tcg.spm_bytes

    @property
    def total_icache_bytes(self) -> int:
        return self.total_cores * self.tcg.icache_bytes

    @property
    def total_dcache_bytes(self) -> int:
        return self.total_cores * self.tcg.dcache_bytes

    def validate(self) -> None:
        if self.sub_rings <= 0 or self.cores_per_sub_ring <= 0:
            raise ConfigError("need >=1 sub-ring and >=1 core per sub-ring")
        if self.memory.channels > max(self.sub_rings, 1):
            raise ConfigError(
                "memory channels must not exceed main-ring stops (sub_rings)"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigError("trace_sample_rate must be in [0, 1]")
        self.tcg.validate()
        self.ring.validate()
        self.mact.validate()
        self.memory.validate()
        self.scheduler.validate()


@dataclass(frozen=True)
class XeonConfig:
    """Intel Xeon E7-8890V4-like baseline (paper Table 2).

    24 OoO cores, 2-way SMT (48 threads), 2.2 GHz base, three cache levels,
    85 GB/s memory bandwidth.  OS-level thread oversubscription costs model
    the paper's Fig 23 observation that performance collapses past ~64
    software threads.
    """

    cores: int = 24
    smt_per_core: int = 2
    frequency_ghz: float = 2.2
    turbo_ghz: float = 3.4
    issue_width: int = 4
    rob_entries: int = 224
    l1i_bytes: int = 32 * KB
    l1d_bytes: int = 32 * KB
    l2_bytes: int = 256 * KB
    llc_bytes: int = 60 * MB
    cache_line_bytes: int = 64
    l1_hit_latency: int = 4
    l2_hit_latency: int = 12
    llc_hit_latency: int = 42
    dram_latency: int = 180             # core cycles
    memory_bandwidth_gbps: float = 85.0
    tdp_watts: float = 165.0
    context_switch_cycles: int = 3000   # OS context switch cost
    thread_create_cycles: int = 18000   # pthread_create cost
    technology_nm: int = 14

    @property
    def total_hw_threads(self) -> int:
        return self.cores * self.smt_per_core

    def validate(self) -> None:
        if self.cores <= 0 or self.smt_per_core <= 0:
            raise ConfigError("need >=1 core and >=1 SMT thread")


def smarco_default() -> SmarCoConfig:
    """The paper's full 256-core chip."""
    cfg = SmarCoConfig()
    cfg.validate()
    return cfg


def smarco_scaled(sub_rings: int = 4, cores_per_sub_ring: int = 16) -> SmarCoConfig:
    """A scaled-down chip for fast tests/benches (same per-core geometry).

    Memory channels scale down with the sub-ring count so the
    bandwidth-per-core ratio of the full chip is preserved.
    """
    channels = max(1, min(4, sub_rings))
    cfg = SmarCoConfig(
        sub_rings=sub_rings,
        cores_per_sub_ring=cores_per_sub_ring,
        memory=MemoryConfig(channels=channels),
    )
    cfg.validate()
    return cfg


def xeon_default() -> XeonConfig:
    cfg = XeonConfig()
    cfg.validate()
    return cfg
