"""Exception hierarchy for the SmarCo reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. scheduling in
    the past or running a finished simulation)."""


class ShardingError(SimulationError):
    """A sharded (multi-domain) run would violate conservative time-window
    synchronization: quantum larger than a boundary latency, a zero-latency
    wire crossing domains, or a message delivered into a domain's past."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of the supported range."""


class IsaError(ReproError):
    """Base class for ISA-level failures."""


class AssemblerError(IsaError):
    """The assembler rejected a program (bad mnemonic, operand, or label)."""


class MachineError(IsaError):
    """The functional machine hit an illegal state (bad register, trap)."""


class MemoryError_(ReproError):
    """An access fell outside a modelled memory region or violated
    an alignment/ownership rule.  Named with a trailing underscore to avoid
    shadowing the builtin :class:`MemoryError`."""


class MemoryModelError(MemoryError_):
    """A memory-model lifecycle invariant was violated: a request was
    completed twice, or a hop trace was stamped out of time order."""


class NocError(ReproError):
    """A packet could not be routed or a link/router invariant broke."""


class WiringError(ReproError):
    """The component hierarchy or its port wiring is malformed (duplicate
    child names, unconnected required ports, type-incompatible wires, or a
    lifecycle method called out of phase)."""


class AuditError(ReproError):
    """A runtime invariant checker (``repro.sim.invariants``) detected a
    model-consistency violation while auditing a simulation."""


class SchedulerError(ReproError):
    """A task-scheduler invariant was violated (e.g. duplicate task id)."""


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""


class AnalysisError(ReproError):
    """An analysis helper was fed an impossible input (e.g. a quantile
    of an empty sample, or a quantile outside (0, 1])."""


class TrafficError(ReproError):
    """The open-loop traffic layer was misconfigured (unknown arrival
    process or balancer policy, non-positive rate, empty cluster)."""


class CheckpointError(ReproError):
    """A simulation snapshot could not be captured or restored (live
    state the codec cannot serialise, or a corrupt container)."""


class CheckpointSchemaError(CheckpointError):
    """The checkpoint's component-tree schema does not match the system
    rebuilt from the request — the saved blob describes a different
    structure and restoring it would silently corrupt state."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by a different format version or a
    different code digest than the restoring process."""
