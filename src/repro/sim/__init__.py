"""Discrete-event simulation kernel: engine, components, stats, RNG, tracing."""

from .checkpoint import (FORMAT_VERSION, Checkpoint, SnapshotScope,
                         load_checkpoint, save_checkpoint)
from .component import Component, InputPort, OutputPort, Port, Wire
from .engine import EventSignal, Process, Simulator
from .invariants import Auditor, Violation
from .snapshot import register_snapshot_class, snapshotable
from .rng import RngTree, derive_seed
from .stats import (Accumulator, Counter, Histogram, StatsRegistry,
                    StatsScope, TimeWeighted, nest_flat_stats)
from .trace import TraceBuffer, TraceRecord

__all__ = [
    "Simulator",
    "EventSignal",
    "Process",
    "Component",
    "Port",
    "InputPort",
    "OutputPort",
    "Wire",
    "RngTree",
    "derive_seed",
    "Counter",
    "Accumulator",
    "Histogram",
    "TimeWeighted",
    "StatsRegistry",
    "StatsScope",
    "nest_flat_stats",
    "TraceBuffer",
    "TraceRecord",
    "Auditor",
    "Violation",
    "Checkpoint",
    "SnapshotScope",
    "FORMAT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "register_snapshot_class",
    "snapshotable",
]
