"""Discrete-event simulation kernel: engine, stats, RNG streams, tracing."""

from .engine import EventSignal, Process, Simulator
from .rng import RngTree, derive_seed
from .stats import Accumulator, Counter, Histogram, StatsRegistry, TimeWeighted
from .trace import TraceBuffer, TraceRecord

__all__ = [
    "Simulator",
    "EventSignal",
    "Process",
    "RngTree",
    "derive_seed",
    "Counter",
    "Accumulator",
    "Histogram",
    "TimeWeighted",
    "StatsRegistry",
    "TraceBuffer",
    "TraceRecord",
]
