"""Discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap event queue, a cycle clock,
and two programming styles on top of it:

* **callbacks** — ``sim.schedule(delay, fn, *args)`` runs ``fn`` at
  ``now + delay``;
* **processes** — generator functions that ``yield`` a delay (int/float) to
  sleep, or an :class:`EventSignal` to block until another component fires
  it.  Processes are resumed by the kernel, which keeps component code
  (memory controllers, DMA engines, routers) readable.

Time is measured in *cycles* of the component's clock domain; the library
runs everything in a single 1.5 GHz domain, matching the paper, so a cycle
is globally meaningful.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["Simulator", "EventSignal", "Process", "Completion",
           "active_sim"]

# -- active-engine context ---------------------------------------------------
#
# Sharded execution (repro.sim.domain) advances several engines in one
# process.  Helper objects that were built against one engine (signals,
# completions, NoC flights) may be *executed* by another domain's engine;
# what must stay local is the engine that is currently dispatching events.
# The sharded executor publishes it here around every window.  Serial runs
# never set it, so ``active_sim(fallback)`` degenerates to ``fallback``
# and the serial event order is untouched.

_ACTIVE: Optional["Simulator"] = None


def active_sim(fallback: "Simulator") -> "Simulator":
    """The engine currently dispatching events (``fallback`` if none)."""
    return _ACTIVE if _ACTIVE is not None else fallback


def _swap_active(sim: Optional["Simulator"]) -> Optional["Simulator"]:
    """Install ``sim`` as the dispatching engine; returns the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = sim
    return prev


class EventSignal:
    """A one-to-many wakeup primitive.

    Processes block on a signal by ``yield``-ing it; callbacks subscribe
    with :meth:`wait`.  :meth:`fire` wakes every current waiter exactly once
    (waiters registered after the fire wait for the next one).  A signal can
    carry a payload, delivered to resumed processes as the value of the
    ``yield`` expression.
    """

    __slots__ = ("sim", "name", "_waiters", "fire_count", "last_payload")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(payload)`` to run on the next :meth:`fire`."""
        self._waiters.append(callback)

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters at the current simulation time.

        Returns the number of waiters woken.
        """
        self.fire_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        # Waiters resume on the engine that fired the signal: in a sharded
        # run the firing event's domain is where the wakeup belongs (the
        # signal object may have been created under another engine).
        sim = _ACTIVE if _ACTIVE is not None else self.sim
        for cb in waiters:
            sim.schedule(0, cb, payload)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventSignal({self.name!r}, waiters={len(self._waiters)})"


class Completion:
    """A serialisable result handle with the :class:`Process` wait surface.

    Callback-FSM components (the NoC flights, DMA transfers, chip batch
    procs) return one of these from their ``send``-style entry points so
    callers can block on it exactly as they would on a spawned process:
    ``finished`` / ``result`` / ``done_signal`` have identical semantics,
    and a generator process may ``yield`` a Completion directly.  Unlike
    a Process it holds no generator frame, so it snapshots cleanly.
    """

    __slots__ = ("sim", "name", "finished", "result", "_done_signal")

    def __init__(self, sim: "Simulator", name: str = "completion") -> None:
        self.sim = sim
        self.name = name
        self.finished = False
        self.result: Any = None
        self._done_signal: Optional[EventSignal] = None

    @property
    def done_signal(self) -> EventSignal:
        """Signal fired (with the result) when this completion finishes."""
        if self._done_signal is None:
            self._done_signal = EventSignal(self.sim, f"{self.name}.done")
        return self._done_signal

    def finish(self, result: Any = None) -> None:
        """Mark finished and wake every waiter (exactly once)."""
        if self.finished:
            raise SimulationError(f"completion {self.name!r} finished twice")
        self.finished = True
        self.result = result
        if self._done_signal is not None:
            self._done_signal.fire(result)

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(result)`` when finished, mirroring the engine's
        process-wait protocol: already-finished completions schedule a
        zero-delay wakeup (one sequence number), pending ones register on
        the done signal (no sequence number until the fire)."""
        if self.finished:
            sim = _ACTIVE if _ACTIVE is not None else self.sim
            sim.schedule(0, callback, self.result)
        else:
            self.done_signal.wait(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "pending"
        return f"Completion({self.name!r}, {state})"


class Process:
    """A running generator-based simulation process.

    Created via :meth:`Simulator.spawn`.  The wrapped generator may yield:

    * a non-negative number — sleep that many cycles;
    * an :class:`EventSignal` — block until it fires (the fire payload
      becomes the value of the yield expression);
    * another :class:`Process` — block until that process finishes.
    """

    __slots__ = ("sim", "gen", "name", "finished", "result", "_done_signal")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._done_signal: Optional[EventSignal] = None

    @property
    def done_signal(self) -> EventSignal:
        """Signal fired (with the process result) when this process ends."""
        if self._done_signal is None:
            self._done_signal = EventSignal(self.sim, f"{self.name}.done")
        return self._done_signal

    def _step(self, send_value: Any = None) -> None:
        if self.finished:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self._done_signal is not None:
                self._done_signal.fire(self.result)
            return
        if isinstance(yielded, EventSignal):
            yielded.wait(self._step)
        elif isinstance(yielded, (Process, Completion)):
            if yielded.finished:
                # already done: resume immediately with its result instead
                # of waiting on a done_signal that will never fire again
                self.sim.schedule(0, self._step, yielded.result)
            else:
                yielded.done_signal.wait(self._step)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.sim.schedule(yielded, self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; yield a delay, EventSignal, or Process"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The discrete-event kernel: clock + ordered event queue.

    Events scheduled for the same cycle run in FIFO order of scheduling,
    which makes runs deterministic for a fixed seed.

    Internally there are two event stores with one logical ordering (by
    ``(time, scheduling sequence)``): a binary heap for future events and
    a FIFO *due lane* for zero-delay events.  About half of all schedules
    in a chip run are zero-delay (signal fires, process wakeups, port
    sends), and the due lane turns their O(log n) heap sift into a list
    append/index.  The global FIFO tie-break is preserved exactly: every
    event carries its scheduling sequence number, and a due entry only
    runs once no heap event at the current time with a smaller sequence
    remains.
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "events_executed",
                 "_due", "_due_head", "_signals")

    #: consumed due-lane prefix is garbage-collected past this length
    _DUE_COMPACT = 8192

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        #: zero-delay events due at the current time: (seq, fn, args)
        self._due: List[Tuple[int, Callable, tuple]] = []
        self._due_head = 0      # consumed prefix of _due
        #: signals created via :meth:`signal`, keyed by a unique name —
        #: the anchor table checkpoints resolve signal references against
        self._signals: dict = {}

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles (0 allowed)."""
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay} cycles in the past")
            self._seq = seq = self._seq + 1
            heappush(self._queue, (self.now + delay, seq, fn, args))
        else:
            self._seq = seq = self._seq + 1
            self._due.append((seq, fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute time ``when`` (must be >= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        self._seq = seq = self._seq + 1
        heappush(self._queue, (when, seq, fn, args))

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a generator process immediately (first step at ``now``)."""
        proc = Process(self, gen, name)
        self.schedule(0, proc._step, None)
        return proc

    def signal(self, name: str = "") -> EventSignal:
        """Create a new :class:`EventSignal` bound to this simulator.

        The signal is registered under a unique key (the name, suffixed
        on collision) so checkpoints can reference it by identity;
        creation order is deterministic, so the keys are stable across
        identically-built systems.
        """
        sig = EventSignal(self, name)
        key = name
        n = 1
        while key in self._signals:
            key = f"{name}#{n}"
            n += 1
        self._signals[key] = sig
        return sig

    def signals(self) -> dict:
        """The registered signals, keyed by their unique registry name."""
        return dict(self._signals)

    # -- snapshot protocol ---------------------------------------------------

    def state_dict(self) -> dict:
        """The kernel's live state, with raw callables in the queues.

        The checkpoint codec encodes the callables as descriptors; this
        method only gathers.  Signal waiter lists are included so blocked
        callbacks survive the round-trip.
        """
        if self._running:
            raise SimulationError("cannot snapshot while run() is active")
        return {
            "now": self.now,
            "seq": self._seq,
            "events_executed": self.events_executed,
            "queue": list(self._queue),
            "due": list(self._due[self._due_head:]),
            "signals": {key: {"waiters": list(sig._waiters),
                              "fire_count": sig.fire_count,
                              "last_payload": sig.last_payload}
                        for key, sig in self._signals.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (queues replaced verbatim).

        Restoring the heap list as-is preserves pop order exactly —
        heapq ordering is a function of the entries alone.
        """
        if self._running:
            raise SimulationError("cannot restore while run() is active")
        self.now = state["now"]
        self._seq = state["seq"]
        self.events_executed = state["events_executed"]
        self._queue = [tuple(entry) for entry in state["queue"]]
        self._due = [tuple(entry) for entry in state["due"]]
        self._due_head = 0
        for key, sig_state in state["signals"].items():
            sig = self._signals.get(key)
            if sig is None:
                raise SimulationError(
                    f"checkpoint names unknown signal {key!r}")
            sig._waiters = list(sig_state["waiters"])
            sig.fire_count = sig_state["fire_count"]
            sig.last_payload = sig_state["last_payload"]

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock is then advanced *to* ``until``), or after
        ``max_events`` events.  Returns the number of events executed by
        this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        # Same-time events run in FIFO (_seq) order across both stores, so
        # the fast path is observably identical to the general one.
        # Scheduling into the past is impossible, which makes the
        # unconditional clock store in the fast path safe.
        # ``events_executed`` is folded in once per call; ``step()`` keeps
        # per-event accounting.
        queue = self._queue
        due = self._due
        due_head = self._due_head
        pop = heappop
        compact = self._DUE_COMPACT
        try:
            if until is None and max_events is None:
                # Hot path: drain everything (the overwhelmingly common
                # call shape).  The executed count falls out of the seq
                # counter: everything pending or scheduled gets run.
                seq0 = self._seq
                pending0 = len(queue) + len(due) - due_head
                try:
                    while True:
                        if due_head < len(due):
                            if queue:
                                head = queue[0]
                                # a heap event at the current time that was
                                # scheduled before the due entry goes first
                                if (head[0] == self.now
                                        and head[1] < due[due_head][0]):
                                    pop(queue)
                                    head[2](*head[3])
                                    continue
                            _sq, fn, args = due[due_head]
                            due_head += 1
                            if due_head >= compact:
                                del due[:due_head]
                                due_head = 0
                            fn(*args)
                            continue
                        if due_head:
                            del due[:due_head]
                            due_head = 0
                        if not queue:
                            break
                        when, _sq, fn, args = pop(queue)
                        self.now = when
                        fn(*args)
                finally:
                    executed = (pending0 + (self._seq - seq0)
                                - (len(queue) + len(due) - due_head))
            else:
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    if (due_head < len(due)
                            and (until is None or self.now <= until)):
                        if queue:
                            head = queue[0]
                            if (head[0] == self.now
                                    and head[1] < due[due_head][0]):
                                pop(queue)
                                head[2](*head[3])
                                executed += 1
                                continue
                        _sq, fn, args = due[due_head]
                        due_head += 1
                        fn(*args)
                        executed += 1
                        continue
                    if not queue:
                        break
                    when = queue[0][0]
                    if until is not None and when > until:
                        break
                    _w, _sq, fn, args = pop(queue)
                    if when > self.now:
                        self.now = when
                    fn(*args)
                    executed += 1
            if until is not None and self.now < until and not self._interrupted():
                self.now = until
        finally:
            if due_head:
                del due[:due_head]
            self._due_head = 0
            self.events_executed += executed
            self._running = False
        return executed

    def _step_due(self) -> bool:
        """Run the head of the due lane (helper for :meth:`step`)."""
        due = self._due
        head = self._due_head
        _sq, fn, args = due[head]
        self._due_head = head + 1
        if self._due_head == len(due):
            del due[:]
            self._due_head = 0
        fn(*args)
        self.events_executed += 1
        return True

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty."""
        queue = self._queue
        if self._due_head < len(self._due):
            if queue:
                head = queue[0]
                if (head[0] == self.now
                        and head[1] < self._due[self._due_head][0]):
                    heappop(queue)
                    head[2](*head[3])
                    self.events_executed += 1
                    return True
            return self._step_due()
        if not queue:
            return False
        when, _seq, fn, args = heappop(queue)
        if when > self.now:
            self.now = when
        fn(*args)
        self.events_executed += 1
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        if self._due_head < len(self._due):
            return self.now
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._queue) + len(self._due) - self._due_head

    def _interrupted(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending()})"


# Floating engine objects that may be reachable from checkpointed state:
# unregistered EventSignals (completion done-signals) and Completions
# travel by value; anchored signals take the anchor path first.  Process
# is deliberately NOT registered — a generator frame reachable from a
# snapshot is a hard error, surfaced by the codec.
from .snapshot import register_snapshot_class as _register_snapshot_class

_register_snapshot_class(EventSignal)
_register_snapshot_class(Completion)
