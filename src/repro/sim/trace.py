"""Lightweight event tracing.

A :class:`TraceBuffer` records (time, source, event, payload) tuples into a
bounded deque.  Tracing is off by default; tests and examples enable it to
assert on event orderings (e.g. the in-pair thread handoff sequence).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, NamedTuple, Optional

__all__ = ["TraceRecord", "TraceBuffer"]


class TraceRecord(NamedTuple):
    time: float
    source: str
    event: str
    payload: Any


class TraceBuffer:
    """Bounded in-memory trace sink."""

    def __init__(self, capacity: int = 100_000, enabled: bool = False) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, time: float, source: str, event: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(TraceRecord(time, source, event, payload))

    def records(
        self,
        source: Optional[str] = None,
        event: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Records matching the given source/event filters (None = any)."""
        out = []
        for rec in self._records:
            if source is not None and rec.source != source:
                continue
            if event is not None and rec.event != event:
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def state_dict(self) -> dict:
        return {"records": [tuple(rec) for rec in self._records],
                "dropped": self.dropped, "enabled": self.enabled}

    def load_state(self, state: dict) -> None:
        self._records.clear()
        self._records.extend(TraceRecord(*rec) for rec in state["records"])
        self.dropped = state["dropped"]
        self.enabled = state["enabled"]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)
