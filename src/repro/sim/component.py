"""Hierarchical component model: tree, typed ports, lifecycle, scoped stats.

The paper's chip is an explicit hierarchy — chip → sub-ring → TCG core —
with per-sub-ring MACT/DMA/bridge resources (Fig 4).  This module makes
that hierarchy a first-class object:

* :class:`Component` — a node in a parent/child tree with a scoped path
  name (``chip.subring3.mact``).  Children inherit the simulator, the
  :class:`~repro.sim.stats.StatsRegistry` and the trace buffer from their
  parent, and every stat or trace record a component emits carries its
  hierarchical path.
* :class:`Port` / :class:`Wire` — typed, declared connection points
  replacing ad-hoc callables.  An :class:`OutputPort` connects to an
  :class:`InputPort` (fan-in and fan-out both allowed); delivery is a
  synchronous call, so wiring through ports is timing-neutral — any
  latency is modelled by the components themselves (NoC, links, DRAM).
* an explicit lifecycle — **build** (constructors create the tree and
  declare ports) → **connect** (:meth:`Component.on_connect` hooks wire
  ports) → **finalize** (wiring validated, :meth:`Component.on_finalize`
  hooks run) → **ready**; :meth:`Component.reset` re-arms components for
  another run.

The tree is introspectable: :meth:`Component.tree` renders it,
:meth:`Component.find` matches glob patterns (``chip.find("subring*/mact")``),
and :meth:`Component.tree_dict` produces the JSON form the experiment
layer embeds in per-run telemetry.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import (Any, Callable, Dict, Iterator, List, Optional, Tuple,
                    TYPE_CHECKING)

from ..errors import WiringError
from .stats import StatsRegistry, StatsScope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator
    from .trace import TraceBuffer

__all__ = ["Component", "Port", "InputPort", "OutputPort", "Wire"]

#: Lifecycle phases, in order.
PHASES = ("build", "connect", "finalize", "ready")


class Port:
    """A declared connection point on a component.

    ``payload_type`` is the message class the port carries; it is checked
    at connect time (output and input must agree) and at delivery time.
    """

    __slots__ = ("owner", "name", "payload_type", "doc", "wires")

    def __init__(self, owner: "Component", name: str,
                 payload_type: type = object, doc: str = "") -> None:
        self.owner = owner
        self.name = name
        self.payload_type = payload_type
        self.doc = doc
        self.wires: List["Wire"] = []

    @property
    def path(self) -> str:
        return f"{self.owner.path}.{self.name}"

    @property
    def connected(self) -> bool:
        return bool(self.wires)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.path}, "
                f"{self.payload_type.__name__}, wires={len(self.wires)})")


class InputPort(Port):
    """Receives payloads; dispatches them to the bound handler."""

    __slots__ = ("_handler", "received")

    def __init__(self, owner: "Component", name: str,
                 payload_type: type = object,
                 handler: Optional[Callable[[Any], Any]] = None,
                 doc: str = "") -> None:
        super().__init__(owner, name, payload_type, doc)
        self._handler = handler
        self.received = 0

    def bind(self, handler: Callable[[Any], Any]) -> "InputPort":
        """Attach the receive handler (once; constructors may pre-bind)."""
        if self._handler is not None:
            raise WiringError(f"input port {self.path} already bound")
        self._handler = handler
        return self

    def recv(self, payload: Any) -> Any:
        """Deliver one payload (called by wires; also useful in tests)."""
        if self._handler is None:
            raise WiringError(f"input port {self.path} has no handler")
        if not isinstance(payload, self.payload_type):
            raise WiringError(
                f"input port {self.path} expects {self.payload_type.__name__},"
                f" got {type(payload).__name__}"
            )
        self.received += 1
        return self._handler(payload)


class OutputPort(Port):
    """Sends payloads down its connected wires.

    ``optional=True`` marks ports that may legitimately stay unconnected
    (finalize skips them); sending on an unconnected port always raises.
    """

    __slots__ = ("optional", "sent")

    def __init__(self, owner: "Component", name: str,
                 payload_type: type = object, optional: bool = False,
                 doc: str = "") -> None:
        super().__init__(owner, name, payload_type, doc)
        self.optional = optional
        self.sent = 0

    def connect(self, dst: "InputPort") -> "Wire":
        """Wire this output to ``dst``; returns the new :class:`Wire`."""
        if not isinstance(dst, InputPort):
            raise WiringError(
                f"{self.path}: can only connect to an InputPort, "
                f"got {type(dst).__name__}"
            )
        if self.owner.phase not in ("build", "connect"):
            raise WiringError(
                f"{self.path}: cannot connect during phase {self.owner.phase!r}"
            )
        if not (issubclass(self.payload_type, dst.payload_type)
                or issubclass(dst.payload_type, self.payload_type)):
            raise WiringError(
                f"type mismatch wiring {self.path} "
                f"({self.payload_type.__name__}) -> {dst.path} "
                f"({dst.payload_type.__name__})"
            )
        wire = Wire(self, dst)
        self.wires.append(wire)
        dst.wires.append(wire)
        return wire

    def send(self, payload: Any) -> Any:
        """Deliver a payload to every connected wire (synchronously)."""
        if not self.wires:
            raise WiringError(f"send on unconnected output port {self.path}")
        if not isinstance(payload, self.payload_type):
            raise WiringError(
                f"output port {self.path} carries {self.payload_type.__name__},"
                f" got {type(payload).__name__}"
            )
        self.sent += 1
        if len(self.wires) == 1:
            return self.wires[0].deliver(payload)
        result = None
        for wire in self.wires:
            result = wire.deliver(payload)
        return result


class Wire:
    """One directed connection between an output and an input port."""

    __slots__ = ("src", "dst", "messages")

    def __init__(self, src: OutputPort, dst: InputPort) -> None:
        self.src = src
        self.dst = dst
        self.messages = 0

    def deliver(self, payload: Any) -> Any:
        self.messages += 1
        return self.dst.recv(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Wire({self.src.path} -> {self.dst.path}, n={self.messages})"


class Component:
    """A node in the chip's component tree.

    A component created with a ``parent`` is adopted into the parent's
    tree and inherits its simulator, stats registry and trace buffer; a
    component created without one is a *root* (a whole chip, or a unit
    under test) and owns a fresh registry unless given one.  Either way,
    ``self.stats`` is a :class:`~repro.sim.stats.StatsScope` that
    registers stats under the component's hierarchical path, and
    :meth:`emit_trace` stamps trace records with that same path.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["Component"] = None,
        sim: Optional["Simulator"] = None,
        registry: Optional[StatsRegistry] = None,
        trace: Optional["TraceBuffer"] = None,
    ) -> None:
        if not name or "." in name or "/" in name:
            raise WiringError(f"bad component name {name!r}")
        self.name = name
        self.parent = parent
        self._children: Dict[str, "Component"] = {}
        self._ports: Dict[str, Port] = {}
        self._phase = "build"
        if parent is not None:
            self.path = f"{parent.path}.{name}"
            self.sim = sim if sim is not None else parent.sim
            self.registry = registry if registry is not None else parent.registry
            self.trace = trace if trace is not None else parent.trace
            parent._adopt(self)
        else:
            self.path = name
            self.sim = sim
            self.registry = registry if registry is not None else StatsRegistry()
            self.trace = trace
        self.stats = StatsScope(self.registry, self.path)

    # -- tree structure ------------------------------------------------------

    def _adopt(self, child: "Component") -> None:
        if child.name in self._children:
            raise WiringError(
                f"{self.path}: duplicate child name {child.name!r}"
            )
        if self._phase != "build":
            raise WiringError(
                f"{self.path}: cannot add children during phase {self._phase!r}"
            )
        self._children[child.name] = child

    @property
    def children(self) -> Tuple["Component", ...]:
        return tuple(self._children.values())

    def child(self, name: str) -> "Component":
        return self._children[name]

    @property
    def root(self) -> "Component":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def walk(self) -> Iterator["Component"]:
        """Pre-order traversal of this subtree (self first)."""
        yield self
        for child in self._children.values():
            yield from child.walk()

    def find(self, pattern: str) -> List["Component"]:
        """Descendants whose path below this component matches ``pattern``.

        Patterns are glob-style per path segment; ``/`` and ``.`` are both
        accepted as separators: ``chip.find("subring*/mact")`` returns
        every sub-ring's MACT.
        """
        want = pattern.replace("/", ".").split(".")
        out: List["Component"] = []
        skip = len(self.path) + 1
        for comp in self.walk():
            if comp is self:
                continue
            have = comp.path[skip:].split(".")
            if len(have) == len(want) and all(
                fnmatchcase(seg, pat) for seg, pat in zip(have, want)
            ):
                out.append(comp)
        return out

    # -- ports ---------------------------------------------------------------

    def in_port(self, name: str, payload_type: type = object,
                handler: Optional[Callable[[Any], Any]] = None,
                doc: str = "") -> InputPort:
        """Declare an input port on this component."""
        port = InputPort(self, name, payload_type, handler=handler, doc=doc)
        self._add_port(port)
        return port

    def out_port(self, name: str, payload_type: type = object,
                 optional: bool = False, doc: str = "") -> OutputPort:
        """Declare an output port on this component."""
        port = OutputPort(self, name, payload_type, optional=optional, doc=doc)
        self._add_port(port)
        return port

    def _add_port(self, port: Port) -> None:
        if port.name in self._ports:
            raise WiringError(f"{self.path}: duplicate port {port.name!r}")
        self._ports[port.name] = port

    @property
    def ports(self) -> Tuple[Port, ...]:
        return tuple(self._ports.values())

    def port(self, name: str) -> Port:
        return self._ports[name]

    # -- lifecycle -----------------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    def elaborate(self) -> "Component":
        """Run the connect → finalize lifecycle over this (root) subtree."""
        if self.parent is not None:
            raise WiringError(f"{self.path}: elaborate() only on the root")
        if self._phase != "build":
            raise WiringError(f"{self.path}: already elaborated")
        comps = list(self.walk())
        for comp in comps:
            comp._phase = "connect"
        for comp in comps:
            comp.on_connect()
        for comp in comps:
            comp._phase = "finalize"
        for comp in comps:
            comp._check_wiring()
            comp.on_finalize()
        for comp in comps:
            comp._phase = "ready"
        return self

    def _check_wiring(self) -> None:
        for port in self._ports.values():
            if (isinstance(port, OutputPort) and not port.optional
                    and not port.connected):
                raise WiringError(
                    f"output port {port.path} left unconnected at finalize"
                )

    def reset(self) -> None:
        """Re-arm this subtree for another run (calls ``on_reset`` hooks)."""
        for comp in self.walk():
            comp.on_reset()

    # hooks — override in subclasses; defaults do nothing
    def on_connect(self) -> None:
        """Wire this component's ports (runs in the connect phase)."""

    def on_finalize(self) -> None:
        """Validate invariants after wiring (runs in the finalize phase)."""

    def on_reset(self) -> None:
        """Clear per-run state so the component can simulate again."""

    def attach_audit(self, auditor: Any) -> None:
        """Hook for the runtime invariant audit layer.

        ``repro.sim.invariants.Auditor.install`` walks the tree and calls
        this on every component; subclasses that expose checkable
        invariants (MACT, TCG cores, the NoC, the chip) override it to
        register themselves.  The default is a no-op so auditing stays
        strictly opt-in.
        """

    # -- snapshot protocol -----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """This component's mutable state (not its children's).

        The base captures port/wire delivery counters; subclasses expose
        their own state through :meth:`extra_state`.  Values may be raw
        Python objects (requests, FSMs, deques) — the checkpoint codec
        handles encoding.  The checkpoint layer calls this per node along
        the :meth:`walk` traversal, keyed by scoped path.
        """
        state: Dict[str, Any] = {
            "ports": {
                name: {
                    "count": (port.received if isinstance(port, InputPort)
                              else port.sent),
                    "wires": [wire.messages for wire in port.wires],
                }
                for name, port in self._ports.items()
            },
        }
        extra = self.extra_state()
        if extra:
            state["extra"] = extra
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output into this component."""
        from ..errors import CheckpointSchemaError

        for name, port_state in state["ports"].items():
            port = self._ports.get(name)
            if port is None:
                raise CheckpointSchemaError(
                    f"{self.path}: checkpoint names unknown port {name!r}")
            if isinstance(port, InputPort):
                port.received = port_state["count"]
            else:
                port.sent = port_state["count"]
            wire_counts = port_state["wires"]
            if len(wire_counts) != len(port.wires):
                raise CheckpointSchemaError(
                    f"{self.path}.{name}: wire count mismatch "
                    f"({len(wire_counts)} saved, {len(port.wires)} built)")
            for wire, messages in zip(port.wires, wire_counts):
                wire.messages = messages
        self.load_extra_state(state.get("extra", {}))

    def extra_state(self) -> Dict[str, Any]:
        """Subclass hook: mutable state beyond the port counters."""
        return {}

    def load_extra_state(self, state: Dict[str, Any]) -> None:
        """Subclass hook: restore :meth:`extra_state` output.

        The default rejects non-empty state so a class that grows
        :meth:`extra_state` without the inverse fails loudly on restore
        instead of silently dropping state.
        """
        if state:
            from ..errors import CheckpointError

            raise CheckpointError(
                f"{self.path} ({type(self).__name__}) saved extra state "
                f"but does not implement load_extra_state")

    def snapshot_anchors(self) -> Dict[str, Any]:
        """Subclass hook: structural non-Component sub-objects this
        component owns (rings, links, DRAM banks), keyed by a stable
        local name.  The checkpoint codec encodes references to anchored
        objects by key instead of by value, so a restored reference
        resolves to the rebuilt system's own object."""
        return {}

    # -- scoped tracing --------------------------------------------------------

    def emit_trace(self, event: str, payload: Any = None) -> None:
        """Record a trace event stamped with this component's path."""
        if self.trace is not None:
            now = self.sim.now if self.sim is not None else 0.0
            self.trace.emit(now, self.path, event, payload)

    # -- introspection ---------------------------------------------------------

    def tree(self) -> str:
        """Human-readable rendering of this subtree."""
        lines: List[str] = [f"{self.name} ({type(self).__name__})"]
        self._render_children(lines, "")
        return "\n".join(lines)

    def _render_children(self, lines: List[str], indent: str) -> None:
        kids = list(self._children.values())
        for i, child in enumerate(kids):
            last = i == len(kids) - 1
            branch = "└── " if last else "├── "
            lines.append(f"{indent}{branch}{child.name} "
                         f"({type(child).__name__})")
            child._render_children(lines, indent + ("    " if last else "│   "))

    def tree_dict(self) -> Dict[str, Any]:
        """JSON-ready description of this subtree (for run telemetry)."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "path": self.path,
            "ports": [
                {
                    "name": port.name,
                    "direction": ("in" if isinstance(port, InputPort)
                                  else "out"),
                    "payload": port.payload_type.__name__,
                    "wires": len(port.wires),
                }
                for port in self._ports.values()
            ],
            "children": [c.tree_dict() for c in self._children.values()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.path!r}, "
                f"children={len(self._children)}, phase={self._phase})")
