"""Shardable time domains with conservative time-window synchronization.

The serial kernel (:class:`repro.sim.engine.Simulator`) advances one
global clock.  This module splits a system into :class:`SimDomain`\\ s —
independent engines that only interact through declared
:class:`BoundaryChannel`\\ s with a known minimum latency — and advances
them in lockstep windows (*quanta*) under a :class:`ShardedSimulator`:

1. compute the global next event time ``T`` across all domains and
   in-flight boundary messages;
2. deliver every pending boundary message due before ``T + Q`` into its
   destination engine;
3. let each domain execute the half-open window ``[T, T + Q)`` in
   isolation;
4. repeat.

**Quantum-safety rule**: this is causally safe iff the quantum ``Q`` is
no larger than the smallest cross-domain channel latency ``L``: a
message emitted by an event at ``t ∈ [T, T+Q)`` is delivered at
``t + L ≥ T + Q``, i.e. never inside the window being executed.
``DomainPlan.validate_quantum`` enforces the rule; zero-latency wires
between distinct domains are rejected (absorb them into one domain —
the chip partition puts every zero-latency consumer in the hub).

**Serial equivalence**: the serial engine breaks same-cycle ties by a
global scheduling sequence number, which — because the clock never runs
backwards — is lexicographically *(scheduling time, arrival order)*.
Domain engines reproduce it with explicit tags ``(scheduling time,
domain index, per-tick counter)``: identical to the serial order
whenever scheduling times differ (the overwhelmingly common case), and
a fixed deterministic tie-break when two domains schedule at the same
cycle.  Boundary messages carry their source-side tag across the
channel, so a delivery competes for its slot exactly as the serially
scheduled event would have.  ``quantum=0`` degenerates to executing the
globally earliest timestamp across all domains, one instant at a time.

Stats that aggregate samples from several domains (Welford accumulators
are sample-order sensitive; replicated counters must not double-count)
go through :class:`AccumulatorTap` / :class:`CounterTap`, which record
time-stamped per-domain streams during the run and replay the merged,
serially-ordered stream into the real stat afterwards.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ShardingError, SimulationError
from . import engine as _engine
from .engine import Simulator, _swap_active

__all__ = [
    "DomainSimulator",
    "SimDomain",
    "BoundaryChannel",
    "DomainPlan",
    "ShardedSimulator",
    "AccumulatorTap",
    "CounterTap",
    "replay_taps",
    "merge_tap_samples",
]

#: canonical-mode event tag: (scheduling time, domain index, per-tick
#: arrival counter); serial-merge engines use plain ints instead
Tag = Tuple[float, int, int]


class DomainSimulator(Simulator):
    """A per-domain engine whose event tags replace the serial seq number.

    Two tagging modes:

    * **serial-merge** (``shared_seq`` given): every domain of the plan
      draws from ONE arrival counter.  Combined with the executor's
      globally-ordered merge execution, event order is *exactly* the
      serial engine's — the bit-for-bit equivalence mode (in-process
      only: a shared counter cannot span processes).
    * **canonical** (default): tags are ``(scheduling time, domain
      index, per-instant counter)`` tuples.  This reproduces the serial
      tie-break whenever scheduling times differ and falls back to a
      fixed domain-index order for same-instant cross-domain ties — a
      deterministic, quantum-invariant order that workers in different
      processes can agree on without communicating.

    Execution happens through :meth:`run_window` / :meth:`run_at` /
    ``step`` under a :class:`ShardedSimulator`, never :meth:`run`.
    """

    __slots__ = ("domain_index", "last_event_time", "_tick_time",
                 "_tick_count", "_shared")

    def __init__(self, domain_index: int = 0,
                 shared_seq: Optional[List[int]] = None) -> None:
        super().__init__()
        self.domain_index = domain_index
        #: time of the most recently executed event (windowed runs only)
        self.last_event_time = 0.0
        self._tick_time = -1.0
        self._tick_count = 0
        self._shared = shared_seq

    # -- tagged scheduling ---------------------------------------------------

    def next_tag(self) -> Any:
        """Allocate the next event tag at the current time."""
        if self._shared is not None:
            n = self._shared[0]
            self._shared[0] = n + 1
            return n
        if self.now != self._tick_time:
            self._tick_time = self.now
            self._tick_count = 0
        self._tick_count += 1
        return (self.now, self.domain_index, self._tick_count)

    def peek_key(self) -> Optional[Tuple[float, Any]]:
        """(time, tag) of the next event, honouring the due-lane merge."""
        if self._due_head < len(self._due):
            due_tag = self._due[self._due_head][0]
            if self._queue:
                head = self._queue[0]
                if head[0] == self.now and head[1] < due_tag:
                    return (self.now, head[1])
            return (self.now, due_tag)
        if self._queue:
            head = self._queue[0]
            return (head[0], head[1])
        return None

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay} cycles in the past")
            heappush(self._queue, (self.now + delay, self.next_tag(),
                                   fn, args))
        else:
            self._due.append((self.next_tag(), fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}")
        heappush(self._queue, (when, self.next_tag(), fn, args))

    def schedule_boundary(self, when: float, tag: Any, fn: Callable,
                          args: tuple) -> None:
        """Insert a cross-domain delivery carrying its source-side tag."""
        if when < self.now:
            raise ShardingError(
                f"boundary message for t={when} arrived in domain "
                f"{self.domain_index}'s past (now={self.now}); the "
                f"quantum exceeds the channel's lookahead")
        heappush(self._queue, (when, tag, fn, args))

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        raise SimulationError(
            "domain engines advance through a ShardedSimulator "
            "(run_window/run_at), not Simulator.run()")

    def run_window(self, edge: float, cap: Optional[float] = None) -> int:
        """Execute every event with ``time < edge`` (and ``<= cap``).

        The window is half-open: an event exactly on the edge belongs to
        the next window.  The clock is left *at the edge* so boundary
        deliveries for the next window never land in this engine's past.
        Returns the number of events executed.
        """
        if self._running:
            raise SimulationError("run_window() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heappop
        compact = self._DUE_COMPACT
        try:
            while True:
                due = self._due
                if self._due_head < len(due):
                    # merge heap events at the current time by tag order
                    if queue:
                        head = queue[0]
                        if (head[0] == self.now
                                and head[1] < due[self._due_head][0]):
                            pop(queue)
                            self.last_event_time = self.now
                            executed += 1
                            head[2](*head[3])
                            continue
                    _tag, fn, args = due[self._due_head]
                    self._due_head += 1
                    if self._due_head >= compact:
                        del due[:self._due_head]
                        self._due_head = 0
                    self.last_event_time = self.now
                    executed += 1
                    fn(*args)
                    continue
                if self._due_head:
                    del due[:self._due_head]
                    self._due_head = 0
                if not queue:
                    break
                when = queue[0][0]
                if when >= edge or (cap is not None and when > cap):
                    break
                _w, _tag, fn, args = pop(queue)
                self.now = when
                self.last_event_time = when
                executed += 1
                fn(*args)
        finally:
            if self._due_head:
                del self._due[:self._due_head]
            self._due_head = 0
            self.events_executed += executed
            self._running = False
        if self.now < edge:
            self.now = edge
        return executed

    def run_at(self, t: float) -> int:
        """Execute exactly the events due at time ``t`` (quantum-0 mode)."""
        if self.now > t:
            raise ShardingError(
                f"domain {self.domain_index} is at {self.now}, past {t}")
        self.now = t
        executed = 0
        while True:
            nxt = self.peek()
            if nxt is None or nxt > t:
                break
            self.step()
            executed += 1
        if executed:
            self.last_event_time = t
        return executed


class SimDomain:
    """One shard of simulated hardware: an engine plus its identity.

    The domain owns an engine (its RNG streams and stats live wherever
    the components bound to this engine put them — per-domain by
    construction, since a component only mutates state from its own
    events).
    """

    def __init__(self, name: str, index: int,
                 sim: Optional[DomainSimulator] = None,
                 shared_seq: Optional[List[int]] = None) -> None:
        self.name = name
        self.index = index
        self.sim = (sim if sim is not None
                    else DomainSimulator(index, shared_seq=shared_seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimDomain({self.name!r}, index={self.index})"


class BoundaryChannel:
    """An explicit cross-domain wire with a declared minimum latency.

    Components cross it with :meth:`cross`, which either degenerates to
    a plain ``schedule`` (same engine on both sides — an absorbed wire)
    or enqueues a time-stamped message the executor delivers at a
    quantum edge.  The declared ``latency`` is the channel's *lookahead*
    contract: every crossing must take at least that long.
    """

    def __init__(self, name: str, src: SimDomain, dst: SimDomain,
                 latency: float) -> None:
        if latency < 0:
            raise ShardingError(f"channel {name!r}: negative latency")
        self.name = name
        self.src = src
        self.dst = dst
        self.latency = latency
        #: pending messages: (deliver_time, source tag, fn, args)
        self.queue: List[Tuple[float, Tag, Callable, tuple]] = []
        self.crossings = 0

    @property
    def crosses_engines(self) -> bool:
        return self.src.sim is not self.dst.sim

    def cross(self, fn: Callable, *args: Any,
              latency: Optional[float] = None) -> None:
        """Send ``fn(*args)`` to the destination domain over this channel."""
        lat = self.latency if latency is None else latency
        if lat < self.latency:
            raise ShardingError(
                f"channel {self.name!r}: crossing latency {lat} below the "
                f"declared minimum {self.latency}")
        src_sim = self.src.sim
        if src_sim is self.dst.sim:
            # absorbed wire: both ends share an engine, a plain event
            src_sim.schedule(lat, fn, *args)
            return
        self.crossings += 1
        self.queue.append((src_sim.now + lat, src_sim.next_tag(), fn,
                           tuple(args)))

    def head_time(self) -> Optional[float]:
        """Earliest pending delivery time, or None when empty."""
        return min((entry[0] for entry in self.queue), default=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundaryChannel({self.name!r}, L={self.latency}, "
                f"pending={len(self.queue)})")


class DomainPlan:
    """The partition: an ordered set of domains plus their channels."""

    def __init__(self, domains: Sequence[SimDomain]) -> None:
        self.domains: List[SimDomain] = list(domains)
        if len({d.index for d in self.domains}) != len(self.domains):
            raise ShardingError("domain indices must be unique")
        if len({d.name for d in self.domains}) != len(self.domains):
            raise ShardingError("domain names must be unique")
        self.channels: List[BoundaryChannel] = []

    def channel(self, name: str, src: SimDomain, dst: SimDomain,
                latency: float) -> BoundaryChannel:
        """Declare (and register) a boundary channel."""
        ch = BoundaryChannel(name, src, dst, latency)
        self.channels.append(ch)
        return ch

    @property
    def serial_merged(self) -> bool:
        """True when every domain engine draws from one arrival counter."""
        cells = [getattr(d.sim, "_shared", None) for d in self.domains]
        return bool(cells) and cells[0] is not None and all(
            c is cells[0] for c in cells)

    def by_name(self, name: str) -> SimDomain:
        for d in self.domains:
            if d.name == name:
                return d
        raise ShardingError(f"no domain named {name!r}")

    def min_latency(self) -> float:
        """Smallest cross-engine channel latency (inf with no crossings)."""
        lats = [ch.latency for ch in self.channels if ch.crosses_engines]
        return min(lats) if lats else float("inf")

    def default_quantum(self) -> float:
        """The largest safe quantum: the minimum boundary latency."""
        lat = self.min_latency()
        return lat if lat != float("inf") else 1.0

    def validate_quantum(self, quantum: float) -> None:
        """Enforce the quantum-safety rule ``Q <= min boundary latency``."""
        if quantum < 0:
            raise ShardingError(f"negative quantum {quantum}")
        if quantum == 0:
            # sequential instant-by-instant mode tolerates zero lookahead
            return
        for ch in self.channels:
            if ch.crosses_engines and ch.latency < quantum:
                raise ShardingError(
                    f"quantum {quantum} exceeds channel {ch.name!r} "
                    f"latency {ch.latency}; lower the quantum or absorb "
                    f"the zero/low-latency wire into one domain")


class ShardedSimulator:
    """Advances a :class:`DomainPlan` in lockstep quanta.

    ``run`` mirrors ``Simulator.run(until=...)`` semantics at the system
    level: it stops when every domain is quiescent (clocks then rest at
    the last event time, as the serial engine's would) or when the next
    event lies beyond ``until`` (clocks advance to ``until``).  Each
    ``quiesce_hooks`` entry is invoked once, in order, at successive
    stop points — the chip uses one to flush its MACTs exactly where the
    serial run does.
    """

    def __init__(self, plan: DomainPlan,
                 quantum: Optional[float] = None) -> None:
        self.plan = plan
        self.quantum = plan.default_quantum() if quantum is None else quantum
        plan.validate_quantum(self.quantum)
        #: serial-merge plans execute each window as a fine-grained global
        #: merge over all domain heaps — exactly the serial event order
        self.merge_mode = plan.serial_merged
        self.windows = 0
        self.messages = 0

    # -- internals -----------------------------------------------------------

    def _next_time(self) -> Optional[float]:
        nt: Optional[float] = None
        for d in self.plan.domains:
            p = d.sim.peek()
            if p is not None and (nt is None or p < nt):
                nt = p
        for ch in self.plan.channels:
            p = ch.head_time()
            if p is not None and (nt is None or p < nt):
                nt = p
        return nt

    def _deliver(self, horizon: float, inclusive: bool) -> int:
        """Move due channel messages into their destination engines.

        Messages from every channel are merged and inserted in one
        canonical order — (delivery time, source tag) — so each engine's
        heap receives them identically no matter which worker or window
        layout produced them.
        """
        ready: List[Tuple[float, Tag, Callable, tuple, SimDomain]] = []
        for ch in self.plan.channels:
            if not ch.queue:
                continue
            keep = []
            for entry in ch.queue:
                due = (entry[0] <= horizon) if inclusive else \
                    (entry[0] < horizon)
                if due:
                    ready.append(entry + (ch.dst,))
                else:
                    keep.append(entry)
            ch.queue = keep
        ready.sort(key=lambda e: (e[0], e[1]))
        for when, tag, fn, args, dst in ready:
            dst.sim.schedule_boundary(when, tag, fn, args)
        self.messages += len(ready)
        return len(ready)

    def _set_now(self, t: float) -> None:
        for d in self.plan.domains:
            d.sim.now = t

    def _last_event_time(self) -> float:
        return max((d.sim.last_event_time for d in self.plan.domains),
                   default=0.0)

    # -- the lockstep loop ---------------------------------------------------

    def run(self, until: Optional[float] = None,
            quiesce_hooks: Iterable[Callable[[], None]] = ()) -> int:
        hooks = list(quiesce_hooks)
        domains = self.plan.domains
        windows0 = self.windows
        while True:
            nt = self._next_time()
            if nt is None or (until is not None and nt > until):
                # quiescent (or past the horizon): rest the clocks where
                # the serial engine would leave them, then flush-or-stop
                t_stop = until if until is not None else \
                    self._last_event_time()
                self._set_now(t_stop)
                if hooks:
                    hook = hooks.pop(0)
                    hook()
                    continue
                return self.windows - windows0
            edge = nt + self.quantum
            if self.merge_mode:
                # bit-for-bit mode: deliver the window's messages, then
                # execute every due event in GLOBAL (time, arrival) order
                # across all domains — the serial engine's exact order.
                self._deliver(edge, inclusive=self.quantum == 0)
                self._run_window_merged(edge, until,
                                        inclusive=self.quantum == 0)
                self.windows += 1
                continue
            if self.quantum == 0:
                # sequential canonical mode: one global instant at a
                # time, domains in index order (the documented
                # cross-domain tie-break)
                self._deliver(nt, inclusive=True)
                for d in domains:
                    prev = _swap_active(d.sim)
                    try:
                        if d.sim.now < nt:
                            d.sim.now = nt
                        d.sim.run_at(nt)
                    finally:
                        _swap_active(prev)
                self.windows += 1
                continue
            self._deliver(edge, inclusive=False)
            for d in domains:
                prev = _swap_active(d.sim)
                try:
                    d.sim.run_window(edge, cap=until)
                finally:
                    _swap_active(prev)
            self.windows += 1

    def _run_window_merged(self, edge: float, cap: Optional[float],
                           inclusive: bool) -> None:
        """Execute the window as one globally-ordered event stream.

        Repeatedly steps the domain whose next (time, tag) is globally
        smallest.  With the shared arrival counter this interleaves the
        domains exactly as the serial engine would have; the quantum
        only batches message delivery, it never reorders execution.
        """
        domains = self.plan.domains
        while True:
            best = None
            best_key = None
            for d in domains:
                key = d.sim.peek_key()
                if key is not None and (best_key is None or key < best_key):
                    best, best_key = d, key
            if best is None or best_key is None:
                return
            when = best_key[0]
            if (when > edge if inclusive else when >= edge):
                return
            if cap is not None and when > cap:
                return
            prev = _swap_active(best.sim)
            try:
                best.sim.step()
                best.sim.last_event_time = best.sim.now
            finally:
                _swap_active(prev)


# -- order-restoring stat taps ----------------------------------------------


class _StatTap:
    """Base for the deferred-stat proxies (see module docstring)."""

    def __init__(self, stat: Any) -> None:
        self.stat = stat
        #: per-domain recorded samples: domain index -> [(time, value)]
        self.samples: Dict[int, List[Tuple[float, float]]] = {}

    def _record(self, value: float) -> None:
        sim = _engine._ACTIVE
        dom = getattr(sim, "domain_index", 0)
        now = sim.now if sim is not None else 0.0
        self.samples.setdefault(dom, []).append((now, value))

    def merged(self) -> List[Tuple[float, int, int, float]]:
        """All samples as (time, domain, arrival, value), serially ordered."""
        entries = [(t, dom, i, v)
                   for dom, lst in self.samples.items()
                   for i, (t, v) in enumerate(lst)]
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return entries

    def replay(self, entries: Optional[
            List[Tuple[float, int, int, float]]] = None) -> None:
        """Apply the merged stream into the real stat, in serial order."""
        for _t, _dom, _i, value in (self.merged() if entries is None
                                    else entries):
            self._apply(value)

    def _apply(self, value: float) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AccumulatorTap(_StatTap):
    """Deferred proxy for a (Welford, order-sensitive) accumulator."""

    def add(self, value: float) -> None:
        self._record(value)

    def _apply(self, value: float) -> None:
        self.stat.add(value)

    @property
    def mean(self) -> float:
        return self.stat.mean


class CounterTap(_StatTap):
    """Deferred proxy for a counter incremented from several domains."""

    def inc(self, n: float = 1) -> None:
        self._record(n)

    def _apply(self, value: float) -> None:
        self.stat.inc(value)

    @property
    def value(self) -> float:
        return self.stat.value


def merge_tap_samples(
    streams: Iterable[Dict[int, List[Tuple[float, float]]]],
) -> List[Tuple[float, int, int, float]]:
    """Merge per-domain sample streams from several workers.

    Each worker contributes the streams of the domains it owns; a domain
    must appear in exactly one stream dict (the multiprocess executor
    guarantees this by taking the replicated hub stream from worker 0
    only).
    """
    combined: Dict[int, List[Tuple[float, float]]] = {}
    for stream in streams:
        for dom, lst in stream.items():
            if dom in combined:
                raise ShardingError(
                    f"domain {dom} sample stream contributed twice")
            combined[dom] = lst
    entries = [(t, dom, i, v)
               for dom, lst in combined.items()
               for i, (t, v) in enumerate(lst)]
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return entries


def replay_taps(taps: Iterable[_StatTap]) -> None:
    """Replay every tap's own recorded stream (single-process runs)."""
    for tap in taps:
        tap.replay()
