"""Runtime invariant audit layer.

An :class:`Auditor` installs checkers over an existing
:class:`~repro.sim.component.Component` tree and observes a simulation
without perturbing it: hooks are guarded ``is not None`` checks on hot
paths, checkers never schedule events, and an audits-off run is
bit-identical to a run without the layer.  Checkers:

* **request conservation** — every core request issued into the chip
  completes exactly once; none are orphaned at end-of-run;
* **flit/byte conservation** — every :class:`~repro.noc.link.SlicedLink`
  reservation starts in the present, carries the packet's bytes within
  the reserved slice-cycles, and no reservation outlives the run; per
  network, injected packets equal delivered packets;
* **MACT line consistency** — a flushed line's byte bitmap equals the
  union of its member requests' byte ranges (popcount included), every
  member is line-local, and no line outlives its deadline generation;
* **thread FSM legality** — ``RUNNING <-> WAITING`` transitions only via
  ``block``/``unblock``, an in-pair resume requires the friend to have
  missed, no fetch/retire after ``DONE``;
* **trace tiling** — a completed request's hop chain tiles
  ``[issue_time, finish_time]`` gap-free, so the per-layer breakdown
  segments sum to the end-to-end latency (PR 3's contract).

With ``fail_fast`` a violation raises :class:`~repro.errors.AuditError`
immediately ("fails loudly"); in collect mode violations accumulate (up
to ``max_violations``) into :meth:`Auditor.summary`, which the run layer
attaches to its outcome — the soak harness (``repro.exp.soak``) runs
randomized configs in collect mode and reports everything found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import AuditConfig
from ..errors import AuditError

__all__ = ["Violation", "Auditor", "ThreadFsmObserver"]

#: Absolute slack for float time comparisons (cycle timestamps are exact
#: sums of small integers/halves in practice; this absorbs fp noise).
_EPS = 1e-6


@dataclass
class Violation:
    """One detected invariant break."""

    checker: str        # "request_conservation", "mact_consistency", ...
    component: str      # dotted component path (or link name)
    time: float         # sim time of detection
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {"checker": self.checker, "component": self.component,
                "time": self.time, "message": self.message}

    def __str__(self) -> str:
        return (f"[{self.checker}] {self.component} @ {self.time:g}: "
                f"{self.message}")


class ThreadFsmObserver:
    """Per-core observer the :class:`~repro.core.thread.HardwareThread`
    mutators call *before* each transition, validating its legality.

    State names are compared as strings so this module never imports
    ``repro.core`` (which imports ``repro.sim``).
    """

    __slots__ = ("_auditor", "_core")

    def __init__(self, auditor: "Auditor", core: Any) -> None:
        self._auditor = auditor
        self._core = core

    def _fail(self, thread: Any, message: str) -> None:
        self._auditor.violation(
            "thread_fsm", self._core.path, self._core.sim.now,
            f"{thread.name}: {message}")

    def pre_block(self, thread: Any) -> None:
        self._auditor.count("thread_fsm")
        if thread.state.name != "RUNNING":
            self._fail(thread, f"block() while {thread.state.name}")
        if not thread.data_ready:
            self._fail(thread, "block() with a miss already outstanding")

    def pre_unblock(self, thread: Any) -> None:
        self._auditor.count("thread_fsm")
        if thread.state.name != "WAITING":
            self._fail(thread, f"unblock() while {thread.state.name}")
        if thread.data_ready:
            self._fail(thread, "unblock() without an outstanding miss")

    def pre_finish(self, thread: Any) -> None:
        self._auditor.count("thread_fsm")
        if thread.state.name != "RUNNING":
            self._fail(thread, f"finish() while {thread.state.name}")

    def pre_retire(self, thread: Any) -> None:
        if thread.state.name == "DONE":
            self._auditor.count("thread_fsm")
            self._fail(thread, "instruction fetch after DONE")


class Auditor:
    """Registers invariant checkers over a component tree and collects
    (or raises on) violations.

    Usage::

        auditor = Auditor(AuditConfig(enabled=True)).install(chip)
        ... run the simulation ...
        auditor.end_of_run(chip.sim.now)
        report = auditor.summary()
    """

    def __init__(self, config: Optional[AuditConfig] = None) -> None:
        self.config = config if config is not None else AuditConfig(enabled=True)
        self.config.validate()
        self.violations: List[Violation] = []
        self.dropped = 0
        self.checks: Dict[str, int] = {}
        self.installed: List[str] = []
        # request conservation
        self._outstanding: Dict[int, Any] = {}
        self.issued = 0
        self.completed = 0
        # flit/byte conservation
        self._links: List[Any] = []
        self._flows: List[Tuple[str, Any, Any]] = []
        # MACT line consistency
        self._macts: List[Any] = []
        self._finished = False

    # -- violation plumbing ------------------------------------------------

    def count(self, checker: str) -> None:
        """Tally one performed check (for the summary's coverage view)."""
        self.checks[checker] = self.checks.get(checker, 0) + 1

    def violation(self, checker: str, component: str, time: float,
                  message: str) -> None:
        v = Violation(checker, component, time, message)
        if self.config.fail_fast:
            raise AuditError(str(v))
        if len(self.violations) < self.config.max_violations:
            self.violations.append(v)
        else:
            self.dropped += 1

    @property
    def clean(self) -> bool:
        return not self.violations and not self.dropped

    # -- installation ------------------------------------------------------

    def install(self, root: Any) -> "Auditor":
        """Walk ``root``'s component tree, letting each component attach."""
        for comp in root.walk():
            comp.attach_audit(self)
        return self

    def register_chip(self, chip: Any) -> bool:
        if not (self.config.request_conservation or self.config.trace_tiling):
            return False
        self.installed.append(f"chip:{chip.path}")
        return True

    def register_mact(self, mact: Any) -> bool:
        if not self.config.mact_consistency:
            return False
        self._macts.append(mact)
        self.installed.append(f"mact:{mact.path}")
        return True

    def register_core(self, core: Any) -> Optional[ThreadFsmObserver]:
        if not self.config.thread_fsm:
            return None
        self.installed.append(f"core:{core.path}")
        return ThreadFsmObserver(self, core)

    def register_flow(self, name: str, injected: Any, delivered: Any) -> None:
        """Register an injected/delivered counter pair for end-of-run."""
        if self.config.link_conservation:
            self._flows.append((name, injected, delivered))

    def register_link(self, link: Any) -> None:
        if not self.config.link_conservation:
            return
        link.audit_hook = self.link_reserved
        self._links.append(link)

    # -- request conservation + trace tiling -------------------------------

    def request_issued(self, request: Any, now: float) -> None:
        if not self.config.request_conservation:
            return
        self.count("request_conservation")
        self.issued += 1
        if request.req_id in self._outstanding:
            self.violation(
                "request_conservation", "chip", now,
                f"request {request.req_id} issued twice")
        self._outstanding[request.req_id] = request

    def request_completed(self, request: Any, now: float) -> None:
        if self.config.request_conservation:
            self.count("request_conservation")
            self.completed += 1
            if self._outstanding.pop(request.req_id, None) is None:
                self.violation(
                    "request_conservation", "chip", now,
                    f"request {request.req_id} completed but was never "
                    f"issued (or completed twice)")
        if self.config.trace_tiling and request.trace is not None:
            self._check_trace(request, now)

    def _check_trace(self, request: Any, now: float) -> None:
        self.count("trace_tiling")
        hops = request.trace.hops
        if not hops:
            self.violation("trace_tiling", "chip", now,
                           f"request {request.req_id}: sampled trace has "
                           f"no hops at completion")
            return
        where = hops[0].component
        rid = request.req_id
        if abs(hops[0].enter - request.issue_time) > _EPS:
            self.violation(
                "trace_tiling", where, now,
                f"request {rid}: first hop enters at {hops[0].enter:g}, "
                f"issue_time is {request.issue_time:g}")
        prev_exit: Optional[float] = None
        for hop in hops:
            if hop.exit is None:
                self.violation(
                    "trace_tiling", hop.component, now,
                    f"request {rid}: hop {hop.stage!r} still open at "
                    f"completion")
                return
            if hop.exit < hop.enter - _EPS:
                self.violation(
                    "trace_tiling", hop.component, now,
                    f"request {rid}: hop {hop.stage!r} exits before it "
                    f"enters ({hop.exit:g} < {hop.enter:g})")
            if prev_exit is not None and abs(hop.enter - prev_exit) > _EPS:
                kind = "gap" if hop.enter > prev_exit else "overlap"
                self.violation(
                    "trace_tiling", hop.component, now,
                    f"request {rid}: {kind} of "
                    f"{abs(hop.enter - prev_exit):g} cycles before hop "
                    f"{hop.stage!r}")
            prev_exit = hop.exit
        if prev_exit is not None and abs(prev_exit - now) > _EPS:
            self.violation(
                "trace_tiling", hops[-1].component, now,
                f"request {rid}: last hop exits at {prev_exit:g}, "
                f"completion is at {now:g}")
        total = sum(h.exit - h.enter for h in hops)
        end_to_end = now - request.issue_time
        if abs(total - end_to_end) > _EPS * max(1.0, abs(end_to_end)):
            self.violation(
                "trace_tiling", where, now,
                f"request {rid}: hop durations sum to {total:g}, "
                f"end-to-end latency is {end_to_end:g}")

    # -- flit/byte conservation --------------------------------------------

    def link_reserved(self, link: Any, size_bytes: int, start: float,
                      finish: float, now: float) -> None:
        self.count("link_conservation")
        if start < now - _EPS:
            self.violation(
                "link_conservation", link.name, now,
                f"reservation starts in the past ({start:g} < {now:g})")
        if finish <= start - _EPS:
            self.violation(
                "link_conservation", link.name, now,
                f"reservation finishes at {finish:g}, before its start "
                f"{start:g}")
        capacity = (finish - start) * link.width_bytes
        if size_bytes > capacity + _EPS:
            self.violation(
                "link_conservation", link.name, now,
                f"{size_bytes} bytes reserved into {capacity:g} "
                f"byte-cycles of link capacity")

    # -- MACT line consistency ---------------------------------------------

    def mact_collected(self, mact: Any, line: Any, request: Any) -> None:
        self.count("mact_consistency")
        span = mact.config.line_span_bytes
        lo = request.addr - line.base_addr
        if lo < 0 or lo + request.size > span:
            self.violation(
                "mact_consistency", mact.path, mact.sim.now,
                f"request {request.req_id} ({request.addr:#x}+{request.size}) "
                f"falls outside line {line.base_addr:#x}+{span}")

    def mact_flushed(self, mact: Any, line: Any, reason: str,
                     now: float) -> None:
        self.count("mact_consistency")
        span = mact.config.line_span_bytes
        union = 0
        for req in line.requests:
            lo = req.addr - line.base_addr
            if lo < 0 or lo + req.size > span:
                self.violation(
                    "mact_consistency", mact.path, now,
                    f"flushed line {line.base_addr:#x} holds out-of-line "
                    f"member {req.req_id} ({req.addr:#x}+{req.size})")
                continue
            union |= ((1 << req.size) - 1) << lo
        if union != line.bitmap:
            self.violation(
                "mact_consistency", mact.path, now,
                f"line {line.base_addr:#x} bitmap popcount "
                f"{bin(line.bitmap).count('1')} != union of member byte "
                f"ranges ({bin(union).count('1')} bytes)")
        # "drain" is the explicit end-of-run flush; every in-run flush must
        # happen within the line's deadline generation.
        age = now - line.created_at
        if reason != "drain" and age > mact.config.threshold_cycles + _EPS:
            self.violation(
                "mact_consistency", mact.path, now,
                f"line {line.base_addr:#x} flushed ({reason}) {age:g} "
                f"cycles after creation, past its "
                f"{mact.config.threshold_cycles}-cycle deadline")

    # -- thread FSM ---------------------------------------------------------

    def thread_picked(self, core: Any, slot_id: int, thread: Any,
                      prev: Any, idle: bool) -> None:
        """Called by the TCG slot scheduler at pick time (before any yield)."""
        self.count("thread_fsm")
        if thread.state.name == "DONE" or not thread.data_ready:
            self.violation(
                "thread_fsm", core.path, core.sim.now,
                f"{thread.name} picked while not runnable "
                f"({thread.state.name}, data_ready={thread.data_ready})")
        for other in core.slot_threads(slot_id):
            if other is not thread and other.state.name == "RUNNING":
                self.violation(
                    "thread_fsm", core.path, core.sim.now,
                    f"{thread.name} picked while {other.name} is RUNNING "
                    f"in the same slot")
        # In-pair takeover legality: a parked thread (ready_at set) resumes
        # directly after its friend yielded the slot only because the
        # friend missed (or finished).  After an idle wait the slot is
        # free, so any runnable thread may be picked.
        if (core.policy == "inpair" and thread.ready_at is not None
                and not idle and prev is not None and prev is not thread
                and prev.state.name != "DONE" and prev.data_ready):
            self.violation(
                "thread_fsm", core.path, core.sim.now,
                f"{thread.name} resumed in-pair while friend {prev.name} "
                f"had not missed")

    # -- end-of-run ----------------------------------------------------------

    def end_of_run(self, now: float) -> None:
        """Final conservation checks once the simulation has drained."""
        if self._finished:
            return
        self._finished = True
        if self.config.request_conservation:
            self.count("request_conservation")
            for req in list(self._outstanding.values())[:10]:
                self.violation(
                    "request_conservation", "chip", now,
                    f"request {req.req_id} ({req!r}) still outstanding at "
                    f"end-of-run")
            extra = len(self._outstanding) - 10
            if extra > 0:
                self.violation(
                    "request_conservation", "chip", now,
                    f"...and {extra} more orphaned requests")
            if self.completed > self.issued:
                self.violation(
                    "request_conservation", "chip", now,
                    f"{self.completed} completions for {self.issued} "
                    f"issued requests")
        for name, injected, delivered in self._flows:
            self.count("link_conservation")
            if injected.value != delivered.value:
                self.violation(
                    "link_conservation", name, now,
                    f"{injected.value} packets injected but "
                    f"{delivered.value} delivered (in-flight at end-of-run)")
        for link in self._links:
            self.count("link_conservation")
            busy = link.busy_until()
            if busy > now + _EPS:
                self.violation(
                    "link_conservation", link.name, now,
                    f"reservation outlives the run (busy until {busy:g}, "
                    f"run ended at {now:g})")
        for mact in self._macts:
            self.count("mact_consistency")
            if mact.pending_lines:
                self.violation(
                    "mact_consistency", mact.path, now,
                    f"{mact.pending_lines} lines still pending at "
                    f"end-of-run (flush_all not drained)")

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready report for RunOutcome / telemetry records."""
        return {
            "enabled": self.config.enabled,
            "fail_fast": self.config.fail_fast,
            "checks": dict(self.checks),
            "total_checks": sum(self.checks.values()),
            "violations": [v.to_dict() for v in self.violations],
            "dropped_violations": self.dropped,
            "clean": self.clean,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Auditor(checks={sum(self.checks.values())}, "
                f"violations={len(self.violations)})")
