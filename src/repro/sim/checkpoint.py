"""Versioned on-disk checkpoints of a running simulation.

A :class:`Checkpoint` is the durable form of one simulated system frozen
at one cycle: a format version, the code digest of the writing process, a
hash of the component-tree *schema* (paths, classes, anchors, signals,
stat names), the request snapshot that built the system, and the encoded
state body (per-path component state, kernel queues, RNG streams, stats,
traces) produced by :mod:`repro.sim.snapshot`.

Restores are strict by design: a checkpoint only loads into a system
whose rebuilt schema hashes identically (:class:`CheckpointSchemaError`
otherwise), written by the same format version and — unless explicitly
overridden — the same code digest (:class:`CheckpointVersionError`).
The alternative, best-effort partial restores, silently corrupts
simulations; bit-identical resume is the whole contract.

:class:`SnapshotScope` gathers the pieces a run session exposes (sim,
component roots, RNG tree, stats registry, trace buffer, extra anchors)
and drives capture/restore through the codec.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..errors import (CheckpointError, CheckpointSchemaError,
                      CheckpointVersionError)
from .component import Component
from .engine import Simulator
from .rng import RngTree
from .snapshot import SnapshotDecoder, SnapshotEncoder
from .stats import StatsRegistry
from .trace import TraceBuffer

__all__ = ["Checkpoint", "SnapshotScope", "FORMAT_VERSION",
           "save_checkpoint", "load_checkpoint"]

#: bump when the container layout or codec tags change incompatibly
FORMAT_VERSION = 1

_MAGIC = "repro-smarco-checkpoint"


class SnapshotScope:
    """Everything one run session exposes to the checkpoint layer."""

    def __init__(
        self,
        sim: Simulator,
        roots: Tuple[Component, ...] = (),
        rng: Optional[RngTree] = None,
        registry: Optional[StatsRegistry] = None,
        trace: Optional[TraceBuffer] = None,
        extra_anchors: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sim = sim
        self.roots = tuple(roots)
        self.rng = rng
        self.registry = registry
        self.trace = trace
        self.extra_anchors = dict(extra_anchors or {})

    # -- anchors and schema --------------------------------------------------

    def anchors(self) -> Dict[str, Any]:
        """The stable-key -> object table the codec resolves against."""
        table: Dict[str, Any] = {"sim": self.sim}
        for root in self.roots:
            for comp in root.walk():
                table[f"c:{comp.path}"] = comp
                for key, obj in comp.snapshot_anchors().items():
                    table[f"a:{comp.path}/{key}"] = obj
        for key, sig in self.sim.signals().items():
            table[f"s:{key}"] = sig
        for key, obj in self.extra_anchors.items():
            table[f"x:{key}"] = obj
        return table

    def schema_hash(self) -> str:
        """Digest of the system's *structure* (not its state).

        Stat names are deliberately excluded: some stats (latency-breakdown
        hop accumulators) are created lazily by traffic, so the save-time
        name set is state, not structure.  Stat-set mismatches still fail
        the restore, as a :class:`CheckpointSchemaError` from the registry
        load.
        """
        digest = hashlib.sha256()
        digest.update(f"format:{FORMAT_VERSION}".encode())
        for key, obj in sorted(self.anchors().items(),
                               key=lambda item: item[0]):
            digest.update(f"{key}={type(obj).__qualname__}\0".encode())
        return digest.hexdigest()[:16]

    # -- capture / restore ---------------------------------------------------

    def capture(self, extra_state: Optional[Dict[str, Any]] = None
                ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Encode the full state body; returns (data, objects) blobs."""
        rng_names: Dict[int, str] = {}
        if self.rng is not None:
            rng_names = {id(stream): name
                         for name, stream in self.rng.items()}
        encoder = SnapshotEncoder(self.anchors(), rng_names)
        body: Dict[str, Any] = {
            "sim": self.sim.state_dict(),
            "components": {
                comp.path: comp.state_dict()
                for root in self.roots for comp in root.walk()
            },
            "stats": (self.registry.state_dict()
                      if self.registry is not None else {}),
            "rng": self.rng.state_dict() if self.rng is not None else None,
            "trace": (self.trace.state_dict()
                      if self.trace is not None else None),
            "extra": extra_state or {},
        }
        return encoder.encode(body), encoder.objects

    def restore(self, data: Dict[str, Any],
                objects: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
        """Decode a state body into this (freshly rebuilt) system.

        Returns the session-specific ``extra`` state for the caller.
        """
        resolver = self.rng.resolve if self.rng is not None else None
        decoder = SnapshotDecoder(self.anchors(), objects,
                                  rng_resolver=resolver)
        body = decoder.decode(data)
        by_path = {comp.path: comp
                   for root in self.roots for comp in root.walk()}
        saved_paths = body["components"]
        if set(saved_paths) != set(by_path):
            missing = sorted(set(saved_paths) - set(by_path))[:3]
            extra = sorted(set(by_path) - set(saved_paths))[:3]
            raise CheckpointSchemaError(
                f"component tree mismatch (checkpoint-only: {missing}, "
                f"rebuilt-only: {extra})")
        for path, comp_state in saved_paths.items():
            by_path[path].load_state(comp_state)
        if self.registry is not None:
            try:
                self.registry.load_state(body["stats"])
            except KeyError as exc:
                raise CheckpointSchemaError(
                    f"stat set mismatch: {exc.args[0]}") from None
        if self.rng is not None and body["rng"] is not None:
            self.rng.load_state(body["rng"])
        if self.trace is not None and body["trace"] is not None:
            self.trace.load_state(body["trace"])
        self.sim.load_state(body["sim"])
        return body["extra"]


@dataclass
class Checkpoint:
    """The versioned container: header + encoded state body."""

    format: int
    code_digest: str
    schema: str
    kind: str
    request: Dict[str, Any]        # RunRequest.snapshot() of the run
    cycle: float                   # sim.now at capture
    data: Dict[str, Any]           # encoded state body
    objects: Dict[str, Any] = field(default_factory=dict)

    # -- header checks -------------------------------------------------------

    def verify(self, scope: SnapshotScope, code_digest: str,
               allow_code_skew: bool = False) -> None:
        """Raise unless this checkpoint may restore into ``scope``."""
        if self.format != FORMAT_VERSION:
            raise CheckpointVersionError(
                f"checkpoint format v{self.format} != supported "
                f"v{FORMAT_VERSION}")
        if self.code_digest != code_digest and not allow_code_skew:
            raise CheckpointVersionError(
                f"checkpoint written by code {self.code_digest}, this "
                f"process is {code_digest}; pass allow_code_skew=True "
                f"to override (results may not reproduce)")
        rebuilt = scope.schema_hash()
        if self.schema != rebuilt:
            raise CheckpointSchemaError(
                f"checkpoint schema {self.schema} != rebuilt system "
                f"schema {rebuilt}; the request does not rebuild the "
                f"structure this checkpoint froze")

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "magic": _MAGIC,
            "format": self.format,
            "code_digest": self.code_digest,
            "schema": self.schema,
            "kind": self.kind,
            "request": self.request,
            "cycle": self.cycle,
            "data": self.data,
            "objects": self.objects,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Checkpoint":
        if raw.get("magic") != _MAGIC:
            raise CheckpointError("not a repro-smarco checkpoint file")
        return cls(
            format=raw["format"],
            code_digest=raw["code_digest"],
            schema=raw["schema"],
            kind=raw["kind"],
            request=raw["request"],
            cycle=raw["cycle"],
            data=raw["data"],
            objects=raw["objects"],
        )

    def summary(self) -> Dict[str, Any]:
        """Header-only view (the ``checkpoint info`` CLI output)."""
        return {
            "format": self.format,
            "code_digest": self.code_digest,
            "schema": self.schema,
            "kind": self.kind,
            "workload": self.request.get("workload"),
            "seed": self.request.get("seed"),
            "cycle": self.cycle,
            "objects": len(self.objects),
        }


def save_checkpoint(ckpt: Checkpoint, path: Path) -> Path:
    """Write a checkpoint (gzipped JSON when the name ends in ``.gz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(ckpt.to_dict())
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path.write_text(payload)
    return path


def load_checkpoint(path: Path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                raw = json.load(fh)
        else:
            raw = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from None
    return Checkpoint.from_dict(raw)
