"""The snapshot codec: live simulator state <-> JSON-safe blobs.

Checkpointing a discrete-event simulation means serialising an object
graph that contains things ``pickle`` either cannot handle or must not
handle (callables bound into the event queue, components that must keep
their identity across a restore).  This codec makes the problem tractable
with three rules:

* **Anchored objects** — structural objects that exist after the system
  is rebuilt from its request (components, rings, links, DRAM banks,
  registered signals, the simulator itself, named RNG streams) — are
  encoded *by reference* to a stable key.  Restoring resolves the key
  against the rebuilt system, and the object's own mutable state travels
  separately through the owner's ``state_dict()``.
* **Floating objects** — per-run dynamic state (in-flight requests,
  packets, FSM flight records, tasks, hardware threads) — are encoded
  *by value* under a registered class name, with a memo table so shared
  references and cycles decode to shared objects.
* **Callables** are encoded as descriptors: a bound method is (owner
  reference, method name); a ``functools.partial`` is (inner callable,
  args); a module-level function is (module, qualname).  Anything else —
  lambdas, closures, generator-bound methods — raises
  :class:`~repro.errors.CheckpointError`, loudly, at save time.

Every container value is JSON-safe: tuples, sets, deques, ordered dicts,
non-string dict keys, bytes and enums are tagged; plain lists, strings,
numbers and None pass through.
"""

from __future__ import annotations

import base64
import enum
import functools
import importlib
import random
import types
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional

from ..errors import CheckpointError

__all__ = [
    "register_snapshot_class",
    "snapshotable",
    "snapshot_class_names",
    "SnapshotEncoder",
    "SnapshotDecoder",
]

#: registered floating classes, by stable name
_CLASSES: Dict[str, type] = {}
_CLASS_NAMES: Dict[type, str] = {}


def register_snapshot_class(cls: type, name: Optional[str] = None) -> type:
    """Register ``cls`` so instances may travel through checkpoints."""
    key = name if name is not None else f"{cls.__module__}:{cls.__qualname__}"
    existing = _CLASSES.get(key)
    if existing is not None and existing is not cls:
        raise CheckpointError(f"duplicate snapshot class name {key!r}")
    _CLASSES[key] = cls
    _CLASS_NAMES[cls] = key
    return cls


def snapshotable(cls: type) -> type:
    """Class decorator form of :func:`register_snapshot_class`."""
    return register_snapshot_class(cls)


def snapshot_class_names() -> List[str]:
    """Sorted names of every registered snapshot class."""
    return sorted(_CLASSES)


def _object_fields(obj: Any) -> Dict[str, Any]:
    """Every live attribute of ``obj`` (instance dict plus slots)."""
    fields: Dict[str, Any] = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot != "__dict__" and hasattr(obj, slot):
                fields[slot] = getattr(obj, slot)
    if hasattr(obj, "__dict__"):
        fields.update(obj.__dict__)
    return fields


class SnapshotEncoder:
    """One-pass encoder over a state body; collects a shared memo table."""

    def __init__(self, anchors: Dict[str, Any],
                 rng_names: Optional[Dict[int, str]] = None) -> None:
        self._anchors = anchors
        self._anchor_by_id = {id(obj): key for key, obj in anchors.items()}
        self._rng_names = rng_names if rng_names is not None else {}
        self._memo: Dict[int, int] = {}
        self._keepalive: List[Any] = []     # pin ids for the encoder's life
        self._next_id = 0
        #: memo id -> {"c": class name, "f": {field: encoded}}
        self.objects: Dict[str, Dict[str, Any]] = {}

    # -- entry point ---------------------------------------------------------

    def encode(self, value: Any) -> Any:
        if value is None or value is True or value is False:
            return value
        t = type(value)
        if t is int or t is str or t is float:
            return value
        if t is list:
            return [self.encode(item) for item in value]
        if t is tuple:
            return {"t": "tuple", "v": [self.encode(x) for x in value]}
        if t is dict:
            return self._encode_dict("dict", value.items())
        if t is OrderedDict:
            return self._encode_dict("odict", value.items())
        if t is set or t is frozenset:
            tag = "set" if t is set else "frozenset"
            return {"t": tag, "v": [self.encode(x) for x in value]}
        if t is deque:
            return {"t": "deque", "v": [self.encode(x) for x in value],
                    "maxlen": value.maxlen}
        if t is bytes:
            return {"t": "bytes", "v": base64.b64encode(value).decode()}
        if t is bytearray:
            return {"t": "bytearray",
                    "v": base64.b64encode(bytes(value)).decode()}
        key = self._anchor_by_id.get(id(value))
        if key is not None:
            return {"t": "anchor", "k": key}
        if isinstance(value, tuple) and hasattr(t, "_fields"):
            return {"t": "ntuple", "m": t.__module__, "c": t.__qualname__,
                    "v": [self.encode(x) for x in value]}
        if isinstance(value, enum.Enum):
            return {"t": "enum", "m": t.__module__, "c": t.__qualname__,
                    "v": value.value}
        if t is random.Random:
            name = self._rng_names.get(id(value))
            if name is None:
                raise CheckpointError(
                    "a random.Random outside the run's RngTree is "
                    "reachable from snapshot state; draw from named "
                    "streams so checkpoints can identify generators")
            return {"t": "rng", "k": name}
        if isinstance(value, types.MethodType):
            return {"t": "method", "o": self.encode(value.__self__),
                    "n": value.__func__.__name__}
        if isinstance(value, functools.partial):
            if value.keywords:
                raise CheckpointError(
                    "partial() with keyword arguments is not snapshotable; "
                    "use positional binding")
            return {"t": "partial", "f": self.encode(value.func),
                    "a": [self.encode(a) for a in value.args]}
        if isinstance(value, (types.FunctionType, types.BuiltinFunctionType)):
            return self._encode_function(value)
        reg_name = _CLASS_NAMES.get(t)
        if reg_name is not None:
            return self._encode_object(value, reg_name)
        raise CheckpointError(
            f"cannot snapshot live object of type "
            f"{t.__module__}.{t.__qualname__}: not a registered snapshot "
            f"class, anchor, or supported container (value: {value!r})")

    # -- helpers -------------------------------------------------------------

    def _encode_dict(self, tag: str, items: Any) -> Dict[str, Any]:
        return {"t": tag,
                "v": [[self.encode(k), self.encode(v)] for k, v in items]}

    def _encode_function(self, fn: Any) -> Dict[str, Any]:
        module = getattr(fn, "__module__", None)
        qualname = getattr(fn, "__qualname__", "")
        if (module is None or "<locals>" in qualname
                or "<lambda>" in qualname):
            raise CheckpointError(
                f"cannot snapshot closure/lambda callable {qualname!r} "
                f"from module {module!r}; checkpointable paths must use "
                f"bound methods or module-level functions")
        resolved = getattr(importlib.import_module(module), qualname, None)
        if resolved is not fn:
            raise CheckpointError(
                f"function {module}.{qualname} is not resolvable back to "
                f"itself; cannot snapshot")
        return {"t": "func", "m": module, "n": qualname}

    def _encode_object(self, obj: Any, reg_name: str) -> Dict[str, Any]:
        oid = self._memo.get(id(obj))
        if oid is None:
            self._next_id += 1
            oid = self._next_id
            self._memo[id(obj)] = oid
            self._keepalive.append(obj)
            record: Dict[str, Any] = {"c": reg_name, "f": {}}
            self.objects[str(oid)] = record
            getter = getattr(obj, "snapshot_fields", None)
            fields = getter() if getter is not None else _object_fields(obj)
            record["f"] = {name: self.encode(value)
                           for name, value in fields.items()}
        return {"t": "ref", "i": oid}


class SnapshotDecoder:
    """Inverse of :class:`SnapshotEncoder`; two-phase for cyclic graphs."""

    def __init__(self, anchors: Dict[str, Any],
                 objects: Dict[str, Dict[str, Any]],
                 rng_resolver: Optional[Callable[[str], random.Random]] = None,
                 ) -> None:
        self._anchors = anchors
        self._objects = objects
        self._rng_resolver = rng_resolver
        self._made: Dict[int, Any] = {}

    def decode(self, enc: Any) -> Any:
        if enc is None or isinstance(enc, (bool, int, float, str)):
            return enc
        if isinstance(enc, list):
            return [self.decode(item) for item in enc]
        tag = enc["t"]
        if tag == "tuple":
            return tuple(self.decode(x) for x in enc["v"])
        if tag == "dict":
            return {self.decode(k): self.decode(v) for k, v in enc["v"]}
        if tag == "odict":
            return OrderedDict(
                (self.decode(k), self.decode(v)) for k, v in enc["v"])
        if tag == "set":
            return {self.decode(x) for x in enc["v"]}
        if tag == "frozenset":
            return frozenset(self.decode(x) for x in enc["v"])
        if tag == "deque":
            return deque((self.decode(x) for x in enc["v"]),
                         maxlen=enc["maxlen"])
        if tag == "bytes":
            return base64.b64decode(enc["v"])
        if tag == "bytearray":
            return bytearray(base64.b64decode(enc["v"]))
        if tag == "anchor":
            try:
                return self._anchors[enc["k"]]
            except KeyError:
                raise CheckpointError(
                    f"checkpoint references unknown anchor {enc['k']!r}; "
                    f"the rebuilt system has a different structure") from None
        if tag == "ntuple":
            cls = getattr(importlib.import_module(enc["m"]), enc["c"])
            return cls(*(self.decode(x) for x in enc["v"]))
        if tag == "enum":
            cls = getattr(importlib.import_module(enc["m"]), enc["c"])
            return cls(self.decode(enc["v"]))
        if tag == "rng":
            if self._rng_resolver is None:
                raise CheckpointError(
                    "checkpoint references an RNG stream but no RngTree "
                    "was provided for the restore")
            return self._rng_resolver(enc["k"])
        if tag == "method":
            owner = self.decode(enc["o"])
            return getattr(owner, enc["n"])
        if tag == "partial":
            return functools.partial(
                self.decode(enc["f"]),
                *[self.decode(a) for a in enc["a"]])
        if tag == "func":
            return getattr(importlib.import_module(enc["m"]), enc["n"])
        if tag == "ref":
            return self._decode_ref(enc["i"])
        raise CheckpointError(f"unknown snapshot tag {tag!r}")

    def _decode_ref(self, oid: int) -> Any:
        made = self._made.get(oid)
        if made is not None:
            return made
        record = self._objects[str(oid)]
        cls = _CLASSES.get(record["c"])
        if cls is None:
            raise CheckpointError(
                f"checkpoint contains unregistered snapshot class "
                f"{record['c']!r}")
        shell = cls.__new__(cls)
        self._made[oid] = shell
        setter = getattr(shell, "snapshot_restore", None)
        fields = {name: self.decode(value)
                  for name, value in record["f"].items()}
        if setter is not None:
            setter(fields)
        else:
            for name, value in fields.items():
                object.__setattr__(shell, name, value)
        return shell
