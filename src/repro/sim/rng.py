"""Deterministic random-stream management.

Every stochastic component draws from its own named child stream derived
from one root seed, so adding a component (or reordering draws inside one)
never perturbs the streams of the others.  This is what makes the benches
reproducible run-to-run and diffable across code changes.

A tree is fully enumerable: :meth:`RngTree.child` registers the sub-tree
on its parent (historically it did not, so full-state walks silently
missed namespaced streams), :meth:`RngTree.items` walks every stream of
the subtree with scoped names, and :meth:`RngTree.state_dict` /
:meth:`RngTree.load_state` round-trip the exact generator state of every
stream — the hook the checkpoint layer uses.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator, Tuple

__all__ = ["RngTree", "derive_seed"]

#: separator between tree levels in scoped stream names (stream names
#: themselves use dots, so "/" is unambiguous)
_SEP = "/"


def derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed for stream ``name`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngTree:
    """A factory of named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}
        self._children: Dict[str, "RngTree"] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* object, so a
        component can re-fetch its stream cheaply.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def child(self, name: str) -> "RngTree":
        """The sub-tree whose streams are namespaced under ``name``.

        The sub-tree is registered on this tree, so repeated calls return
        the same object and :meth:`items` / :meth:`state_dict` see it.
        """
        tree = self._children.get(name)
        if tree is None:
            tree = RngTree(derive_seed(self.root_seed, f"tree:{name}"))
            self._children[name] = tree
        return tree

    # -- enumeration ---------------------------------------------------------

    def items(self, prefix: str = "") -> Iterator[Tuple[str, random.Random]]:
        """Every (scoped name, stream) of this subtree, depth-first.

        Scoped names join tree levels with ``/``:
        ``child("a").stream("x")`` appears as ``"a/x"``.
        """
        for name, rng in self._streams.items():
            yield prefix + name, rng
        for cname, tree in self._children.items():
            yield from tree.items(f"{prefix}{cname}{_SEP}")

    def resolve(self, scoped: str) -> random.Random:
        """The stream for a scoped name from :meth:`items` (creates the
        path on demand, so restore order never matters)."""
        tree = self
        parts = scoped.split(_SEP)
        for cname in parts[:-1]:
            tree = tree.child(cname)
        return tree.stream(parts[-1])

    # -- snapshot protocol ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Exact generator state of every stream in this subtree."""
        return {
            "root_seed": self.root_seed,
            "streams": {name: rng.getstate()
                        for name, rng in self._streams.items()},
            "children": {name: tree.state_dict()
                         for name, tree in self._children.items()},
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (streams created on demand)."""
        for name, gen_state in state["streams"].items():
            self.stream(name).setstate(_as_random_state(gen_state))
        for name, sub_state in state["children"].items():
            self.child(name).load_state(sub_state)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RngTree(root_seed={self.root_seed}, "
                f"streams={len(self._streams)}, "
                f"children={len(self._children)})")


def _as_random_state(state: Any) -> Tuple:
    """Coerce a (possibly JSON-roundtripped) getstate() back to tuples."""
    version, internal, gauss = state
    return version, tuple(internal), gauss
