"""Deterministic random-stream management.

Every stochastic component draws from its own named child stream derived
from one root seed, so adding a component (or reordering draws inside one)
never perturbs the streams of the others.  This is what makes the benches
reproducible run-to-run and diffable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngTree", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed for stream ``name`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngTree:
    """A factory of named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* object, so a
        component can re-fetch its stream cheaply.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def child(self, name: str) -> "RngTree":
        """A sub-tree whose streams are namespaced under ``name``."""
        return RngTree(derive_seed(self.root_seed, f"tree:{name}"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngTree(root_seed={self.root_seed}, streams={len(self._streams)})"
