"""Statistics primitives shared by every simulated component.

Components own their stat objects and register them in a
:class:`StatsRegistry` so a run harness can dump a flat, named snapshot at
the end of a simulation (this mirrors the per-module counter dumps the
paper's PDES simulator produces).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Accumulator",
    "Histogram",
    "TimeWeighted",
    "StatsRegistry",
    "StatsScope",
    "nest_flat_stats",
]


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}

    def state_dict(self) -> Dict[str, float]:
        return {"value": self.value}

    def load_state(self, state: Dict[str, float]) -> None:
        self.value = state["value"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Streaming mean / min / max / variance over observed samples.

    Uses Welford's algorithm so long runs stay numerically stable.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def snapshot(self) -> Dict[str, float]:
        return {
            f"{self.name}.count": self.count,
            f"{self.name}.mean": self.mean,
            f"{self.name}.min": self.min if self.count else 0.0,
            f"{self.name}.max": self.max if self.count else 0.0,
        }

    def state_dict(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self._mean, "m2": self._m2,
                "min": self.min, "max": self.max, "total": self.total}

    def load_state(self, state: Dict[str, float]) -> None:
        self.count = state["count"]
        self._mean = state["mean"]
        self._m2 = state["m2"]
        self.min = state["min"]
        self.max = state["max"]
        self.total = state["total"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Accumulator({self.name}: n={self.count}, mean={self.mean:.3f})"


class Histogram:
    """A histogram over fixed, caller-supplied bin edges.

    ``edges = [2, 4, 8]`` creates bins (-inf,2], (2,4], (4,8], (8,inf).
    Used for access-granularity distributions (paper Fig 8) and latency
    distributions.
    """

    __slots__ = ("name", "edges", "counts", "count", "_samples_total")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if list(edges) != sorted(edges):
            raise ValueError("histogram edges must be sorted ascending")
        self.name = name
        self.edges = list(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self._samples_total = 0.0

    def add(self, sample: float, weight: int = 1) -> None:
        idx = 0
        for edge in self.edges:
            if sample <= edge:
                break
            idx += 1
        self.counts[idx] += weight
        self.count += weight
        self._samples_total += sample * weight

    @property
    def mean(self) -> float:
        return self._samples_total / self.count if self.count else 0.0

    def fractions(self) -> List[float]:
        """Per-bin share of all samples (sums to 1 when non-empty)."""
        if not self.count:
            return [0.0] * len(self.counts)
        return [c / self.count for c in self.counts]

    def bin_labels(self) -> List[str]:
        labels = []
        prev: Optional[float] = None
        for edge in self.edges:
            labels.append(f"<={edge:g}" if prev is None else f"({prev:g},{edge:g}]")
            prev = edge
        labels.append(f">{prev:g}" if prev is not None else "all")
        return labels

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {f"{self.name}.count": self.count}
        for label, frac in zip(self.bin_labels(), self.fractions()):
            out[f"{self.name}[{label}]"] = frac
        return out

    def state_dict(self) -> Dict[str, object]:
        return {"counts": list(self.counts), "count": self.count,
                "samples_total": self._samples_total}

    def load_state(self, state: Dict[str, object]) -> None:
        self.counts = list(state["counts"])
        self.count = state["count"]
        self._samples_total = state["samples_total"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}, n={self.count})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity.

    Used for utilisation curves: call :meth:`set` whenever the level
    changes; :meth:`average` integrates level x time up to ``now``.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_max_level")

    def __init__(self, name: str, initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._level = initial
        self._last_time = start_time
        self._area = 0.0
        self._max_level = initial

    def set(self, level: float, now: float) -> None:
        if now < self._last_time:
            raise ValueError("time must be monotonically non-decreasing")
        self._area += self._level * (now - self._last_time)
        self._level = level
        self._last_time = now
        if level > self._max_level:
            self._max_level = level

    def adjust(self, delta: float, now: float) -> None:
        self.set(self._level + delta, now)

    @property
    def level(self) -> float:
        return self._level

    @property
    def max_level(self) -> float:
        return self._max_level

    def average(self, now: float) -> float:
        span = now - self._last_time
        area = self._area + self._level * span
        total = now if now > 0 else 0.0
        return area / total if total else self._level

    def snapshot(self) -> Dict[str, float]:
        return {f"{self.name}.level": self._level, f"{self.name}.max": self._max_level}

    def state_dict(self) -> Dict[str, float]:
        return {"level": self._level, "last_time": self._last_time,
                "area": self._area, "max_level": self._max_level}

    def load_state(self, state: Dict[str, float]) -> None:
        self._level = state["level"]
        self._last_time = state["last_time"]
        self._area = state["area"]
        self._max_level = state["max_level"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimeWeighted({self.name}, level={self._level})"


class StatsRegistry:
    """A named collection of stat objects with a flat dump.

    Component constructors take an optional registry; when given, they
    register their stats under ``<component>.<stat>`` names.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, object] = {}

    def register(self, stat) -> "StatsRegistry":
        key = stat.name
        if key in self._stats:
            raise ValueError(f"duplicate stat name {key!r}")
        self._stats[key] = stat
        return self

    def counter(self, name: str) -> Counter:
        stat = Counter(name)
        self.register(stat)
        return stat

    def accumulator(self, name: str) -> Accumulator:
        stat = Accumulator(name)
        self.register(stat)
        return stat

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        stat = Histogram(name, edges)
        self.register(stat)
        return stat

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeighted:
        stat = TimeWeighted(name, initial)
        self.register(stat)
        return stat

    def get(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def names(self) -> List[str]:
        return sorted(self._stats)

    def dump(self) -> Dict[str, float]:
        """Flat {name: value} snapshot of every registered stat."""
        out: Dict[str, float] = {}
        for stat in self._stats.values():
            out.update(stat.snapshot())
        return out

    def dump_nested(self) -> Dict[str, object]:
        """Snapshot as nested dicts keyed by hierarchical path segments.

        ``chip.subring0.mact.requests_in`` becomes
        ``{"chip": {"subring0": {"mact": {"requests_in": value}}}}`` —
        the per-component view the experiment telemetry records alongside
        the flat dump.
        """
        return nest_flat_stats(self.dump())

    def scope(self, prefix: str) -> "StatsScope":
        """A view of this registry that prefixes every name with ``prefix``."""
        return StatsScope(self, prefix)

    def stats(self) -> Dict[str, object]:
        """The live stat objects, keyed by registered name."""
        return dict(self._stats)

    def state_dict(self) -> Dict[str, Dict[str, object]]:
        """Per-stat internal state keyed by registered name (checkpoint)."""
        return {name: stat.state_dict()
                for name, stat in self._stats.items()}

    def load_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Restore :meth:`state_dict` output into the registered stats.

        Every saved name must resolve to an already-registered stat: the
        registry's membership is structural (it is rebuilt by the system
        constructors), only the values travel through a checkpoint.
        """
        for name, stat_state in state.items():
            stat = self._stats.get(name)
            if stat is None:
                raise KeyError(f"checkpoint names unknown stat {name!r}")
            stat.load_state(stat_state)


def nest_flat_stats(flat: Dict[str, float]) -> Dict[str, object]:
    """Fold a flat ``{dotted.name: value}`` dump into nested dicts.

    Histogram bin keys (``name[<=8]``) stay attached to their leaf.  When
    a name is both a leaf and a prefix of deeper names, the scalar is
    stored under the ``"_value"`` key of the inner dict.
    """
    root: Dict[str, object] = {}
    for name, value in flat.items():
        # keep "[...]" bin labels (which may contain dots) atomic
        bracket = name.find("[")
        head = name if bracket < 0 else name[:bracket]
        parts = head.split(".")
        if bracket >= 0:
            parts[-1] += name[bracket:]
        node = root
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = {} if nxt is None else {"_value": nxt}
                node[part] = nxt
            node = nxt
        leaf = parts[-1]
        existing = node.get(leaf)
        if isinstance(existing, dict):
            existing["_value"] = value
        else:
            node[leaf] = value
    return root


class StatsScope:
    """A path-scoped view of a :class:`StatsRegistry`.

    Components hold one of these (``component.stats``) so every stat they
    create is registered under ``<component path>.<stat name>`` in the
    shared registry.  The factory API mirrors :class:`StatsRegistry`, so a
    scope can be passed anywhere a registry is expected.
    """

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: StatsRegistry, prefix: str = "") -> None:
        self.registry = registry
        self.prefix = prefix

    def qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def register(self, stat) -> "StatsScope":
        stat.name = self.qualify(stat.name)
        self.registry.register(stat)
        return self

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self.qualify(name))

    def accumulator(self, name: str) -> Accumulator:
        return self.registry.accumulator(self.qualify(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        return self.registry.histogram(self.qualify(name), edges)

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeighted:
        return self.registry.time_weighted(self.qualify(name), initial)

    def scope(self, name: str) -> "StatsScope":
        return StatsScope(self.registry, self.qualify(name))

    def __repr__(self) -> str:  # pragma: no cover
        return f"StatsScope({self.prefix!r})"
