"""Tiny RISC ISA: instruction set, assembler, functional machine, kernels."""

from .assembler import Program, assemble
from .instructions import Instruction, NUM_REGISTERS, Op, OpClass
from .machine import ExecutedInstr, FlatMemory, Machine

__all__ = [
    "Op",
    "OpClass",
    "Instruction",
    "NUM_REGISTERS",
    "Program",
    "assemble",
    "Machine",
    "FlatMemory",
    "ExecutedInstr",
]
