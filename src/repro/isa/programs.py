"""Library of assembly kernels used by tests, examples, and workloads.

Each kernel documents its calling convention (which registers hold inputs
and outputs, where data lives in memory).  Helper functions stage data into
a :class:`~repro.isa.machine.FlatMemory`.  These kernels are small versions
of the inner loops of the paper's six HTC micro-benchmarks — KMP string
matching, counting (WordCount), key comparison (TeraSort), and distance
accumulation (K-means) — so the timing model can be driven by genuine
instruction streams.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .assembler import Program, assemble
from .machine import FlatMemory, Machine

__all__ = [
    "load_words",
    "read_words",
    "sum_array_program",
    "memcpy_program",
    "histogram_program",
    "kmp_search_program",
    "kmp_failure_table",
    "dot_product_program",
    "strchr_count_program",
    "fibonacci_program",
]

WORD = 8  # the kernels operate on 64-bit words unless stated otherwise


def load_words(memory: FlatMemory, addr: int, values: Iterable[int]) -> int:
    """Store ``values`` as consecutive 64-bit words; returns bytes written."""
    count = 0
    for i, value in enumerate(values):
        memory.write(addr + i * WORD, value & ((1 << 64) - 1), WORD)
        count += 1
    return count * WORD


def read_words(memory: FlatMemory, addr: int, count: int) -> List[int]:
    """Read ``count`` consecutive 64-bit words (unsigned)."""
    return [memory.read(addr + i * WORD, WORD) for i in range(count)]


def sum_array_program() -> Program:
    """Sum ``r2`` 64-bit words starting at address ``r1``; result in ``r3``."""
    return assemble(
        """
        # r1 = base, r2 = count, r3 = accumulator, r4 = end address
        slli r4, r2, 3
        add  r4, r4, r1
        addi r3, r0, 0
    loop:
        bge  r1, r4, done
        ld   r5, 0(r1)
        add  r3, r3, r5
        addi r1, r1, 8
        jal  r0, loop
    done:
        halt
        """,
        name="sum_array",
    )


def memcpy_program() -> Program:
    """Copy ``r3`` bytes from ``r1`` to ``r2`` (byte loop)."""
    return assemble(
        """
        # r1 = src, r2 = dst, r3 = len
        addi r4, r0, 0
    loop:
        bge  r4, r3, done
        add  r5, r1, r4
        lb   r6, 0(r5)
        add  r7, r2, r4
        sb   r6, 0(r7)
        addi r4, r4, 1
        jal  r0, loop
    done:
        halt
        """,
        name="memcpy",
    )


def histogram_program() -> Program:
    """Byte-value histogram: counts ``r2`` bytes at ``r1`` into 256 64-bit
    buckets at ``r3`` (WordCount's counting inner loop)."""
    return assemble(
        """
        # r1 = data, r2 = len, r3 = buckets (256 x 8B, zeroed)
        addi r4, r0, 0
    loop:
        bge  r4, r2, done
        add  r5, r1, r4
        lb   r6, 0(r5)
        andi r6, r6, 255
        slli r6, r6, 3
        add  r6, r6, r3
        ld   r7, 0(r6)
        addi r7, r7, 1
        sd   r7, 0(r6)
        addi r4, r4, 1
        jal  r0, loop
    done:
        halt
        """,
        name="histogram",
    )


def kmp_failure_table(pattern: bytes) -> List[int]:
    """Classic KMP failure function, computed host-side (the paper's
    runtime also prepares it once per pattern)."""
    fail = [0] * len(pattern)
    k = 0
    for i in range(1, len(pattern)):
        while k > 0 and pattern[i] != pattern[k]:
            k = fail[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        fail[i] = k
    return fail


def kmp_search_program() -> Program:
    """KMP scan loop.

    Inputs: ``r1``=text, ``r2``=text len, ``r3``=pattern, ``r4``=pattern
    len, ``r5``=failure table (64-bit words).  Output: ``r10`` = match
    count.  This is the paper's KMP micro-benchmark inner loop: byte loads
    dominate, which is why its access granularity is tiny (Fig 8).
    """
    return assemble(
        """
        # r6 = i (text idx), r7 = k (pattern idx), r10 = matches
        addi r6, r0, 0
        addi r7, r0, 0
        addi r10, r0, 0
    scan:
        bge  r6, r2, done
        add  r8, r1, r6
        lb   r8, 0(r8)          # text[i]
        add  r9, r3, r7
        lb   r9, 0(r9)          # pattern[k]
        beq  r8, r9, matched
        beq  r7, r0, advance    # k == 0: move i
        addi r7, r7, -1
        slli r11, r7, 3
        add  r11, r11, r5
        ld   r7, 0(r11)         # k = fail[k-1]
        jal  r0, scan
    matched:
        addi r7, r7, 1
        addi r6, r6, 1
        blt  r7, r4, scan
        addi r10, r10, 1        # full match
        addi r7, r7, -1
        slli r11, r7, 3
        add  r11, r11, r5
        ld   r7, 0(r11)         # k = fail[m-1]
        jal  r0, scan
    advance:
        addi r6, r6, 1
        jal  r0, scan
    done:
        halt
        """,
        name="kmp_search",
    )


def dot_product_program() -> Program:
    """Dot product of two ``r3``-element word vectors at ``r1``/``r2``;
    result in ``r10`` (K-means distance accumulation kernel)."""
    return assemble(
        """
        addi r4, r0, 0
        addi r10, r0, 0
    loop:
        bge  r4, r3, done
        slli r5, r4, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        add  r6, r2, r5
        ld   r8, 0(r6)
        mul  r7, r7, r8
        add  r10, r10, r7
        addi r4, r4, 1
        jal  r0, loop
    done:
        halt
        """,
        name="dot_product",
    )


def strchr_count_program() -> Program:
    """Count occurrences of byte ``r3`` in ``r2`` bytes at ``r1``;
    result in ``r10`` (Search's term-scan primitive)."""
    return assemble(
        """
        addi r4, r0, 0
        addi r10, r0, 0
    loop:
        bge  r4, r2, done
        add  r5, r1, r4
        lb   r6, 0(r5)
        addi r4, r4, 1
        bne  r6, r3, loop
        addi r10, r10, 1
        jal  r0, loop
    done:
        halt
        """,
        name="strchr_count",
    )


def fibonacci_program() -> Program:
    """Iterative Fibonacci of ``r1``; result in ``r10``.  Pure-ALU control
    benchmark (no memory traffic) used to test pipelines without misses."""
    return assemble(
        """
        addi r2, r0, 0          # a
        addi r3, r0, 1          # b
        addi r4, r0, 0          # i
    loop:
        bge  r4, r1, done
        add  r5, r2, r3
        add  r2, r0, r3
        add  r3, r0, r5
        addi r4, r4, 1
        jal  r0, loop
    done:
        add  r10, r0, r2
        halt
        """,
        name="fibonacci",
    )
