"""Instruction set definition for the SmarCo reproduction.

The TCG cores in the paper implement an ARM11-like in-order ISA.  We model
a small load/store RISC ISA that is sufficient to express the paper's
micro-benchmarks (string matching, counting, sorting kernels) and — more
importantly — to drive the cycle-approximate pipeline with *real*
instruction streams in tests and examples.

There is no binary encoding: the assembler produces :class:`Instruction`
objects directly and the machine interprets them.  What matters for the
architecture study is each instruction's *class* (ALU / load / store /
branch) and its memory footprint (address, size).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["OpClass", "Op", "Instruction", "NUM_REGISTERS", "OP_INFO"]

NUM_REGISTERS = 32


class OpClass(enum.Enum):
    """Pipeline-visible instruction class."""

    ALU = "alu"
    MUL = "mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYS = "sys"


class Op(enum.Enum):
    """Mnemonics.  The value is the assembly spelling."""

    # ALU register-register
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"          # set if less-than (signed)
    SLTU = "sltu"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # ALU immediate
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    LUI = "lui"          # load upper immediate (rd = imm << 12)
    # Memory (size suffix: b=1, h=2, w=4, d=8 bytes)
    LB = "lb"
    LH = "lh"
    LW = "lw"
    LD = "ld"
    SB = "sb"
    SH = "sh"
    SW = "sw"
    SD = "sd"
    # Control flow
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JAL = "jal"          # rd = pc+1; pc = target
    JALR = "jalr"        # rd = pc+1; pc = rs1 + imm
    # System
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    op_class: OpClass
    mem_bytes: int = 0           # access size for loads/stores
    latency: int = 1             # execution latency in cycles (ALU view)


OP_INFO = {
    Op.ADD: OpInfo(OpClass.ALU), Op.SUB: OpInfo(OpClass.ALU),
    Op.AND: OpInfo(OpClass.ALU), Op.OR: OpInfo(OpClass.ALU),
    Op.XOR: OpInfo(OpClass.ALU), Op.SLT: OpInfo(OpClass.ALU),
    Op.SLTU: OpInfo(OpClass.ALU), Op.SLL: OpInfo(OpClass.ALU),
    Op.SRL: OpInfo(OpClass.ALU), Op.SRA: OpInfo(OpClass.ALU),
    Op.MUL: OpInfo(OpClass.MUL, latency=3),
    Op.DIV: OpInfo(OpClass.MUL, latency=12),
    Op.REM: OpInfo(OpClass.MUL, latency=12),
    Op.ADDI: OpInfo(OpClass.ALU), Op.ANDI: OpInfo(OpClass.ALU),
    Op.ORI: OpInfo(OpClass.ALU), Op.XORI: OpInfo(OpClass.ALU),
    Op.SLTI: OpInfo(OpClass.ALU), Op.SLLI: OpInfo(OpClass.ALU),
    Op.SRLI: OpInfo(OpClass.ALU), Op.LUI: OpInfo(OpClass.ALU),
    Op.LB: OpInfo(OpClass.LOAD, mem_bytes=1), Op.LH: OpInfo(OpClass.LOAD, mem_bytes=2),
    Op.LW: OpInfo(OpClass.LOAD, mem_bytes=4), Op.LD: OpInfo(OpClass.LOAD, mem_bytes=8),
    Op.SB: OpInfo(OpClass.STORE, mem_bytes=1), Op.SH: OpInfo(OpClass.STORE, mem_bytes=2),
    Op.SW: OpInfo(OpClass.STORE, mem_bytes=4), Op.SD: OpInfo(OpClass.STORE, mem_bytes=8),
    Op.BEQ: OpInfo(OpClass.BRANCH), Op.BNE: OpInfo(OpClass.BRANCH),
    Op.BLT: OpInfo(OpClass.BRANCH), Op.BGE: OpInfo(OpClass.BRANCH),
    Op.JAL: OpInfo(OpClass.JUMP), Op.JALR: OpInfo(OpClass.JUMP),
    Op.NOP: OpInfo(OpClass.SYS), Op.HALT: OpInfo(OpClass.SYS),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields are used positionally per op-format:

    * ALU r-r:    ``rd, rs1, rs2``
    * ALU imm:    ``rd, rs1, imm``
    * load:       ``rd, rs1, imm``  (addr = R[rs1] + imm)
    * store:      ``rs2, rs1, imm`` (mem[R[rs1]+imm] = R[rs2])
    * branch:     ``rs1, rs2, imm`` (imm = absolute target index)
    * jal:        ``rd, imm``
    * jalr:       ``rd, rs1, imm``
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: Optional[str] = None        # symbolic target before linking

    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.op]

    @property
    def op_class(self) -> OpClass:
        return OP_INFO[self.op].op_class

    @property
    def is_mem(self) -> bool:
        return self.op_class in (OpClass.LOAD, OpClass.STORE)

    def __str__(self) -> str:
        cls = self.op_class
        m = self.op.value
        if cls in (OpClass.LOAD,):
            return f"{m} r{self.rd}, {self.imm}(r{self.rs1})"
        if cls is OpClass.STORE:
            return f"{m} r{self.rs2}, {self.imm}(r{self.rs1})"
        if cls is OpClass.BRANCH:
            tgt = self.label if self.label is not None else self.imm
            return f"{m} r{self.rs1}, r{self.rs2}, {tgt}"
        if self.op is Op.JAL:
            tgt = self.label if self.label is not None else self.imm
            return f"{m} r{self.rd}, {tgt}"
        if self.op is Op.JALR:
            return f"{m} r{self.rd}, r{self.rs1}, {self.imm}"
        if self.op in (Op.NOP, Op.HALT):
            return m
        if self.op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLLI, Op.SRLI):
            return f"{m} r{self.rd}, r{self.rs1}, {self.imm}"
        if self.op is Op.LUI:
            return f"{m} r{self.rd}, {self.imm}"
        return f"{m} r{self.rd}, r{self.rs1}, r{self.rs2}"
