"""Functional (architectural) executor for the tiny RISC ISA.

The :class:`Machine` executes a :class:`~repro.isa.assembler.Program`
against a flat byte-addressable memory and, as a side product, can record
the retired-instruction stream as :class:`ExecutedInstr` records.  Those
records are exactly what the cycle-approximate TCG pipeline consumes, so
tests can drive the timing model with *real* programs instead of synthetic
traces.

Values are 64-bit two's-complement.  ``r0`` reads as zero and ignores
writes, RISC-style.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, NamedTuple, Optional

from ..errors import MachineError
from .assembler import Program
from .instructions import Instruction, NUM_REGISTERS, Op, OpClass

__all__ = ["ExecutedInstr", "FlatMemory", "Machine"]

_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


class ExecutedInstr(NamedTuple):
    """One retired instruction, as seen by the timing model."""

    pc: int
    op: Op
    op_class: OpClass
    addr: Optional[int]      # effective address for loads/stores
    size: int                # bytes moved (0 for non-memory)
    taken: bool              # branch outcome (False for non-branches)
    reads: tuple             # source register numbers
    writes: tuple            # destination register numbers


class FlatMemory:
    """Sparse byte-addressable memory backed by a dict of 4KB pages."""

    PAGE = 4096

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        page = self._pages.get(addr // self.PAGE)
        if page is None:
            page = bytearray(self.PAGE)
            self._pages[addr // self.PAGE] = page
        return page

    def read(self, addr: int, size: int) -> int:
        """Little-endian unsigned read of ``size`` bytes."""
        if addr < 0:
            raise MachineError(f"negative address {addr:#x}")
        out = 0
        for i in range(size):
            a = addr + i
            out |= self._page(a)[a % self.PAGE] << (8 * i)
        return out

    def write(self, addr: int, value: int, size: int) -> None:
        if addr < 0:
            raise MachineError(f"negative address {addr:#x}")
        for i in range(size):
            a = addr + i
            self._page(a)[a % self.PAGE] = (value >> (8 * i)) & 0xFF

    def write_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            a = addr + i
            self._page(a)[a % self.PAGE] = byte

    def read_bytes(self, addr: int, size: int) -> bytes:
        return bytes(self._page(addr + i)[(addr + i) % self.PAGE] for i in range(size))

    @property
    def touched_pages(self) -> int:
        return len(self._pages)


class Machine:
    """Architectural interpreter.

    ``step()`` retires one instruction; ``run()`` executes until HALT or an
    instruction budget is exhausted.  An optional ``on_retire`` callback
    receives every :class:`ExecutedInstr` (used to feed timing models).
    """

    def __init__(
        self,
        program: Program,
        memory: Optional[FlatMemory] = None,
        on_retire: Optional[Callable[[ExecutedInstr], None]] = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else FlatMemory()
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self.retired = 0
        self.on_retire = on_retire

    # -- register helpers ----------------------------------------------------

    def read_reg(self, idx: int) -> int:
        return 0 if idx == 0 else _to_signed(self.regs[idx])

    def write_reg(self, idx: int, value: int) -> None:
        if idx != 0:
            self.regs[idx] = value & _MASK64

    # -- execution -----------------------------------------------------------

    def step(self) -> Optional[ExecutedInstr]:
        """Retire one instruction; returns its record, or None if halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program):
            raise MachineError(f"pc {self.pc} outside program of {len(self.program)}")
        instr = self.program[self.pc]
        record = self._execute(instr)
        self.retired += 1
        if self.on_retire is not None:
            self.on_retire(record)
        return record

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until HALT; returns instructions retired by this call."""
        start = self.retired
        while not self.halted:
            if self.retired - start >= max_instructions:
                raise MachineError(
                    f"instruction budget {max_instructions} exhausted "
                    f"(runaway program {self.program.name!r}?)"
                )
            self.step()
        return self.retired - start

    def trace(self, max_instructions: int = 10_000_000) -> Iterator[ExecutedInstr]:
        """Generator over retired instructions until HALT."""
        count = 0
        while not self.halted:
            if count >= max_instructions:
                raise MachineError("instruction budget exhausted")
            record = self.step()
            if record is not None:
                count += 1
                yield record

    # -- per-instruction semantics -------------------------------------------

    def _execute(self, instr: Instruction) -> ExecutedInstr:
        op = instr.op
        pc = self.pc
        next_pc = pc + 1
        addr: Optional[int] = None
        size = 0
        taken = False
        reads: tuple = ()
        writes: tuple = ()
        r = self.read_reg

        if op in _ALU_RR:
            result = _ALU_RR[op](r(instr.rs1), r(instr.rs2))
            self.write_reg(instr.rd, result)
            reads, writes = (instr.rs1, instr.rs2), (instr.rd,)
        elif op in _ALU_RI:
            result = _ALU_RI[op](r(instr.rs1), instr.imm)
            self.write_reg(instr.rd, result)
            reads, writes = (instr.rs1,), (instr.rd,)
        elif op is Op.LUI:
            self.write_reg(instr.rd, instr.imm << 12)
            writes = (instr.rd,)
        elif instr.op_class is OpClass.LOAD:
            size = instr.info.mem_bytes
            addr = r(instr.rs1) + instr.imm
            value = self.memory.read(addr, size)
            # sign-extend loads (the kernels only need signed semantics)
            sign_bit = 1 << (8 * size - 1)
            if value & sign_bit:
                value -= 1 << (8 * size)
            self.write_reg(instr.rd, value)
            reads, writes = (instr.rs1,), (instr.rd,)
        elif instr.op_class is OpClass.STORE:
            size = instr.info.mem_bytes
            addr = r(instr.rs1) + instr.imm
            self.memory.write(addr, r(instr.rs2) & _MASK64, size)
            reads = (instr.rs1, instr.rs2)
        elif instr.op_class is OpClass.BRANCH:
            taken = _BRANCH[op](r(instr.rs1), r(instr.rs2))
            if taken:
                next_pc = instr.imm
            reads = (instr.rs1, instr.rs2)
        elif op is Op.JAL:
            self.write_reg(instr.rd, pc + 1)
            next_pc = instr.imm
            taken = True
            writes = (instr.rd,)
        elif op is Op.JALR:
            self.write_reg(instr.rd, pc + 1)
            next_pc = r(instr.rs1) + instr.imm
            taken = True
            reads, writes = (instr.rs1,), (instr.rd,)
        elif op is Op.NOP:
            pass
        elif op is Op.HALT:
            self.halted = True
        else:  # pragma: no cover - all ops handled above
            raise MachineError(f"unimplemented op {op}")

        self.pc = next_pc
        return ExecutedInstr(pc, op, instr.op_class, addr, size, taken, reads, writes)


def _shamt(value: int) -> int:
    return value & 63


_ALU_RR = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SLT: lambda a, b: int(a < b),
    Op.SLTU: lambda a, b: int((a & _MASK64) < (b & _MASK64)),
    Op.SLL: lambda a, b: a << _shamt(b),
    Op.SRL: lambda a, b: (a & _MASK64) >> _shamt(b),
    Op.SRA: lambda a, b: a >> _shamt(b),
    Op.MUL: lambda a, b: a * b,
    Op.DIV: lambda a, b: int(a / b) if b else -1,
    Op.REM: lambda a, b: a - int(a / b) * b if b else a,
}

_ALU_RI = {
    Op.ADDI: lambda a, i: a + i,
    Op.ANDI: lambda a, i: a & i,
    Op.ORI: lambda a, i: a | i,
    Op.XORI: lambda a, i: a ^ i,
    Op.SLTI: lambda a, i: int(a < i),
    Op.SLLI: lambda a, i: a << _shamt(i),
    Op.SRLI: lambda a, i: (a & _MASK64) >> _shamt(i),
}

_BRANCH = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}
