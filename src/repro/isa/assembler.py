"""Two-pass assembler for the tiny RISC ISA.

Syntax (one instruction per line)::

    # comment
    loop:                       ; labels end with ':'
        lw   r2, 0(r1)          ; load word
        addi r1, r1, 4
        add  r3, r3, r2
        bne  r1, r4, loop       ; branch to label
        halt

Registers are ``r0``..``r31`` (``r0`` is hardwired zero).  Branch/JAL
targets may be labels or absolute instruction indices.  Immediates accept
decimal and ``0x`` hex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError
from .instructions import NUM_REGISTERS, Instruction, Op, OpClass

__all__ = ["Program", "assemble"]

_MNEMONICS = {op.value: op for op in Op}
_MEM_OPERAND = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((r\d+)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")


@dataclass
class Program:
    """An assembled program: instructions plus the label map."""

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    def disassemble(self) -> str:
        """Human-readable listing with label annotations."""
        by_index: Dict[int, List[str]] = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i:4d}: {instr}")
        return "\n".join(lines)


def _parse_register(token: str, lineno: int) -> int:
    if not token.startswith("r"):
        raise AssemblerError(f"line {lineno}: expected register, got {token!r}")
    try:
        num = int(token[1:])
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad register {token!r}") from None
    if not 0 <= num < NUM_REGISTERS:
        raise AssemblerError(f"line {lineno}: register {token!r} out of range")
    return num


def _parse_imm(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad immediate {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Raises :class:`AssemblerError` with the offending line number on any
    syntax problem, including undefined labels.
    """
    labels: Dict[str, int] = {}
    pending: List[Tuple[int, Optional[str], List[str]]] = []

    # Pass 1: strip comments, collect labels, tokenize.
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#")[0].split(";")[0].strip()
        if not line:
            continue
        while True:
            match = _LABEL_DEF.match(line.split()[0]) if line else None
            if match is None:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(pending)
            line = line[len(match.group(0)):].strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        pending.append((lineno, mnemonic, operands))

    # Pass 2: encode with label resolution.
    instructions: List[Instruction] = []
    for lineno, mnemonic, ops in pending:
        op = _MNEMONICS.get(mnemonic)
        if op is None:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        instructions.append(_encode(op, ops, lineno, labels))

    return Program(instructions, labels, name)


def _resolve_target(token: str, lineno: int, labels: Dict[str, int]) -> Tuple[int, Optional[str]]:
    if token in labels:
        return labels[token], token
    try:
        return int(token, 0), None
    except ValueError:
        raise AssemblerError(f"line {lineno}: undefined label {token!r}") from None


def _encode(op: Op, ops: List[str], lineno: int, labels: Dict[str, int]) -> Instruction:
    cls = op.value
    info_class = Instruction(op).op_class

    def need(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"line {lineno}: {cls!r} expects {n} operands, got {len(ops)}"
            )

    if op in (Op.NOP, Op.HALT):
        need(0)
        return Instruction(op)

    if info_class is OpClass.LOAD:
        need(2)
        rd = _parse_register(ops[0], lineno)
        match = _MEM_OPERAND.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblerError(f"line {lineno}: bad memory operand {ops[1]!r}")
        return Instruction(op, rd=rd, rs1=_parse_register(match.group(2), lineno),
                           imm=int(match.group(1), 0))

    if info_class is OpClass.STORE:
        need(2)
        rs2 = _parse_register(ops[0], lineno)
        match = _MEM_OPERAND.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblerError(f"line {lineno}: bad memory operand {ops[1]!r}")
        return Instruction(op, rs2=rs2, rs1=_parse_register(match.group(2), lineno),
                           imm=int(match.group(1), 0))

    if info_class is OpClass.BRANCH:
        need(3)
        rs1 = _parse_register(ops[0], lineno)
        rs2 = _parse_register(ops[1], lineno)
        imm, label = _resolve_target(ops[2], lineno, labels)
        return Instruction(op, rs1=rs1, rs2=rs2, imm=imm, label=label)

    if op is Op.JAL:
        need(2)
        rd = _parse_register(ops[0], lineno)
        imm, label = _resolve_target(ops[1], lineno, labels)
        return Instruction(op, rd=rd, imm=imm, label=label)

    if op is Op.JALR:
        need(3)
        return Instruction(op, rd=_parse_register(ops[0], lineno),
                           rs1=_parse_register(ops[1], lineno),
                           imm=_parse_imm(ops[2], lineno))

    if op is Op.LUI:
        need(2)
        return Instruction(op, rd=_parse_register(ops[0], lineno),
                           imm=_parse_imm(ops[1], lineno))

    if op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLLI, Op.SRLI):
        need(3)
        return Instruction(op, rd=_parse_register(ops[0], lineno),
                           rs1=_parse_register(ops[1], lineno),
                           imm=_parse_imm(ops[2], lineno))

    # remaining: ALU / MUL register-register forms
    need(3)
    return Instruction(op, rd=_parse_register(ops[0], lineno),
                       rs1=_parse_register(ops[1], lineno),
                       rs2=_parse_register(ops[2], lineno))
