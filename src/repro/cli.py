"""Command-line interface: run SmarCo experiments from a shell.

Installed as ``repro-smarco`` (see pyproject) or runnable via
``python -m repro.cli``::

    repro-smarco list-workloads
    repro-smarco run kmp --sub-rings 4 --instrs 300
    repro-smarco xeon kmp --threads 48
    repro-smarco compare wordcount --energy
    repro-smarco run kmp --energy --dvfs eco --power-gate
    repro-smarco sweep kmp --kind compare --dvfs-points eco nominal turbo
    repro-smarco traffic kmp --chips 4 --load 0.8 --arrival bursty
    repro-smarco sweep kmp wordcount --seeds 0 1 2 --workers 2
    repro-smarco sweep kmp --kind sched --sched-policies laxity fifo
    repro-smarco sweep kmp --kind traffic --loads 0.5 0.7 0.9
    repro-smarco sweep kmp --warm-start --warm-cycles 2000 \
        --run-cycles 4000 8000 16000
    repro-smarco checkpoint save chip.ckpt.gz --cycles 5000
    repro-smarco checkpoint info chip.ckpt.gz
    repro-smarco checkpoint restore chip.ckpt.gz
    repro-smarco policies list
    repro-smarco report
    repro-smarco area-power
    repro-smarco cdn

Every run-shaped command builds a :class:`repro.exp.RunRequest` and goes
through the unified ``repro.chip.run.execute`` entry point; ``sweep``
fans a request grid across worker processes (``--workers``, defaulting
to the ``REPRO_WORKERS`` environment variable) with result caching.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import render_result, render_table
from .chip.run import execute, run_xeon
from .config import AuditConfig, smarco_scaled
from .exp import ExperimentSpec, RunRequest
from .power import NODES, AreaModel, PowerModel, dvfs_summaries, list_dvfs
from .workloads import CdnModel, all_profiles

__all__ = ["main", "build_parser"]


class _DumpDocsAction(argparse.Action):
    """``--dump-docs``: print the markdown CLI reference and exit.

    Behaves like ``--help`` (no subcommand required) so the docs tree can
    be regenerated with ``python -m repro.cli --dump-docs > docs/cli.md``.
    """

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0,
                         default=argparse.SUPPRESS, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from .docgen import render_cli_docs

        print(render_cli_docs(parser), end="")
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smarco",
        description="SmarCo (HPCA 2018) many-core simulator",
    )
    parser.add_argument("--dump-docs", action=_DumpDocsAction,
                        help="print a markdown reference for every "
                             "subcommand (generates docs/cli.md) and exit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list available workload profiles")

    run_p = sub.add_parser("run", help="run a workload on a SmarCo chip")
    run_p.add_argument("workload")
    run_p.add_argument("--sub-rings", type=int, default=4)
    run_p.add_argument("--cores", type=int, default=16,
                       help="cores per sub-ring")
    run_p.add_argument("--threads-per-core", type=int, default=8)
    run_p.add_argument("--instrs", type=int, default=300,
                       help="instructions per thread")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--policy", default="inpair",
                       choices=("inpair", "blocking", "coarse"))
    run_p.add_argument("--shared-code", action="store_true",
                       help="DMA-prefetch the instruction segment (3.1.2)")
    run_p.add_argument("--trace-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="fraction of requests to hop-trace (0 disables; "
                            "prints the per-stage latency breakdown)")
    run_p.add_argument("--audit", action="store_true",
                       help="enable the runtime invariant audit layer "
                            "(fails loudly on any violation; results are "
                            "identical to an unaudited run)")
    run_p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard the chip across simulation domains: "
                            "1 = in-process (bit-identical to serial), "
                            "N>=2 = that many worker processes; defaults "
                            "to $REPRO_SHARDS, else the serial engine")
    run_p.add_argument("--quantum", type=float, default=None,
                       metavar="CYCLES",
                       help="conservative sync window for sharded runs "
                            "(default: the largest safe window, the "
                            "bridge latency; 0 = sequential instant mode)")
    run_p.add_argument("--dvfs", default="nominal", choices=list_dvfs(),
                       help="DVFS operating point for energy accounting "
                            "(observation-only: simulated cycles are "
                            "unchanged)")
    run_p.add_argument("--node", type=int, default=None,
                       choices=sorted(NODES), metavar="NM",
                       help="technology node for energy accounting "
                            "(default: the config's, 32 nm)")
    run_p.add_argument("--power-gate", action="store_true",
                       help="shed the static share of sub-rings whose "
                            "cores retired nothing")
    run_p.add_argument("--energy", action="store_true",
                       help="print the activity-proportional energy "
                            "report after the run")

    xeon_p = sub.add_parser("xeon", help="run a workload on the Xeon baseline")
    xeon_p.add_argument("workload")
    xeon_p.add_argument("--threads", type=int, default=48)
    xeon_p.add_argument("--instrs", type=int, default=30_000)
    xeon_p.add_argument("--seed", type=int, default=0)

    cmp_p = sub.add_parser("compare",
                           help="SmarCo vs Xeon (one Fig 22 data point)")
    cmp_p.add_argument("workload")
    cmp_p.add_argument("--sub-rings", type=int, default=4)
    cmp_p.add_argument("--instrs", type=int, default=250)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--dvfs", default="nominal", choices=list_dvfs(),
                       help="DVFS operating point for the energy columns")
    cmp_p.add_argument("--node", type=int, default=None,
                       choices=sorted(NODES), metavar="NM",
                       help="technology node (40 reproduces Fig 26's "
                            "prototype comparison)")
    cmp_p.add_argument("--energy", action="store_true",
                       help="print the activity-proportional energy "
                            "report after the comparison")

    traffic_p = sub.add_parser(
        "traffic",
        help="drive open-loop traffic through a cluster of chips and "
             "report tail latency against SLO targets")
    traffic_p.add_argument("workload", nargs="?", default="kmp")
    traffic_p.add_argument("--list", action="store_true",
                           help="list registered arrival processes and "
                                "balancers, then exit")
    traffic_p.add_argument("--arrival", default="poisson",
                           help="arrival process name (see --list)")
    traffic_p.add_argument("--balancer", default="least-outstanding",
                           help="front-end balancer name (see --list)")
    traffic_p.add_argument("--chips", type=int, default=2,
                           help="chips behind the front end")
    traffic_p.add_argument("--load", type=float, default=0.7,
                           help="offered load rho as a fraction of "
                                "calibrated cluster capacity")
    traffic_p.add_argument("--requests", type=int, default=2000,
                           help="requests the arrival process generates")
    traffic_p.add_argument("--instrs", type=int, default=400,
                           help="instructions of service demand per request")
    traffic_p.add_argument("--slo", type=float, nargs="+",
                           default=[2.0, 5.0, 10.0], metavar="MULT",
                           help="SLO targets as multiples of the "
                                "calibrated solo service time")
    traffic_p.add_argument("--seed", type=int, default=0)
    traffic_p.add_argument("--sub-rings", type=int, default=2,
                           help="sub-rings of the calibration chip")
    traffic_p.add_argument("--cores", type=int, default=4,
                           help="cores per sub-ring of the calibration chip")

    sweep_p = sub.add_parser(
        "sweep",
        help="run a workload x seed x policy grid through the parallel "
             "experiment runner (cached, multi-process)")
    sweep_p.add_argument("workloads", nargs="+")
    sweep_p.add_argument("--kind", default="smarco",
                         choices=("smarco", "xeon", "compare", "tcg",
                                  "sched", "traffic"))
    sweep_p.add_argument("--name", default="cli-sweep",
                         help="spec name (labels the telemetry records)")
    sweep_p.add_argument("--seeds", type=int, nargs="+", default=[0])
    sweep_p.add_argument("--policies", nargs="+", default=None,
                         choices=("inpair", "blocking", "coarse"),
                         help="add a core-policy axis to the grid")
    sweep_p.add_argument("--sub-rings", type=int, default=2)
    sweep_p.add_argument("--cores", type=int, default=8,
                         help="cores per sub-ring")
    sweep_p.add_argument("--threads-per-core", type=int, default=8)
    sweep_p.add_argument("--instrs", type=int, default=200,
                         help="instructions per thread (SmarCo side)")
    sweep_p.add_argument("--xeon-threads", type=int, default=16)
    sweep_p.add_argument("--xeon-instrs", type=int, default=10_000)
    sweep_p.add_argument("--sched-policies", nargs="+", default=None,
                         metavar="POLICY",
                         help="scheduler policies to race (--kind sched; "
                              "default: every registered policy)")
    sweep_p.add_argument("--scenarios", nargs="+", default=None,
                         metavar="SCENARIO",
                         help="adversarial scenarios to race through "
                              "(--kind sched; default: every registered "
                              "scenario)")
    sweep_p.add_argument("--tasks", type=int, default=128,
                         help="tasks per sched run (--kind sched)")
    sweep_p.add_argument("--contexts", type=int, default=64,
                         help="thread contexts per sched run (--kind sched)")
    sweep_p.add_argument("--arrivals", nargs="+", default=None,
                         metavar="ARRIVAL",
                         help="arrival processes to sweep (--kind traffic; "
                              "default: every registered process)")
    sweep_p.add_argument("--balancers", nargs="+", default=None,
                         metavar="BALANCER",
                         help="front-end balancers to sweep (--kind "
                              "traffic; default: every registered balancer)")
    sweep_p.add_argument("--loads", type=float, nargs="+",
                         default=[0.5, 0.7, 0.9], metavar="RHO",
                         help="offered-load axis (--kind traffic)")
    sweep_p.add_argument("--chips", type=int, default=2,
                         help="chips behind the front end (--kind traffic)")
    sweep_p.add_argument("--requests", type=int, default=2000,
                         help="requests per traffic run (--kind traffic)")
    sweep_p.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: $REPRO_WORKERS, "
                              "else serial)")
    sweep_p.add_argument("--out", default="results",
                         help="base directory for runs/ and cache/")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="always re-simulate, never read/write cache")
    sweep_p.add_argument("--detail", action="store_true",
                         help="print the full result of every point")
    sweep_p.add_argument("--run-cycles", type=float, nargs="+", default=None,
                         metavar="CYCLES",
                         help="add a measurement-horizon axis: simulate "
                              "each point to at most CYCLES cycles")
    sweep_p.add_argument("--warm-start", action="store_true",
                         help="share one post-warmup checkpoint across the "
                              "--run-cycles horizons of each point "
                              "(requires --warm-cycles and --run-cycles)")
    sweep_p.add_argument("--warm-cycles", type=float, default=0.0,
                         metavar="CYCLES",
                         help="cycle at which --warm-start snapshots the "
                              "shared warm-up prefix")
    sweep_p.add_argument("--dvfs-points", nargs="+", default=None,
                         choices=list_dvfs(), metavar="POINT",
                         help="add a DVFS operating-point axis to the "
                              "grid (kinds smarco/compare; observation-"
                              "only but a cache-key axis)")
    sweep_p.add_argument("--nodes", type=int, nargs="+", default=None,
                         choices=sorted(NODES), metavar="NM",
                         help="add a technology-node axis to the grid "
                              "(kinds smarco/compare)")
    sweep_p.add_argument("--power-gate", action="store_true",
                         help="bill idle sub-rings as power-gated in "
                              "every point's energy report")

    ckpt_p = sub.add_parser(
        "checkpoint",
        help="save, inspect and resume versioned simulation checkpoints")
    ckpt_sub = ckpt_p.add_subparsers(dest="checkpoint_command", required=True)
    ckpt_save = ckpt_sub.add_parser(
        "save", help="build a run, simulate to a cycle, freeze it to disk")
    ckpt_save.add_argument("path",
                           help="output file (gzipped when it ends in .gz)")
    ckpt_save.add_argument("--cycles", type=float, required=True,
                           help="absolute cycle at which to snapshot")
    ckpt_save.add_argument("--kind", default="smarco",
                           choices=("smarco", "xeon", "sched"))
    ckpt_save.add_argument("--workload", default="kmp")
    ckpt_save.add_argument("--seed", type=int, default=0)
    ckpt_save.add_argument("--sub-rings", type=int, default=2)
    ckpt_save.add_argument("--cores", type=int, default=8,
                           help="cores per sub-ring (kind smarco)")
    ckpt_save.add_argument("--threads-per-core", type=int, default=8)
    ckpt_save.add_argument("--instrs", type=int, default=200,
                           help="instructions per thread (kind smarco)")
    ckpt_save.add_argument("--xeon-threads", type=int, default=16)
    ckpt_save.add_argument("--xeon-instrs", type=int, default=10_000)
    ckpt_save.add_argument("--sched-policy", default="laxity")
    ckpt_save.add_argument("--scenario", default="uniform")
    ckpt_save.add_argument("--tasks", type=int, default=128,
                           help="tasks (kind sched)")
    ckpt_save.add_argument("--contexts", type=int, default=64,
                           help="thread contexts (kind sched)")
    ckpt_info = ckpt_sub.add_parser(
        "info", help="print a checkpoint's header without rebuilding it")
    ckpt_info.add_argument("path")
    ckpt_restore = ckpt_sub.add_parser(
        "restore", help="rebuild a checkpointed run and finish it")
    ckpt_restore.add_argument("path")
    ckpt_restore.add_argument("--run-cycles", type=float, default=None,
                              help="finish at this horizon instead of "
                                   "running to completion")
    ckpt_restore.add_argument("--allow-code-skew", action="store_true",
                              help="restore even if the simulator source "
                                   "changed since the save (results may "
                                   "not be reproducible)")

    soak_p = sub.add_parser(
        "soak",
        help="run N seeded-random audited configurations and report any "
             "invariant violations")
    soak_p.add_argument("--runs", type=int, default=10)
    soak_p.add_argument("--seed", type=int, default=0)
    soak_p.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: $REPRO_WORKERS, "
                             "else serial)")
    soak_p.add_argument("--out", default="results/soak",
                        help="base directory for telemetry records")
    soak_p.add_argument("--instrs", type=int, default=120,
                        help="instructions per thread in each random run")

    perf_p = sub.add_parser(
        "perf",
        help="run the simulator microbenchmark suite and record a "
             "BENCH_<timestamp>.json (or --compare two records)")
    perf_p.add_argument("--size", default="default",
                        choices=("tiny", "small", "default"),
                        help="suite workload size (tiny = CI smoke)")
    perf_p.add_argument("--repeat", type=int, default=3,
                        help="timing repeats per kernel (best-of-N)")
    perf_p.add_argument("--kernels", nargs="+", default=None,
                        metavar="KERNEL",
                        help="run only these kernels (default: all)")
    perf_p.add_argument("--out", default="results/perf",
                        help="directory for BENCH_<timestamp>.json")
    perf_p.add_argument("--no-write", action="store_true",
                        help="print the suite results without writing a "
                             "BENCH file")
    perf_p.add_argument("--profile", metavar="KERNEL", default=None,
                        help="run one kernel under cProfile and print the "
                             "top functions instead of timing the suite")
    perf_p.add_argument("--top", type=int, default=20,
                        help="rows per cProfile table (with --profile)")
    perf_p.add_argument("--compare", nargs=2,
                        metavar=("BASELINE", "CURRENT"), default=None,
                        help="diff two BENCH files; exit 1 when any kernel "
                             "regressed more than --threshold percent")
    perf_p.add_argument("--threshold", type=float, default=30.0,
                        metavar="PCT",
                        help="units/sec regression tolerance for --compare")

    pol_p = sub.add_parser(
        "policies",
        help="inspect the scheduler policy registry and scenario catalogue")
    pol_sub = pol_p.add_subparsers(dest="policies_command", required=True)
    pol_sub.add_parser("list",
                       help="one line per registered policy and scenario")
    pol_desc = pol_sub.add_parser(
        "describe", help="full registry card of one policy")
    pol_desc.add_argument("name", help="a registered policy name")

    sub.add_parser("area-power", help="print the Table 1 breakdown")
    sub.add_parser("cdn", help="print the Fig 2 CDN sweep")

    rep_p = sub.add_parser(
        "report", help="assemble benchmarks/results/ into one markdown report")
    rep_p.add_argument("--results-dir", default="benchmarks/results")
    rep_p.add_argument("--runs-dir", default=None,
                       help="sweep telemetry directory "
                            "(default: <results-dir>/runs)")
    rep_p.add_argument("--output", default=None,
                       help="write to a file instead of stdout")
    rep_p.add_argument("--breakdown", action="store_true",
                       help="add the per-stage latency breakdown aggregated "
                            "over traced sweep runs")
    rep_p.add_argument("--energy", action="store_true",
                       help="add the activity-proportional energy "
                            "efficiency tables (perf/W, SmarCo-vs-Xeon "
                            "ratio) aggregated over sweep runs")
    return parser


def _cmd_policies(args: argparse.Namespace) -> int:
    from .sched import policy_summaries, scenario_summaries

    if args.policies_command == "list":
        rows = [[card["name"], card["decision_overhead"], card["summary"]]
                for card in policy_summaries()]
        print(render_table(["policy", "overhead", "summary"], rows,
                           title="Registered scheduler policies"))
        print()
        rows = [[s["name"], s["summary"]] for s in scenario_summaries()]
        print(render_table(["scenario", "summary"], rows,
                           title="Adversarial scenarios"))
        return 0
    from .errors import SchedulerError
    from .sched import get_policy

    try:
        card = get_policy(args.name).describe()
    except SchedulerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_table(["field", "value"], [
        ["name", card["name"]],
        ["class", card["class"]],
        ["decision overhead", f"{card['decision_overhead']} cycles"],
        ["summary", card["summary"]],
    ], title=f"Policy: {card['name']}"))
    if card["doc"]:
        print()
        print(card["doc"])
    return 0


def _cmd_list_workloads() -> int:
    rows = []
    for name, profile in sorted(all_profiles().items()):
        rows.append([name, profile.mem_ratio,
                     round(profile.granularity.mean(), 1),
                     "yes" if profile.realtime else "no"])
    print(render_table(["workload", "mem ratio", "mean access B", "realtime"],
                       rows, title="Registered workload profiles"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    config = smarco_scaled(args.sub_rings, args.cores)
    if args.trace_rate:
        config = dataclasses.replace(config, trace_sample_rate=args.trace_rate)
    from .exp.runner import resolve_shards

    shards = resolve_shards(args.shards)
    request = RunRequest(
        kind="smarco", workload=args.workload, seed=args.seed,
        smarco_config=config,
        threads_per_core=args.threads_per_core,
        instrs_per_thread=args.instrs,
        core_policy=args.policy, shared_code=args.shared_code,
        shards=shards,
        shard_quantum=args.quantum if shards else None,
        dvfs=args.dvfs, technology_nm=args.node,
        power_gate_idle=args.power_gate,
    )
    audit_cfg = AuditConfig(enabled=True) if args.audit else None
    outcome = execute(request, audit=audit_cfg)
    result = outcome.result
    print(render_table(["metric", "value"], [
        ["cores", f"{result.cores_done}/{result.total_cores} done"],
        ["cycles", f"{result.cycles:,.0f}"],
        ["instructions", f"{result.instructions:,}"],
        ["chip IPC", f"{result.ipc:.2f}"],
        ["throughput", f"{result.throughput_ips / 1e9:.2f} Ginstr/s"],
        ["memory requests", f"{result.mem_requests:,}"],
        ["MACT batching", f"{result.mact_request_reduction:.2f}x"],
        ["mean request latency", f"{result.mean_request_latency:.0f} cycles"],
        ["NoC bandwidth util", f"{result.noc_bandwidth_utilization:.1%}"],
    ], title=f"SmarCo run: {args.workload}"))
    if args.trace_rate:
        from .analysis import render_breakdown, rows_from_stats

        print()
        print(render_breakdown(rows_from_stats(outcome.stats)))
    if args.energy and outcome.energy is not None:
        from .analysis import render_energy_report

        print()
        print(render_energy_report(outcome.energy))
    if outcome.audit is not None:
        print(f"\naudit: clean, {outcome.audit['total_checks']:,} "
              f"invariant checks performed")
    return 0


def _cmd_xeon(args: argparse.Namespace) -> int:
    result = run_xeon(RunRequest(
        kind="xeon", workload=args.workload, seed=args.seed,
        xeon_threads=args.threads, xeon_instrs_per_thread=args.instrs,
    ))
    print(render_table(["metric", "value"], [
        ["threads", result.threads],
        ["cycles", f"{result.cycles:,.0f}"],
        ["throughput", f"{result.throughput_ips / 1e9:.2f} Ginstr/s"],
        ["idle ratio", f"{result.idle_ratio:.1%}"],
        ["starvation", f"{result.starvation_ratio:.1%}"],
        ["L1 miss", f"{result.miss_ratios['L1']:.1%}"],
    ], title=f"Xeon run: {args.workload}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    outcome = execute(RunRequest(
        kind="compare", workload=args.workload, seed=args.seed,
        smarco_config=smarco_scaled(args.sub_rings),
        instrs_per_thread=args.instrs,
        dvfs=args.dvfs, technology_nm=args.node,
    ))
    result = outcome.result
    print(render_table(["metric", "value"], [
        ["SmarCo throughput", f"{result.smarco.throughput_ips / 1e9:.2f} G/s"],
        ["Xeon throughput", f"{result.xeon.throughput_ips / 1e9:.2f} G/s"],
        ["speedup", f"{result.speedup:.2f}x"],
        ["SmarCo power (full chip)", f"{result.smarco_watts:.0f} W"],
        ["Xeon power", f"{result.xeon_watts:.0f} W"],
        ["energy-efficiency gain", f"{result.energy_efficiency_gain:.2f}x"],
    ], title=f"SmarCo vs Xeon: {args.workload}"))
    if args.energy and outcome.energy is not None:
        from .analysis import render_energy_report

        print()
        print(render_energy_report(outcome.energy))
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from .traffic import arrival_summaries, balancer_summaries

    if args.list:
        rows = [[a["name"], a["summary"]] for a in arrival_summaries()]
        print(render_table(["arrival", "summary"], rows,
                           title="Registered arrival processes"))
        print()
        rows = [[b["name"], b["summary"]] for b in balancer_summaries()]
        print(render_table(["balancer", "summary"], rows,
                           title="Registered load balancers"))
        return 0
    request = RunRequest(
        kind="traffic", workload=args.workload, seed=args.seed,
        smarco_config=smarco_scaled(args.sub_rings, args.cores),
        traffic_arrival=args.arrival, traffic_balancer=args.balancer,
        traffic_chips=args.chips, traffic_load=args.load,
        traffic_requests=args.requests, traffic_instrs=args.instrs,
        traffic_slo=tuple(args.slo),
    )
    result = execute(request).result
    mode = result.quantile_mode
    rows = [
        ["cluster", f"{result.chips} chips x "
                    f"{result.contexts_per_chip} contexts"
                    f" ({result.calibration_source} calibration)"],
        ["arrival / balancer", f"{result.arrival} / {result.balancer}"],
        ["offered load", f"rho = {result.load:.2f} "
                         f"({result.rate_per_cycle * 1e3:.2f} req/kcycle)"],
        ["requests", f"{result.requests_completed:,} completed"],
        ["throughput", f"{result.throughput_rps / 1e6:,.1f}M req/s"],
        ["solo service time", f"{result.base_service_cycles:,.0f} cycles"],
        ["p50 latency", f"{result.p50_latency:,.0f} cycles"],
        ["p95 latency", f"{result.p95_latency:,.0f} cycles"],
        ["p99 latency", f"{result.p99_latency:,.0f} cycles ({mode})"],
        ["p99.9 latency", f"{result.p999_latency:,.0f} cycles"],
        ["home sub-ring hits", f"{result.home_hit_rate:.1%}"],
    ]
    for target, frac in zip(result.slo_targets, result.slo_violations):
        rows.append([f"SLO >{target:g}x service", f"{frac:.2%} violated"])
    print(render_table(["metric", "value"], rows,
                       title=f"Traffic run: {args.workload}"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .exp import Runner, summarize_runs

    if args.warm_start and not (args.warm_cycles > 0 and args.run_cycles):
        print("error: --warm-start needs --warm-cycles > 0 and a "
              "--run-cycles axis (the warm-up prefix is shared across "
              "measurement horizons)", file=sys.stderr)
        return 1
    base = RunRequest(
        kind=args.kind,
        smarco_config=(smarco_scaled(args.sub_rings, args.cores)
                       if args.kind in ("smarco", "compare") else None),
        threads_per_core=args.threads_per_core,
        instrs_per_thread=args.instrs,
        xeon_threads=args.xeon_threads,
        xeon_instrs_per_thread=args.xeon_instrs,
        sched_tasks=args.tasks,
        sched_contexts=args.contexts,
        traffic_chips=args.chips,
        traffic_requests=args.requests,
        warm_cycles=args.warm_cycles if args.warm_start else 0.0,
        warm_axes=("run_cycles",) if args.warm_start else (),
        power_gate_idle=args.power_gate,
    )
    if args.kind == "traffic":
        # the calibration chip defaults to the sweep's scaled geometry
        base = base.replace(
            smarco_config=smarco_scaled(args.sub_rings, args.cores))
    axes = {"workload": args.workloads, "seed": args.seeds}
    if args.policies:
        axes["core_policy"] = args.policies
    if args.kind == "sched":
        from .sched import list_policies, list_scenarios

        axes["sched_policy"] = args.sched_policies or list_policies()
        axes["sched_scenario"] = args.scenarios or list_scenarios()
    if args.kind == "traffic":
        from .traffic import list_arrivals, list_balancers

        axes["traffic_arrival"] = args.arrivals or list_arrivals()
        axes["traffic_balancer"] = args.balancers or list_balancers()
        axes["traffic_load"] = args.loads
    if args.run_cycles:
        axes["run_cycles"] = args.run_cycles
    if args.dvfs_points:
        axes["dvfs"] = args.dvfs_points
    if args.nodes:
        axes["technology_nm"] = args.nodes
    spec = ExperimentSpec.grid(args.name, base, **axes)

    runner = Runner(workers=args.workers, base_dir=args.out,
                    use_cache=not args.no_cache)
    sweep = runner.run(spec, warm_start=args.warm_start)

    print(summarize_runs(sweep.records))
    if args.kind == "sched":
        from .analysis import render_winners, sched_results_from_records

        print()
        print(render_winners(sched_results_from_records(sweep.records)))
    if args.kind == "traffic":
        from .analysis import render_traffic, traffic_results_from_records

        print()
        print(render_traffic(traffic_results_from_records(sweep.records)))
    if args.kind in ("smarco", "compare") and (args.dvfs_points or args.nodes):
        from .analysis import energy_from_records, render_efficiency

        print()
        print(render_efficiency(energy_from_records(sweep.records)))
    if args.detail:
        for point, outcome in zip(sweep.records, sweep.outcomes):
            print()
            print(render_result(outcome.result, title=point.label))
    print(f"\n{sweep.n_points} points | {sweep.hits} cache hits | "
          f"{sweep.warm_hits} warm starts | "
          f"{sweep.workers} workers | {sweep.wall_time_s:.2f}s | "
          f"telemetry in {runner.runs_dir}")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from .chip.session import RunSession
    from .errors import CheckpointError
    from .sim.checkpoint import load_checkpoint

    if args.checkpoint_command == "save":
        request = RunRequest(
            kind=args.kind, workload=args.workload, seed=args.seed,
            smarco_config=(smarco_scaled(args.sub_rings, args.cores)
                           if args.kind == "smarco" else None),
            threads_per_core=args.threads_per_core,
            instrs_per_thread=args.instrs,
            xeon_threads=args.xeon_threads,
            xeon_instrs_per_thread=args.xeon_instrs,
            sched_policy=args.sched_policy,
            sched_scenario=args.scenario,
            sched_tasks=args.tasks,
            sched_contexts=args.contexts,
        )
        session = RunSession(request)
        session.run_to(args.cycles)
        path = session.save(args.path)
        print(f"checkpoint written to {path} "
              f"(kind {request.kind}, cycle {session.now:,.0f})")
        return 0

    if args.checkpoint_command == "info":
        try:
            ckpt = load_checkpoint(Path(args.path))
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        head = ckpt.summary()
        print(render_table(["field", "value"], [
            ["format", head["format"]],
            ["code digest", head["code_digest"]],
            ["schema hash", head["schema"]],
            ["kind", head["kind"]],
            ["cycle", f"{head['cycle']:,.0f}"],
            ["workload", head["workload"]],
            ["seed", head["seed"]],
            ["floating objects", head["objects"]],
        ], title=f"Checkpoint: {args.path}"))
        return 0

    # restore
    from .exp.request import request_from_snapshot

    try:
        ckpt = load_checkpoint(Path(args.path))
        request = request_from_snapshot(ckpt.request)
        if args.run_cycles is not None:
            request = request.replace(run_cycles=args.run_cycles)
        session = RunSession.restore(ckpt, request=request,
                                     allow_code_skew=args.allow_code_skew)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    resumed_at = session.now
    outcome = session.finish()
    print(f"resumed at cycle {resumed_at:,.0f}, "
          f"finished at cycle {session.now:,.0f}\n")
    print(render_result(outcome.result,
                        title=f"Resumed {session.kind} run"))
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .exp import run_soak

    report = run_soak(runs=args.runs, seed=args.seed, workers=args.workers,
                      base_dir=args.out, instrs=args.instrs)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    from .exp.cache import code_version
    from .perf import (BenchRecord, compare_benches, load_bench, peak_rss_kb,
                       profile_kernel, run_suite)

    if args.compare:
        comparison = compare_benches(load_bench(Path(args.compare[0])),
                                     load_bench(Path(args.compare[1])),
                                     threshold_pct=args.threshold)
        print(comparison.render())
        return 0 if comparison.ok else 1
    if args.profile:
        result, report = profile_kernel(args.profile, size=args.size,
                                        top=args.top)
        print(report)
        print(f"kernel result: {result}")
        return 0
    kernels = run_suite(size=args.size, repeat=args.repeat,
                        only=args.kernels)
    record = BenchRecord(code_digest=code_version(), size=args.size,
                         repeat=args.repeat, kernels=kernels,
                         peak_rss_kb=peak_rss_kb())
    print(record.render())
    if not args.no_write:
        path = record.write(Path(args.out))
        print(f"\nBENCH record written to {path}")
    return 0


def _cmd_area_power() -> int:
    area = AreaModel().breakdown()
    power = PowerModel().breakdown()
    rows = [[name, round(area[name], 2), round(power[name], 2)]
            for name in area]
    rows.append(["Total", round(sum(area.values()), 2),
                 round(sum(power.values()), 2)])
    print(render_table(["component", "area mm2", "power W"], rows,
                       title="Table 1: SmarCo at 32nm / 1.5GHz"))
    print()
    print("DVFS operating points (pass to run/sweep via --dvfs):")
    for line in dvfs_summaries():
        print(f"  {line}")
    return 0


def _cmd_cdn() -> int:
    points = CdnModel().sweep(points=8)
    rows = [[p.connections, f"{p.nic_utilization:.0%}",
             f"{p.cpu_utilization:.1%}", f"{p.branch_miss_ratio:.1%}",
             f"{p.l1_miss_ratio:.1%}"] for p in points]
    print(render_table(
        ["connections", "NIC util", "CPU util", "branch miss", "L1 miss"],
        rows, title="Fig 2: CDN on a conventional processor"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import build_report
    from .exp import load_records, summarize_runs

    text = build_report(Path(args.results_dir))
    runs_dir = (Path(args.runs_dir) if args.runs_dir
                else Path(args.results_dir) / "runs")
    records = load_records(runs_dir)
    if records:
        text += ("\n## Sweep telemetry\n\n```\n"
                 + summarize_runs(records) + "\n```\n")
        from .analysis import render_winners, sched_results_from_records

        sched_runs = sched_results_from_records(records)
        if sched_runs:
            text += ("\n## Scheduler policy zoo — who wins where\n\n```\n"
                     + render_winners(sched_runs) + "\n```\n")
        from .analysis import render_traffic, traffic_results_from_records

        traffic_runs = traffic_results_from_records(records)
        if traffic_runs:
            text += ("\n## Open-loop traffic — tail latency vs offered "
                     "load\n\n```\n"
                     + render_traffic(traffic_runs) + "\n```\n")
    if args.breakdown:
        from .analysis import render_breakdown, summarize_breakdown

        rows = summarize_breakdown(records)
        if rows:
            text += ("\n## Latency breakdown\n\n```\n"
                     + render_breakdown(rows) + "\n```\n")
        else:
            text += ("\n## Latency breakdown\n\nNo traced runs found "
                     "(set `trace_sample_rate` > 0 in the sweep config).\n")
    if args.energy:
        from .analysis import energy_from_records, render_efficiency

        reports = energy_from_records(records)
        if reports:
            text += ("\n## Energy efficiency — perf/W vs the Xeon "
                     "baseline\n\n```\n"
                     + render_efficiency(reports) + "\n```\n")
        else:
            text += ("\n## Energy efficiency\n\nNo runs with energy "
                     "accounting found (kinds `smarco`/`compare` carry "
                     "an energy report).\n")
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-workloads":
        return _cmd_list_workloads()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "xeon":
        return _cmd_xeon(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "traffic":
        return _cmd_traffic(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "policies":
        return _cmd_policies(args)
    if args.command == "area-power":
        return _cmd_area_power()
    if args.command == "cdn":
        return _cmd_cdn()
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
