"""Command-line interface: run SmarCo experiments from a shell.

Installed as ``repro-smarco`` (see pyproject) or runnable via
``python -m repro.cli``::

    repro-smarco list-workloads
    repro-smarco run kmp --sub-rings 4 --instrs 300
    repro-smarco xeon kmp --threads 48
    repro-smarco compare wordcount
    repro-smarco area-power
    repro-smarco cdn
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import render_table
from .chip import SmarCoChip, compare, run_xeon
from .config import smarco_scaled
from .power import AreaModel, PowerModel
from .workloads import CdnModel, all_profiles, get_profile

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smarco",
        description="SmarCo (HPCA 2018) many-core simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list available workload profiles")

    run_p = sub.add_parser("run", help="run a workload on a SmarCo chip")
    run_p.add_argument("workload")
    run_p.add_argument("--sub-rings", type=int, default=4)
    run_p.add_argument("--cores", type=int, default=16,
                       help="cores per sub-ring")
    run_p.add_argument("--threads-per-core", type=int, default=8)
    run_p.add_argument("--instrs", type=int, default=300,
                       help="instructions per thread")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--policy", default="inpair",
                       choices=("inpair", "blocking", "coarse"))
    run_p.add_argument("--shared-code", action="store_true",
                       help="DMA-prefetch the instruction segment (3.1.2)")

    xeon_p = sub.add_parser("xeon", help="run a workload on the Xeon baseline")
    xeon_p.add_argument("workload")
    xeon_p.add_argument("--threads", type=int, default=48)
    xeon_p.add_argument("--instrs", type=int, default=30_000)
    xeon_p.add_argument("--seed", type=int, default=0)

    cmp_p = sub.add_parser("compare",
                           help="SmarCo vs Xeon (one Fig 22 data point)")
    cmp_p.add_argument("workload")
    cmp_p.add_argument("--sub-rings", type=int, default=4)
    cmp_p.add_argument("--instrs", type=int, default=250)
    cmp_p.add_argument("--seed", type=int, default=0)

    sub.add_parser("area-power", help="print the Table 1 breakdown")
    sub.add_parser("cdn", help="print the Fig 2 CDN sweep")

    rep_p = sub.add_parser(
        "report", help="assemble benchmarks/results/ into one markdown report")
    rep_p.add_argument("--results-dir", default="benchmarks/results")
    rep_p.add_argument("--output", default=None,
                       help="write to a file instead of stdout")
    return parser


def _cmd_list_workloads() -> int:
    rows = []
    for name, profile in sorted(all_profiles().items()):
        rows.append([name, profile.mem_ratio,
                     round(profile.granularity.mean(), 1),
                     "yes" if profile.realtime else "no"])
    print(render_table(["workload", "mem ratio", "mean access B", "realtime"],
                       rows, title="Registered workload profiles"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    chip = SmarCoChip(smarco_scaled(args.sub_rings, args.cores),
                      seed=args.seed, core_policy=args.policy)
    chip.load_profile(get_profile(args.workload),
                      threads_per_core=args.threads_per_core,
                      instrs_per_thread=args.instrs,
                      shared_code=args.shared_code)
    result = chip.run()
    print(render_table(["metric", "value"], [
        ["cores", f"{result.cores_done}/{result.total_cores} done"],
        ["cycles", f"{result.cycles:,.0f}"],
        ["instructions", f"{result.instructions:,}"],
        ["chip IPC", f"{result.ipc:.2f}"],
        ["throughput", f"{result.throughput_ips / 1e9:.2f} Ginstr/s"],
        ["memory requests", f"{result.mem_requests:,}"],
        ["MACT batching", f"{result.mact_request_reduction:.2f}x"],
        ["mean request latency", f"{result.mean_request_latency:.0f} cycles"],
        ["NoC bandwidth util", f"{result.noc_bandwidth_utilization:.1%}"],
    ], title=f"SmarCo run: {args.workload}"))
    return 0


def _cmd_xeon(args: argparse.Namespace) -> int:
    result = run_xeon(args.workload, n_threads=args.threads,
                      instrs_per_thread=args.instrs, seed=args.seed)
    print(render_table(["metric", "value"], [
        ["threads", result.threads],
        ["cycles", f"{result.cycles:,.0f}"],
        ["throughput", f"{result.throughput_ips / 1e9:.2f} Ginstr/s"],
        ["idle ratio", f"{result.idle_ratio:.1%}"],
        ["starvation", f"{result.starvation_ratio:.1%}"],
        ["L1 miss", f"{result.miss_ratios['L1']:.1%}"],
    ], title=f"Xeon run: {args.workload}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    result = compare(args.workload,
                     smarco_config=smarco_scaled(args.sub_rings),
                     smarco_instrs_per_thread=args.instrs,
                     seed=args.seed)
    print(render_table(["metric", "value"], [
        ["SmarCo throughput", f"{result.smarco.throughput_ips / 1e9:.2f} G/s"],
        ["Xeon throughput", f"{result.xeon.throughput_ips / 1e9:.2f} G/s"],
        ["speedup", f"{result.speedup:.2f}x"],
        ["SmarCo power (full chip)", f"{result.smarco_watts:.0f} W"],
        ["Xeon power", f"{result.xeon_watts:.0f} W"],
        ["energy-efficiency gain", f"{result.energy_efficiency_gain:.2f}x"],
    ], title=f"SmarCo vs Xeon: {args.workload}"))
    return 0


def _cmd_area_power() -> int:
    area = AreaModel().breakdown()
    power = PowerModel().breakdown()
    rows = [[name, round(area[name], 2), round(power[name], 2)]
            for name in area]
    rows.append(["Total", round(sum(area.values()), 2),
                 round(sum(power.values()), 2)])
    print(render_table(["component", "area mm2", "power W"], rows,
                       title="Table 1: SmarCo at 32nm / 1.5GHz"))
    return 0


def _cmd_cdn() -> int:
    points = CdnModel().sweep(points=8)
    rows = [[p.connections, f"{p.nic_utilization:.0%}",
             f"{p.cpu_utilization:.1%}", f"{p.branch_miss_ratio:.1%}",
             f"{p.l1_miss_ratio:.1%}"] for p in points]
    print(render_table(
        ["connections", "NIC util", "CPU util", "branch miss", "L1 miss"],
        rows, title="Fig 2: CDN on a conventional processor"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import build_report

    text = build_report(Path(args.results_dir))
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-workloads":
        return _cmd_list_workloads()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "xeon":
        return _cmd_xeon(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "area-power":
        return _cmd_area_power()
    if args.command == "cdn":
        return _cmd_cdn()
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
