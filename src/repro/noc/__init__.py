"""On-chip network: hierarchical rings, high-density links, mesh baseline."""

from .directpath import DirectDatapath
from .hierring import HierarchicalRingNoC
from .link import RingSegment, SlicedLink
from .mesh import MeshNoC
from .cyclering import CyclePacket, CycleRing
from .packet import NodeId, Packet, PacketKind
from .ring import Ring
from .router import Flit, HighDensityRouter, RouterTestbench
from .traffic import GranularityDist, TrafficGenerator, TrafficResult, run_uniform_traffic

__all__ = [
    "Packet",
    "PacketKind",
    "NodeId",
    "SlicedLink",
    "RingSegment",
    "Ring",
    "Flit",
    "HighDensityRouter",
    "RouterTestbench",
    "CycleRing",
    "CyclePacket",
    "HierarchicalRingNoC",
    "MeshNoC",
    "DirectDatapath",
    "GranularityDist",
    "TrafficGenerator",
    "TrafficResult",
    "run_uniform_traffic",
]
