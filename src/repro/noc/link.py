"""Physical links: sliced narrow channels and ring segments.

The paper's high-density NoC (§3.3, Figs 9–10) divides a wide link into
self-governed narrow channels.  We model a link as a set of *slices*, each
``slice_bytes`` wide per cycle, with per-slice availability times.  Three
allocation policies:

* ``"greedy"`` — the paper's allocator: a packet takes the earliest-free
  slices wherever they are, so several small packets share one cycle;
* ``"firstfit"`` — ablation: a packet must take a *contiguous* slice block
  (models cheap allocators that cannot scatter a packet across channels);
* ``"monolithic"`` — the conventional wide link: every packet occupies the
  whole width for its serialisation time, no sharing.

A :class:`RingSegment` is the physical connection between two adjacent
routers: per-direction fixed datapaths plus a pool of bidirectional
datapaths either direction may borrow (paper §3.3: main ring = 3 fixed per
direction + 2 bidirectional; sub-ring = 1 + 2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import NocError
from ..sim.stats import StatsRegistry

__all__ = ["SlicedLink", "RingSegment"]

_POLICIES = ("greedy", "firstfit", "monolithic")


class SlicedLink:
    """One direction of a physical link, divided into narrow slices."""

    def __init__(
        self,
        name: str,
        width_bytes: int,
        slice_bytes: int,
        policy: str = "greedy",
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise NocError(f"unknown allocation policy {policy!r}")
        if width_bytes <= 0 or slice_bytes <= 0:
            raise NocError(
                f"link width/slice must be positive, got {width_bytes}/{slice_bytes}"
            )
        self.name = name
        self.width_bytes = width_bytes
        self.policy = policy
        # A slice wider than the link (or not dividing it) degrades to fewer,
        # wider channels; the whole width always stays usable.
        self.n_slices = max(1, width_bytes // slice_bytes)
        self.slice_bytes = width_bytes / self.n_slices
        self._slice_free: List[float] = [0.0] * self.n_slices
        # size_bytes -> (slices_needed, k, cycles); traffic uses a handful
        # of distinct packet sizes, so the ceil arithmetic is paid once per
        # size instead of once per reservation
        self._fit_cache: dict = {}
        #: set to a list to record every reservation as
        #: ``(chosen_slice_indices, start, finish)`` (tests/debugging)
        self.reservation_log: Optional[
            List[Tuple[Tuple[int, ...], float, float]]] = None
        #: set by the audit layer to observe every reservation as
        #: ``hook(link, size_bytes, start, finish, now)``
        self.audit_hook = None
        reg = registry if registry is not None else StatsRegistry()
        self.packets = reg.counter(f"{name}.packets")
        self.bytes_moved = reg.counter(f"{name}.bytes")
        self.wait_cycles = reg.accumulator(f"{name}.wait")

    # -- allocation ---------------------------------------------------------

    def transmit(self, size_bytes: int, now: float) -> float:
        """Reserve capacity for one packet; returns its link-exit time."""
        return self.reserve(size_bytes, now)[1]

    def reserve(self, size_bytes: int, now: float) -> Tuple[float, float]:
        """Reserve capacity for one packet; returns ``(start, finish)``.

        ``start - now`` is the per-slice wait the packet spends queued for
        its narrow channels (hop traces stamp it as ``link_wait``).
        """
        fit = self._fit_cache.get(size_bytes)
        if fit is None:
            if size_bytes <= 0:
                raise NocError(
                    f"packet size must be positive, got {size_bytes}")
            slices_needed = math.ceil(size_bytes / self.slice_bytes)
            k = min(slices_needed, self.n_slices)
            # ceil(needed / k) == ceil(needed / n_slices) for the
            # monolithic case too: under-width packets give 1 either way
            cycles = -(-slices_needed // k)
            fit = self._fit_cache[size_bytes] = (slices_needed, k, cycles)
        slices_needed, k, cycles = fit
        if self.policy == "greedy":
            start, finish = self._transmit_greedy(k, cycles, now)
        elif self.policy == "monolithic":
            start, finish = self._transmit_monolithic(cycles, now)
        else:
            start, finish = self._transmit_firstfit(k, cycles, now)
        self.packets.inc()
        self.bytes_moved.inc(size_bytes)
        if self.audit_hook is not None:
            self.audit_hook(self, size_bytes, start, finish, now)
        return start, finish

    def _record(self, chosen: Sequence[int], start: float, finish: float) -> None:
        if self.reservation_log is not None:
            self.reservation_log.append((tuple(chosen), start, finish))

    def _transmit_monolithic(self, cycles: int,
                             now: float) -> Tuple[float, float]:
        start = max(now, max(self._slice_free))
        self.wait_cycles.add(start - now)
        finish = start + cycles
        self._slice_free = [finish] * self.n_slices
        self._record(range(self.n_slices), start, finish)
        return start, finish

    def _transmit_greedy(self, k: int, cycles: int,
                         now: float) -> Tuple[float, float]:
        free = self._slice_free
        if k == self.n_slices:
            # whole-width packet: every slice is chosen, no ordering needed
            chosen: Sequence[int] = range(k)
            start = max(free)
        else:
            # earliest-free k slices (the self-governed channels the packet
            # "really needs"; the rest remain free for other packets)
            order = sorted(range(self.n_slices), key=free.__getitem__)
            chosen = order[:k]
            start = free[chosen[-1]]     # latest-free of the chosen
        if now > start:
            start = now
        self.wait_cycles.add(start - now)
        finish = start + cycles
        for i in chosen:
            free[i] = finish
        self._record(chosen, start, finish)
        return start, finish

    def _transmit_firstfit(self, k: int, cycles: int,
                           now: float) -> Tuple[float, float]:
        # contiguous block with the minimal start time
        best_start = math.inf
        best_base = 0
        for base in range(self.n_slices - k + 1):
            start = max([now] + self._slice_free[base:base + k])
            if start < best_start:
                best_start, best_base = start, base
        self.wait_cycles.add(best_start - now)
        finish = best_start + cycles
        for i in range(best_base, best_base + k):
            self._slice_free[i] = finish
        self._record(range(best_base, best_base + k), best_start, finish)
        return best_start, finish

    # -- snapshot protocol ----------------------------------------------------

    def state_dict(self) -> dict:
        return {"slice_free": list(self._slice_free)}

    def load_state(self, state: dict) -> None:
        saved = state["slice_free"]
        if len(saved) != self.n_slices:
            raise NocError(
                f"{self.name}: checkpoint has {len(saved)} slices, "
                f"link has {self.n_slices}")
        self._slice_free = [float(t) for t in saved]

    # -- introspection --------------------------------------------------------

    def next_free(self) -> float:
        """Earliest time any slice is free (congestion estimate)."""
        return min(self._slice_free)

    def busy_until(self) -> float:
        """Latest reserved slice-cycle (the link is fully idle after it)."""
        return max(self._slice_free)

    def utilization(self, now: float) -> float:
        """Delivered bytes / peak deliverable bytes in [0, now]."""
        if now <= 0:
            return 0.0
        peak = self.width_bytes * now
        return min(1.0, self.bytes_moved.value / peak)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SlicedLink({self.name}, {self.n_slices}x{self.slice_bytes}B, {self.policy})"


class RingSegment:
    """The physical wires between two adjacent ring routers.

    ``cw`` and ``ccw`` links are built from the per-direction *fixed*
    datapaths; the *bidirectional* datapaths form a third, shared link pool
    that a transmission in either direction borrows when its fixed slices
    are all busy.
    """

    def __init__(
        self,
        name: str,
        datapath_bytes: int,
        fixed_per_dir: int,
        bidi_datapaths: int,
        slice_bytes: int,
        policy: str = "greedy",
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        self.name = name
        fixed_width = datapath_bytes * fixed_per_dir
        self.cw = SlicedLink(f"{name}.cw", fixed_width, slice_bytes, policy, registry)
        self.ccw = SlicedLink(f"{name}.ccw", fixed_width, slice_bytes, policy, registry)
        self.bidi: Optional[SlicedLink] = None
        if bidi_datapaths:
            self.bidi = SlicedLink(
                f"{name}.bidi", datapath_bytes * bidi_datapaths,
                slice_bytes, policy, registry,
            )

    def link(self, direction: str) -> SlicedLink:
        if direction == "cw":
            return self.cw
        if direction == "ccw":
            return self.ccw
        raise NocError(f"unknown direction {direction!r}")

    def transmit(self, direction: str, size_bytes: int, now: float) -> float:
        """Send using the fixed link, borrowing the bidi pool if it's freer."""
        return self.transmit_detail(direction, size_bytes, now)[1]

    def transmit_detail(self, direction: str, size_bytes: int,
                        now: float) -> Tuple[float, float]:
        """Like :meth:`transmit` but returns ``(start, finish)``.

        The bidi pool is only borrowed when the fixed link is actually busy
        at ``now`` — a freer bidi pool must not steal traffic from an idle
        fixed datapath (that would serialise both directions through the
        shared pool under light load).
        """
        fixed = self.link(direction)
        link = fixed
        if (self.bidi is not None and fixed.next_free() > now
                and self.bidi.next_free() < fixed.next_free()):
            link = self.bidi
        return link.reserve(size_bytes, now)

    def next_free(self, direction: str) -> float:
        fixed = self.link(direction).next_free()
        if self.bidi is None:
            return fixed
        return min(fixed, self.bidi.next_free())

    @property
    def total_bytes(self) -> int:
        total = self.cw.bytes_moved.value + self.ccw.bytes_moved.value
        if self.bidi is not None:
            total += self.bidi.bytes_moved.value
        return total

    # -- snapshot protocol ----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "cw": self.cw.state_dict(),
            "ccw": self.ccw.state_dict(),
            "bidi": self.bidi.state_dict() if self.bidi is not None else None,
        }

    def load_state(self, state: dict) -> None:
        self.cw.load_state(state["cw"])
        self.ccw.load_state(state["ccw"])
        if self.bidi is not None and state["bidi"] is not None:
            self.bidi.load_state(state["bidi"])
