"""High-density router microarchitecture (paper §3.3, Figs 9-10).

The ring/link models in :mod:`repro.noc.link` reserve slice capacity
analytically, which is fast enough for full-chip runs.  This module
models the router itself at cycle granularity — "buffer, crossbar,
control logic, and channel are all divided into small granularities" —
so the greedy switch-allocation algorithm can be validated at the level
the paper describes:

* per-input FIFO buffers of flits (with backpressure on inject);
* an output channel divided into ``slice_bytes`` sub-channels;
* per-cycle switch allocation:

  - **greedy** (the paper): walk inputs round-robin; from each, take the
    head flit *and its adjacent successors* while their total size fits
    the remaining channel width ("if the total size of adjacent flits is
    smaller or equal to the width of the link, flits are able to pass the
    link simultaneously.  Furthermore, if free space is still available,
    packets from other input directions will occupy it");
  - **monolithic** (conventional): one flit per cycle owns the whole
    channel regardless of its size.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ..errors import NocError
from ..sim.stats import StatsRegistry

__all__ = ["Flit", "HighDensityRouter", "RouterTestbench"]

_flit_ids = itertools.count()


@dataclass(frozen=True)
class Flit:
    """One flow-control unit: ``size_bytes`` of one packet."""

    size_bytes: int
    packet_id: int = 0
    flit_id: int = field(default_factory=lambda: next(_flit_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise NocError("flit size must be positive")


class HighDensityRouter:
    """One output channel of a sliced router, cycle-stepped."""

    def __init__(
        self,
        name: str,
        n_inputs: int,
        width_bytes: int,
        slice_bytes: int = 2,
        policy: str = "greedy",
        buffer_flits: int = 8,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if policy not in ("greedy", "monolithic"):
            raise NocError(f"unknown router policy {policy!r}")
        if n_inputs <= 0 or width_bytes <= 0:
            raise NocError("router needs inputs and width")
        self.name = name
        self.n_inputs = n_inputs
        self.width_bytes = width_bytes
        self.slice_bytes = slice_bytes
        self.policy = policy
        self.buffer_flits = buffer_flits
        self._queues: List[Deque[Flit]] = [deque() for _ in range(n_inputs)]
        self._rr_start = 0
        self.cycle = 0
        reg = registry if registry is not None else StatsRegistry()
        self.emitted_flits = reg.counter(f"{name}.flits")
        self.emitted_bytes = reg.counter(f"{name}.bytes")
        self.rejected = reg.counter(f"{name}.rejected")
        self.busy_cycles = reg.counter(f"{name}.busy")

    # -- injection ------------------------------------------------------------

    def inject(self, input_port: int, flit: Flit) -> bool:
        """Offer a flit to an input buffer; False = backpressured."""
        if not 0 <= input_port < self.n_inputs:
            raise NocError(f"{self.name}: input {input_port} out of range")
        if flit.size_bytes > self.width_bytes:
            raise NocError(
                f"{self.name}: flit of {flit.size_bytes}B exceeds the "
                f"{self.width_bytes}B channel"
            )
        queue = self._queues[input_port]
        if len(queue) >= self.buffer_flits:
            self.rejected.inc()
            return False
        queue.append(flit)
        return True

    def occupancy(self, input_port: int) -> int:
        return len(self._queues[input_port])

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    # -- switch allocation ----------------------------------------------------------

    def tick(self) -> List[Tuple[int, Flit]]:
        """One switch-allocation cycle; returns [(input_port, flit)]
        crossing the channel this cycle."""
        self.cycle += 1
        if self.policy == "monolithic":
            emitted = self._tick_monolithic()
        else:
            emitted = self._tick_greedy()
        if emitted:
            self.busy_cycles.inc()
            for _port, flit in emitted:
                self.emitted_flits.inc()
                self.emitted_bytes.inc(flit.size_bytes)
        return emitted

    def _tick_monolithic(self) -> List[Tuple[int, Flit]]:
        # one flit owns the whole wide link this cycle
        for offset in range(self.n_inputs):
            port = (self._rr_start + offset) % self.n_inputs
            if self._queues[port]:
                self._rr_start = (port + 1) % self.n_inputs
                return [(port, self._queues[port].popleft())]
        return []

    def _tick_greedy(self) -> List[Tuple[int, Flit]]:
        remaining = self.width_bytes
        emitted: List[Tuple[int, Flit]] = []
        first_granted: Optional[int] = None
        for offset in range(self.n_inputs):
            port = (self._rr_start + offset) % self.n_inputs
            queue = self._queues[port]
            # adjacent flits of the same input pass together while they fit
            while queue and self._slices_for(queue[0]) <= remaining:
                remaining -= self._slices_for(queue[0])
                emitted.append((port, queue.popleft()))
                if first_granted is None:
                    first_granted = port
            if remaining < self.slice_bytes:
                break
        if first_granted is not None:
            self._rr_start = (first_granted + 1) % self.n_inputs
        return emitted

    def _slices_for(self, flit: Flit) -> int:
        """Channel bytes a flit occupies (rounded up to whole slices)."""
        slices = -(-flit.size_bytes // self.slice_bytes)
        return slices * self.slice_bytes

    # -- metrics ------------------------------------------------------------------------

    def throughput(self) -> float:
        """Flits delivered per elapsed cycle."""
        return self.emitted_flits.value / self.cycle if self.cycle else 0.0

    def channel_utilization(self) -> float:
        """Bytes delivered / channel-bytes elapsed."""
        if not self.cycle:
            return 0.0
        return self.emitted_bytes.value / (self.width_bytes * self.cycle)


class RouterTestbench:
    """Drives random flit traffic through one router and drains it."""

    def __init__(self, router: HighDensityRouter, rng) -> None:
        self.router = router
        self.rng = rng
        self.injected: List[Tuple[int, Flit]] = []
        self.delivered: List[Tuple[int, Flit]] = []

    def run(self, cycles: int, inject_prob: float,
            sizes: List[int]) -> None:
        """``cycles`` of injection + allocation, then drain."""
        for _ in range(cycles):
            for port in range(self.router.n_inputs):
                if self.rng.random() < inject_prob:
                    flit = Flit(size_bytes=self.rng.choice(sizes),
                                packet_id=port)
                    if self.router.inject(port, flit):
                        self.injected.append((port, flit))
            self.delivered.extend(self.router.tick())
        # drain
        guard = 0
        while self.router.pending and guard < 100_000:
            self.delivered.extend(self.router.tick())
            guard += 1
