"""Cycle-accurate ring built from high-density routers.

The full-chip simulations use the *analytic* slice-reservation links of
:mod:`repro.noc.link` for speed.  This module builds the same ring out of
per-stop :class:`~repro.noc.router.HighDensityRouter` channels, advancing
flit by flit each cycle — the fidelity level of the paper's Fig 10 — so
the analytic model can be cross-validated against it
(``tests/integration/test_ring_crossvalidation.py``).

Topology per stop and direction: one router channel whose inputs are
{through-traffic, local injection} and whose output feeds the next stop.
Packets travel as single flits (small HTC packets fit one flit; larger
payloads are split).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NocError
from ..sim.stats import StatsRegistry
from .router import Flit, HighDensityRouter

__all__ = ["CyclePacket", "CycleRing"]

_pkt_ids = itertools.count()

THROUGH, LOCAL = 0, 1


@dataclass
class CyclePacket:
    """A packet in the cycle-accurate ring."""

    src: int
    dst: int
    size_bytes: int
    injected_at: int = 0
    delivered_at: Optional[int] = None
    direction: str = "cw"
    pkt_id: int = field(default_factory=lambda: next(_pkt_ids))
    flits_remaining: int = 0

    @property
    def latency(self) -> Optional[int]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at


class CycleRing:
    """A bidirectional ring advanced with an explicit global clock."""

    def __init__(
        self,
        num_stops: int,
        width_bytes: int = 8,
        slice_bytes: int = 2,
        policy: str = "greedy",
        buffer_flits: int = 8,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if num_stops < 2:
            raise NocError("ring needs >=2 stops")
        self.num_stops = num_stops
        self.width_bytes = width_bytes
        self.cycle = 0
        # per stop, per direction: one router channel feeding the next stop
        self._routers: Dict[str, List[HighDensityRouter]] = {
            direction: [
                HighDensityRouter(
                    f"cyc.{direction}{i}", n_inputs=2,
                    width_bytes=width_bytes, slice_bytes=slice_bytes,
                    policy=policy, buffer_flits=buffer_flits,
                    registry=registry,
                )
                for i in range(num_stops)
            ]
            for direction in ("cw", "ccw")
        }
        self._flit_owner: Dict[int, CyclePacket] = {}
        self._pending_local: Dict[str, List[List[Tuple[CyclePacket, Flit]]]] = {
            d: [[] for _ in range(num_stops)] for d in ("cw", "ccw")
        }
        # flits that bounced off a full downstream buffer, retried first
        self._overflow: Dict[str, List[List[Flit]]] = {
            d: [[] for _ in range(num_stops)] for d in ("cw", "ccw")
        }
        self.delivered: List[CyclePacket] = []
        self.in_flight = 0

    # -- geometry -------------------------------------------------------------

    def _next_stop(self, stop: int, direction: str) -> int:
        step = 1 if direction == "cw" else -1
        return (stop + step) % self.num_stops

    def choose_direction(self, src: int, dst: int) -> str:
        cw = (dst - src) % self.num_stops
        ccw = (src - dst) % self.num_stops
        return "cw" if cw <= ccw else "ccw"

    # -- injection ----------------------------------------------------------------

    def inject(self, src: int, dst: int, size_bytes: int) -> CyclePacket:
        """Queue a packet for injection at its source stop."""
        if not (0 <= src < self.num_stops and 0 <= dst < self.num_stops):
            raise NocError("stop out of range")
        if src == dst:
            raise NocError("src == dst")
        packet = CyclePacket(src=src, dst=dst, size_bytes=size_bytes,
                             injected_at=self.cycle)
        packet.direction = self.choose_direction(src, dst)
        n_flits = max(1, -(-size_bytes // self.width_bytes))
        packet.flits_remaining = n_flits
        per_flit = -(-size_bytes // n_flits)
        for _ in range(n_flits):
            flit = Flit(size_bytes=min(per_flit, self.width_bytes),
                        packet_id=packet.pkt_id)
            self._flit_owner[flit.flit_id] = packet
            self._pending_local[packet.direction][src].append((packet, flit))
        self.in_flight += 1
        return packet

    # -- the clock ----------------------------------------------------------------------

    def tick(self) -> None:
        """Advance the whole ring one cycle."""
        self.cycle += 1
        for direction in ("cw", "ccw"):
            routers = self._routers[direction]
            # bounced flits retry into their through-buffers first
            for stop in range(self.num_stops):
                overflow = self._overflow[direction][stop]
                while overflow:
                    if routers[stop].inject(THROUGH, overflow[0]):
                        overflow.pop(0)
                    else:
                        break
            # local injection fills the LOCAL input buffers
            for stop in range(self.num_stops):
                queue = self._pending_local[direction][stop]
                while queue:
                    _packet, flit = queue[0]
                    if routers[stop].inject(LOCAL, flit):
                        queue.pop(0)
                    else:
                        break
            # switch allocation at every stop; emitted flits land in the
            # NEXT stop's through-buffer or exit at their destination
            moves: List[Tuple[int, Flit]] = []
            for stop in range(self.num_stops):
                for _port, flit in routers[stop].tick():
                    moves.append((stop, flit))
            for stop, flit in moves:
                packet = self._flit_owner[flit.flit_id]
                nxt = self._next_stop(stop, direction)
                if nxt == packet.dst:
                    self._arrive(packet, flit)
                else:
                    if not routers[nxt].inject(THROUGH, flit):
                        # backpressure: park the flit at this stop and
                        # retry it ahead of new traffic next cycle
                        self._overflow[direction][stop].append(flit)

    def _arrive(self, packet: CyclePacket, flit: Flit) -> None:
        del self._flit_owner[flit.flit_id]
        packet.flits_remaining -= 1
        if packet.flits_remaining == 0:
            packet.delivered_at = self.cycle
            self.delivered.append(packet)
            self.in_flight -= 1

    def run(self, max_cycles: int = 1_000_000) -> None:
        """Tick until every injected packet has been delivered."""
        guard = 0
        while self.in_flight and guard < max_cycles:
            self.tick()
            guard += 1
        if self.in_flight:
            raise NocError(f"{self.in_flight} packets stuck after "
                           f"{max_cycles} cycles")

    # -- metrics --------------------------------------------------------------------------

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)
