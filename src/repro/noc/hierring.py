"""Hierarchical ring NoC (paper §3.2, Fig 4).

One main ring connects 16 bridge routers (one per sub-ring), 4 memory
controllers at equal spacing, the main task scheduler, and the PCIe/IO
stop.  Each sub-ring connects its 16 cores plus its bridge router.

Routing is leg-chained: a core-to-memory packet crosses its sub-ring to
the bridge, pays the bridge transfer latency, then rides the main ring to
the controller stop.  Every leg models link contention through
:class:`~repro.noc.link.RingSegment`.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..config import RingConfig
from ..errors import NocError
from ..sim.component import Component
from ..sim.engine import Completion, Simulator, active_sim
from ..sim.snapshot import snapshotable
from ..sim.stats import StatsRegistry
from .packet import NodeId, Packet
from .ring import Ring

__all__ = ["HierarchicalRingNoC"]


@snapshotable
class _NocFlight:
    """Explicit-state form of the leg-chained routing process.

    Phases mirror the old ``_route`` generator's yield points: each
    sub-ring / main-ring leg is a :class:`Completion` the flight waits
    on, with the bridge transfer delays between them.
    """

    __slots__ = ("noc", "packet", "completion", "phase")

    def __init__(self, noc: "HierarchicalRingNoC", packet: Packet,
                 completion: Completion) -> None:
        self.noc = noc
        self.packet = packet
        self.completion = completion
        self.phase = "start"

    def _src_ring(self) -> Optional[int]:
        return self.noc._ring_of(self.packet.src)

    def _dst_ring(self) -> Optional[int]:
        return self.noc._ring_of(self.packet.dst)

    def _step(self, _payload=None) -> None:
        noc = self.noc
        # Sharded runs dispatch this flight from several engines (sub-ring
        # legs on ring engines, main-ring legs on the hub); serial runs
        # always resolve to the NoC's own engine.
        sim = active_sim(noc.sim)
        packet = self.packet
        while True:
            if self.phase == "start":
                src_ring = self._src_ring()
                dst_ring = self._dst_ring()
                if (src_ring is not None and dst_ring is not None
                        and src_ring == dst_ring):
                    # Same sub-ring: one leg.
                    leg = noc.sub_ring_nets[src_ring].send(
                        packet, noc.sub_stop(packet.src),
                        noc.sub_stop(packet.dst), final=False)
                    self.phase = "deliver"
                    leg.wait(self._step)
                    return
                if src_ring is not None:
                    # Leg 1: source sub-ring to its bridge.
                    leg = noc.sub_ring_nets[src_ring].send(
                        packet, noc.sub_stop(packet.src),
                        noc.sub_stop(NodeId("bridge", ring=src_ring)),
                        final=False)
                    self.phase = "bridge_in"
                    leg.wait(self._step)
                    return
                self.phase = "main"
                continue
            if self.phase == "bridge_in":
                src_ring = self._src_ring()
                if packet.traces:
                    packet.advance_traces(
                        "bridge", f"{noc.path}.bridge{src_ring}", sim.now)
                self.phase = "main"
                noc._cross_to_hub(src_ring, self._step)
                return
            if self.phase == "main":
                # Leg 2: main ring.
                src_ring = self._src_ring()
                dst_ring = self._dst_ring()
                if src_ring is not None:
                    main_src = noc.main_stop(NodeId("bridge", ring=src_ring))
                else:
                    main_src = noc.main_stop(packet.src)
                if dst_ring is not None:
                    main_dst = noc.main_stop(NodeId("bridge", ring=dst_ring))
                else:
                    main_dst = noc.main_stop(packet.dst)
                self.phase = "bridge_out"
                if main_src != main_dst:
                    leg = noc.main_ring.send(packet, main_src, main_dst,
                                             final=False)
                    leg.wait(self._step)
                    return
                continue
            if self.phase == "bridge_out":
                # Leg 3: destination sub-ring (if destination is a core).
                dst_ring = self._dst_ring()
                if dst_ring is None:
                    self.phase = "deliver"
                    continue
                if packet.traces:
                    packet.advance_traces(
                        "bridge", f"{noc.path}.bridge{dst_ring}", sim.now)
                self.phase = "leg_out"
                noc._cross_to_sub(dst_ring, self._step)
                return
            if self.phase == "leg_out":
                dst_ring = self._dst_ring()
                leg = noc.sub_ring_nets[dst_ring].send(
                    packet, noc.sub_stop(NodeId("bridge", ring=dst_ring)),
                    noc.sub_stop(packet.dst), final=False)
                self.phase = "deliver"
                leg.wait(self._step)
                return
            if self.phase == "deliver":
                noc.delivered.inc()
                noc.latency.add(sim.now - packet.created_at)
                packet.deliver(sim.now)
                self.completion.finish(sim.now)
                return
            raise NocError(f"noc flight in unknown phase {self.phase!r}")


class HierarchicalRingNoC(Component):
    """The full on-chip network of the SmarCo chip.

    Packets enter either through :meth:`send` (returns the routing
    :class:`~repro.sim.engine.Process` to block on) or fire-and-forget
    through the ``inject`` input port.
    """

    def __init__(
        self,
        sim: Simulator,
        sub_rings: int,
        cores_per_sub_ring: int,
        mem_channels: int,
        config: Optional[RingConfig] = None,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: str = "noc",
        sub_ring_sims: Optional[List[Simulator]] = None,
        shard_channels=None,
    ) -> None:
        if mem_channels > sub_rings:
            raise NocError("more memory controllers than main-ring bridge slots")
        if sub_ring_sims is not None and len(sub_ring_sims) != sub_rings:
            raise NocError("one sub-ring engine required per sub-ring")
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.config = config if config is not None else RingConfig()
        # Sharded partition hooks: per-sub-ring engines and the boundary
        # channels bridging them to the hub (None in serial runs).
        self._sub_ring_sims = sub_ring_sims
        self._to_hub = shard_channels[0] if shard_channels else None
        self._to_sub = shard_channels[1] if shard_channels else None
        self.inject = self.in_port("inject", Packet, handler=self.send)
        self.num_sub_rings = sub_rings
        self.cores_per_sub_ring = cores_per_sub_ring

        # -- main-ring stop layout: bridges with MCs interleaved at equal
        #    spacing, then scheduler + IO stops.
        self.main_stops: List[NodeId] = []
        self._main_stop_of: Dict[NodeId, int] = {}
        spacing = max(1, sub_rings // max(1, mem_channels))
        mc_placed = 0
        for s in range(sub_rings):
            self._add_main_stop(NodeId("bridge", ring=s))
            if (s + 1) % spacing == 0 and mc_placed < mem_channels:
                self._add_main_stop(NodeId("mc", index=mc_placed))
                mc_placed += 1
        while mc_placed < mem_channels:
            self._add_main_stop(NodeId("mc", index=mc_placed))
            mc_placed += 1
        self._add_main_stop(NodeId("sched"))
        self._add_main_stop(NodeId("io"))

        self.main_ring = Ring.from_config(
            sim, "main", len(self.main_stops), self.config,
            is_main=True, registry=self.stats,
        )

        # -- sub-rings: cores 0..n-1, bridge at the last stop.
        self.sub_ring_nets: List[Ring] = [
            Ring.from_config(
                sub_ring_sims[s] if sub_ring_sims is not None else sim,
                f"sub{s}", cores_per_sub_ring + 1, self.config,
                is_main=False, registry=self.stats,
            )
            for s in range(sub_rings)
        ]

        self.injected = self.stats.counter("injected")
        self.delivered = self.stats.counter("delivered")
        self.latency = self.stats.accumulator("latency")

    def attach_audit(self, auditor) -> None:
        auditor.register_flow(self.path, self.injected, self.delivered)
        for ring in [self.main_ring] + self.sub_ring_nets:
            for seg in ring.segments:
                auditor.register_link(seg.cw)
                auditor.register_link(seg.ccw)
                if seg.bidi is not None:
                    auditor.register_link(seg.bidi)

    def _add_main_stop(self, node: NodeId) -> None:
        self._main_stop_of[node] = len(self.main_stops)
        self.main_stops.append(node)

    # -- stop lookup -------------------------------------------------------------

    def main_stop(self, node: NodeId) -> int:
        """Main-ring stop index of a bridge / mc / sched / io node."""
        try:
            return self._main_stop_of[node]
        except KeyError:
            raise NocError(f"{node} is not on the main ring") from None

    def sub_stop(self, node: NodeId) -> int:
        """Sub-ring stop index of a core or bridge node."""
        if node.kind == "core":
            if not 0 <= node.index < self.cores_per_sub_ring:
                raise NocError(f"{node}: core index out of range")
            return node.index
        if node.kind == "bridge":
            return self.cores_per_sub_ring
        raise NocError(f"{node} is not on a sub-ring")

    def _ring_of(self, node: NodeId) -> Optional[int]:
        """Sub-ring number for core nodes, None for main-ring devices."""
        return node.ring if node.kind == "core" else None

    # -- domain boundaries -------------------------------------------------------

    def _cross_to_hub(self, ring: int, fn) -> None:
        """Bridge transfer sub-ring ``ring`` -> main ring (one bridge latency)."""
        if self._to_hub is not None:
            self._to_hub[ring].cross(fn, None)
        else:
            active_sim(self.sim).schedule(
                self.config.bridge_latency, fn, None)

    def _cross_to_sub(self, ring: int, fn) -> None:
        """Bridge transfer main ring -> sub-ring ``ring``."""
        if self._to_sub is not None:
            self._to_sub[ring].cross(fn, None)
        else:
            active_sim(self.sim).schedule(
                self.config.bridge_latency, fn, None)

    # -- sending -------------------------------------------------------------------

    def send(self, packet: Packet) -> Completion:
        """Route ``packet`` from ``packet.src`` to ``packet.dst``."""
        sim = active_sim(self.sim)
        packet.created_at = sim.now
        self.injected.inc()
        completion = Completion(sim, f"noc.pkt{packet.pkt_id}")
        flight = _NocFlight(self, packet, completion)
        sim.schedule(0, flight._step, None)
        return completion

    # -- snapshot protocol -------------------------------------------------------------

    def snapshot_anchors(self) -> dict:
        anchors = {"ring:main": self.main_ring}
        for i, ring in enumerate(self.sub_ring_nets):
            anchors[f"ring:sub{i}"] = ring
        return anchors

    def extra_state(self) -> dict:
        return {
            "main": self.main_ring.state_dict(),
            "subs": [ring.state_dict() for ring in self.sub_ring_nets],
        }

    def load_extra_state(self, state: dict) -> None:
        self.main_ring.load_state(state["main"])
        for ring, ring_state in zip(self.sub_ring_nets, state["subs"]):
            ring.load_state(ring_state)

    # -- chip-level metrics -----------------------------------------------------------

    def total_bytes(self) -> int:
        return self.main_ring.total_bytes() + sum(
            r.total_bytes() for r in self.sub_ring_nets
        )

    def mean_latency(self) -> float:
        return self.latency.mean

    def bandwidth_utilization(self, now: float) -> float:
        """Mean segment utilisation across the whole chip in [0, now]."""
        if now <= 0:
            return 0.0
        links = []
        for ring in [self.main_ring] + self.sub_ring_nets:
            for seg in ring.segments:
                links.append(seg.cw.utilization(now))
                links.append(seg.ccw.utilization(now))
                if seg.bidi is not None:
                    links.append(seg.bidi.utilization(now))
        return sum(links) / len(links) if links else 0.0
