"""Bidirectional ring network (paper §3.2, Fig 7).

A :class:`Ring` is an ordered list of stops joined by
:class:`~repro.noc.link.RingSegment` wires.  Packets traverse hop-by-hop
as simulation processes: per hop one router-pipeline delay plus the link
reservation.  Direction is chosen per packet: shortest path, ties broken
by congestion — "cores are able to choose both directions of sub-ring to
send packets based on the congestion condition".
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..config import RingConfig
from ..errors import NocError
from ..sim.engine import Process, Simulator
from ..sim.stats import StatsRegistry, StatsScope
from .link import RingSegment
from .packet import Packet

__all__ = ["Ring"]


class Ring:
    """A ring of ``n`` stops with per-segment wires and per-hop routing.

    ``stop_names`` are opaque labels (e.g. :class:`NodeId`); the ring only
    needs their order.  Segment ``i`` connects stop ``i`` to ``(i+1) % n``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_stops: int,
        datapath_bytes: int = 8,
        fixed_per_dir: int = 1,
        bidi_datapaths: int = 2,
        slice_bytes: int = 2,
        policy: str = "greedy",
        hop_latency: int = 1,
        router_latency: int = 1,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if num_stops < 2:
            raise NocError(f"ring needs >=2 stops, got {num_stops}")
        self.sim = sim
        self.name = name
        self.num_stops = num_stops
        self.hop_latency = hop_latency
        self.router_latency = router_latency
        self.segments: List[RingSegment] = [
            RingSegment(
                f"{name}.seg{i}", datapath_bytes, fixed_per_dir,
                bidi_datapaths, slice_bytes, policy, registry,
            )
            for i in range(num_stops)
        ]
        reg = registry if registry is not None else StatsRegistry()
        # Fully-qualified component path for hop stamping (a chip-built ring
        # receives a StatsScope; a bare ring just uses its name).
        self.qualname = reg.qualify(name) if isinstance(reg, StatsScope) else name
        self.delivered = reg.counter(f"{name}.delivered")
        self.latency = reg.accumulator(f"{name}.latency")
        self.hop_count = reg.accumulator(f"{name}.hops")

    @classmethod
    def from_config(
        cls,
        sim: Simulator,
        name: str,
        num_stops: int,
        config: RingConfig,
        is_main: bool = False,
        registry: Optional[StatsRegistry] = None,
    ) -> "Ring":
        """Build a main-ring or sub-ring per the paper's datapath counts."""
        fixed = config.main_ring_fixed_per_dir if is_main else config.sub_ring_fixed_per_dir
        total = config.main_ring_datapaths if is_main else config.sub_ring_datapaths
        bidi = total - 2 * fixed
        return cls(
            sim, name, num_stops,
            datapath_bytes=config.datapath_bits // 8,
            fixed_per_dir=fixed,
            bidi_datapaths=bidi,
            slice_bytes=config.slice_bytes,
            policy="greedy" if config.greedy_allocation else "monolithic",
            hop_latency=config.hop_latency,
            router_latency=config.router_latency,
            registry=registry,
        )

    # -- routing ---------------------------------------------------------------

    def distance(self, src: int, dst: int, direction: str) -> int:
        """Hop count from src to dst travelling cw (+1) or ccw (-1)."""
        if direction == "cw":
            return (dst - src) % self.num_stops
        return (src - dst) % self.num_stops

    def choose_direction(self, src: int, dst: int) -> str:
        """Shortest path; near-ties broken by first-segment congestion."""
        d_cw = self.distance(src, dst, "cw")
        d_ccw = self.distance(src, dst, "ccw")
        if d_cw < d_ccw:
            return "cw"
        if d_ccw < d_cw:
            return "ccw"
        # equal distance: pick the less congested first hop
        seg_cw = self.segments[src]
        seg_ccw = self.segments[(src - 1) % self.num_stops]
        return "cw" if seg_cw.next_free("cw") <= seg_ccw.next_free("ccw") else "ccw"

    def _next_segment(self, stop: int, direction: str) -> Tuple[RingSegment, int]:
        if direction == "cw":
            return self.segments[stop], (stop + 1) % self.num_stops
        return self.segments[(stop - 1) % self.num_stops], (stop - 1) % self.num_stops

    # -- transmission -------------------------------------------------------------

    def send(self, packet: Packet, src_stop: int, dst_stop: int,
             final: bool = True) -> Process:
        """Inject ``packet`` at ``src_stop``; returns the traversal process.

        With ``final=True`` (a complete route) the packet's ``deliver``
        fires at arrival; hierarchical routing chains rings with
        ``final=False`` legs and a final leg.  The process result is the
        arrival time.
        """
        if not (0 <= src_stop < self.num_stops and 0 <= dst_stop < self.num_stops):
            raise NocError(
                f"{self.name}: stops {src_stop}->{dst_stop} outside ring "
                f"of {self.num_stops}"
            )
        return self.sim.spawn(
            self._traverse(packet, src_stop, dst_stop, final),
            f"{self.name}.pkt{packet.pkt_id}",
        )

    def _traverse(self, packet: Packet, src: int, dst: int, final: bool) -> Generator:
        stop = src
        hops = 0
        direction = self.choose_direction(src, dst)
        while stop != dst:
            if packet.traces:
                packet.advance_traces("router", self.qualname, self.sim.now)
            yield self.router_latency
            segment, nxt = self._next_segment(stop, direction)
            start, finish = segment.transmit_detail(
                direction, packet.size_bytes, self.sim.now)
            if packet.traces:
                if start > self.sim.now:
                    packet.advance_traces("link_wait", self.qualname, self.sim.now)
                packet.advance_traces("link_xfer", self.qualname, start)
            yield max(0.0, finish - self.sim.now) + self.hop_latency
            stop = nxt
            hops += 1
        packet.hops += hops
        self.hop_count.add(hops)
        if final:
            self.delivered.inc()
            self.latency.add(self.sim.now - packet.created_at)
            packet.deliver(self.sim.now)
        return self.sim.now

    def total_bytes(self) -> int:
        return sum(seg.total_bytes for seg in self.segments)
