"""Bidirectional ring network (paper §3.2, Fig 7).

A :class:`Ring` is an ordered list of stops joined by
:class:`~repro.noc.link.RingSegment` wires.  Packets traverse hop-by-hop
as simulation processes: per hop one router-pipeline delay plus the link
reservation.  Direction is chosen per packet: shortest path, ties broken
by congestion — "cores are able to choose both directions of sub-ring to
send packets based on the congestion condition".
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..config import RingConfig
from ..errors import NocError
from ..sim.engine import Completion, Simulator
from ..sim.snapshot import snapshotable
from ..sim.stats import StatsRegistry, StatsScope
from .link import RingSegment
from .packet import Packet

__all__ = ["Ring"]


@snapshotable
class _RingFlight:
    """Explicit-state form of the per-packet traversal process.

    Each ``_step`` is one resume of the old ``_traverse`` generator:
    the direction is chosen on the first step (not at injection — other
    same-cycle events may change congestion first), then the flight
    alternates router delay and link reservation per hop, issuing the
    same ``schedule`` calls in the same order.
    """

    __slots__ = ("ring", "packet", "stop", "dst", "final", "completion",
                 "direction", "hops", "phase")

    def __init__(self, ring: "Ring", packet: Packet, src: int, dst: int,
                 final: bool, completion: Completion) -> None:
        self.ring = ring
        self.packet = packet
        self.stop = src
        self.dst = dst
        self.final = final
        self.completion = completion
        self.direction: Optional[str] = None
        self.hops = 0
        self.phase = "route"

    def _step(self, _payload=None) -> None:
        ring = self.ring
        sim = ring.sim
        packet = self.packet
        if self.direction is None:
            self.direction = ring.choose_direction(self.stop, self.dst)
        while True:
            if self.phase == "route":
                if self.stop == self.dst:
                    packet.hops += self.hops
                    ring.hop_count.add(self.hops)
                    if self.final:
                        ring.delivered.inc()
                        ring.latency.add(sim.now - packet.created_at)
                        packet.deliver(sim.now)
                    self.completion.finish(sim.now)
                    return
                if packet.traces:
                    packet.advance_traces("router", ring.qualname, sim.now)
                self.phase = "xfer"
                sim.schedule(ring.router_latency, self._step, None)
                return
            if self.phase == "xfer":
                segment, nxt = ring._next_segment(self.stop, self.direction)
                start, finish = segment.transmit_detail(
                    self.direction, packet.size_bytes, sim.now)
                if packet.traces:
                    if start > sim.now:
                        packet.advance_traces("link_wait", ring.qualname,
                                              sim.now)
                    packet.advance_traces("link_xfer", ring.qualname, start)
                self.stop = nxt
                self.hops += 1
                self.phase = "route"
                sim.schedule(max(0.0, finish - sim.now) + ring.hop_latency,
                             self._step, None)
                return
            raise NocError(f"ring flight in unknown phase {self.phase!r}")


class Ring:
    """A ring of ``n`` stops with per-segment wires and per-hop routing.

    ``stop_names`` are opaque labels (e.g. :class:`NodeId`); the ring only
    needs their order.  Segment ``i`` connects stop ``i`` to ``(i+1) % n``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_stops: int,
        datapath_bytes: int = 8,
        fixed_per_dir: int = 1,
        bidi_datapaths: int = 2,
        slice_bytes: int = 2,
        policy: str = "greedy",
        hop_latency: int = 1,
        router_latency: int = 1,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if num_stops < 2:
            raise NocError(f"ring needs >=2 stops, got {num_stops}")
        self.sim = sim
        self.name = name
        self.num_stops = num_stops
        self.hop_latency = hop_latency
        self.router_latency = router_latency
        self.segments: List[RingSegment] = [
            RingSegment(
                f"{name}.seg{i}", datapath_bytes, fixed_per_dir,
                bidi_datapaths, slice_bytes, policy, registry,
            )
            for i in range(num_stops)
        ]
        reg = registry if registry is not None else StatsRegistry()
        # Fully-qualified component path for hop stamping (a chip-built ring
        # receives a StatsScope; a bare ring just uses its name).
        self.qualname = reg.qualify(name) if isinstance(reg, StatsScope) else name
        self.delivered = reg.counter(f"{name}.delivered")
        self.latency = reg.accumulator(f"{name}.latency")
        self.hop_count = reg.accumulator(f"{name}.hops")

    @classmethod
    def from_config(
        cls,
        sim: Simulator,
        name: str,
        num_stops: int,
        config: RingConfig,
        is_main: bool = False,
        registry: Optional[StatsRegistry] = None,
    ) -> "Ring":
        """Build a main-ring or sub-ring per the paper's datapath counts."""
        fixed = config.main_ring_fixed_per_dir if is_main else config.sub_ring_fixed_per_dir
        total = config.main_ring_datapaths if is_main else config.sub_ring_datapaths
        bidi = total - 2 * fixed
        return cls(
            sim, name, num_stops,
            datapath_bytes=config.datapath_bits // 8,
            fixed_per_dir=fixed,
            bidi_datapaths=bidi,
            slice_bytes=config.slice_bytes,
            policy="greedy" if config.greedy_allocation else "monolithic",
            hop_latency=config.hop_latency,
            router_latency=config.router_latency,
            registry=registry,
        )

    # -- routing ---------------------------------------------------------------

    def distance(self, src: int, dst: int, direction: str) -> int:
        """Hop count from src to dst travelling cw (+1) or ccw (-1)."""
        if direction == "cw":
            return (dst - src) % self.num_stops
        return (src - dst) % self.num_stops

    def choose_direction(self, src: int, dst: int) -> str:
        """Shortest path; near-ties broken by first-segment congestion."""
        d_cw = self.distance(src, dst, "cw")
        d_ccw = self.distance(src, dst, "ccw")
        if d_cw < d_ccw:
            return "cw"
        if d_ccw < d_cw:
            return "ccw"
        # equal distance: pick the less congested first hop
        seg_cw = self.segments[src]
        seg_ccw = self.segments[(src - 1) % self.num_stops]
        return "cw" if seg_cw.next_free("cw") <= seg_ccw.next_free("ccw") else "ccw"

    def _next_segment(self, stop: int, direction: str) -> Tuple[RingSegment, int]:
        if direction == "cw":
            return self.segments[stop], (stop + 1) % self.num_stops
        return self.segments[(stop - 1) % self.num_stops], (stop - 1) % self.num_stops

    # -- transmission -------------------------------------------------------------

    def send(self, packet: Packet, src_stop: int, dst_stop: int,
             final: bool = True) -> Completion:
        """Inject ``packet`` at ``src_stop``; returns the traversal handle.

        With ``final=True`` (a complete route) the packet's ``deliver``
        fires at arrival; hierarchical routing chains rings with
        ``final=False`` legs and a final leg.  The completion result is
        the arrival time.
        """
        if not (0 <= src_stop < self.num_stops and 0 <= dst_stop < self.num_stops):
            raise NocError(
                f"{self.name}: stops {src_stop}->{dst_stop} outside ring "
                f"of {self.num_stops}"
            )
        completion = Completion(self.sim, f"{self.name}.pkt{packet.pkt_id}")
        flight = _RingFlight(self, packet, src_stop, dst_stop, final,
                             completion)
        self.sim.schedule(0, flight._step, None)
        return completion

    def total_bytes(self) -> int:
        return sum(seg.total_bytes for seg in self.segments)

    # -- snapshot protocol -----------------------------------------------------

    def state_dict(self) -> dict:
        return {"segments": [seg.state_dict() for seg in self.segments]}

    def load_state(self, state: dict) -> None:
        saved = state["segments"]
        if len(saved) != len(self.segments):
            raise NocError(
                f"{self.name}: checkpoint has {len(saved)} segments, "
                f"ring has {len(self.segments)}")
        for seg, seg_state in zip(self.segments, saved):
            seg.load_state(seg_state)
