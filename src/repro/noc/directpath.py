"""Star-shaped direct memory datapath (paper §3.5.2, Fig 14).

Each sub-ring owns a dedicated point-to-point channel to the memory
system, bypassing both rings.  It serves control messages and
high-real-time-priority read requests, "especially when the ring network
is in heavy congestion".  Modelled as one narrow sliced link per sub-ring
plus a fixed fly-over latency.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..errors import NocError
from ..sim.component import Component
from ..sim.engine import Completion, Simulator
from ..sim.snapshot import snapshotable
from ..sim.stats import StatsRegistry
from .link import SlicedLink
from .packet import Packet

__all__ = ["DirectDatapath"]


@snapshotable
class _DirectFlight:
    """Explicit-state form of the star-link fly-over process."""

    __slots__ = ("dp", "packet", "sub_ring", "completion", "phase")

    def __init__(self, dp: "DirectDatapath", packet: Packet,
                 sub_ring: int, completion: Completion) -> None:
        self.dp = dp
        self.packet = packet
        self.sub_ring = sub_ring
        self.completion = completion
        self.phase = "reserve"

    def _step(self, _payload=None) -> None:
        dp = self.dp
        sim = dp.sim
        packet = self.packet
        if self.phase == "reserve":
            link = dp.links[self.sub_ring]
            start, finish = link.reserve(packet.size_bytes, sim.now)
            if packet.traces:
                component = f"{dp.path}.link{self.sub_ring}"
                if start > sim.now:
                    packet.advance_traces("link_wait", component, sim.now)
                packet.advance_traces("direct", component, start)
            self.phase = "arrive"
            sim.schedule(max(0.0, finish - sim.now) + dp.latency,
                         self._step, None)
            return
        dp.delivered.inc()
        dp.lat_stat.add(sim.now - packet.created_at)
        packet.deliver(sim.now)
        self.completion.finish(sim.now)


class DirectDatapath(Component):
    """Per-sub-ring star links into the memory controllers."""

    def __init__(
        self,
        sim: Simulator,
        sub_rings: int,
        link_bytes: int = 8,
        latency: int = 4,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: str = "direct",
    ) -> None:
        if sub_rings < 1:
            raise NocError("direct datapath needs >=1 sub-ring")
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.latency = latency
        self.links: List[SlicedLink] = [
            SlicedLink(f"link{s}", link_bytes, link_bytes, "monolithic",
                       self.stats)
            for s in range(sub_rings)
        ]
        self.injected = self.stats.counter("injected")
        self.delivered = self.stats.counter("delivered")
        self.lat_stat = self.stats.accumulator("latency")

    def attach_audit(self, auditor) -> None:
        auditor.register_flow(self.path, self.injected, self.delivered)
        for link in self.links:
            auditor.register_link(link)

    def eligible(self, packet: Packet) -> bool:
        """Only control messages and real-time reads ride the star path."""
        from .packet import PacketKind

        if packet.kind is PacketKind.CONTROL:
            return True
        return packet.realtime and packet.kind is PacketKind.MEM_READ

    def send(self, packet: Packet, sub_ring: int) -> Completion:
        """Fly a packet from ``sub_ring`` straight to memory (or back)."""
        if not 0 <= sub_ring < len(self.links):
            raise NocError(f"sub-ring {sub_ring} has no direct link")
        packet.created_at = self.sim.now
        self.injected.inc()
        completion = Completion(self.sim, f"direct.pkt{packet.pkt_id}")
        flight = _DirectFlight(self, packet, sub_ring, completion)
        self.sim.schedule(0, flight._step, None)
        return completion

    # -- snapshot protocol -----------------------------------------------------

    def snapshot_anchors(self) -> dict:
        return {f"link{i}": link for i, link in enumerate(self.links)}

    def extra_state(self) -> dict:
        return {"links": [link.state_dict() for link in self.links]}

    def load_extra_state(self, state: dict) -> None:
        for link, link_state in zip(self.links, state["links"]):
            link.load_state(link_state)
