"""Star-shaped direct memory datapath (paper §3.5.2, Fig 14).

Each sub-ring owns a dedicated point-to-point channel to the memory
system, bypassing both rings.  It serves control messages and
high-real-time-priority read requests, "especially when the ring network
is in heavy congestion".  Modelled as one narrow sliced link per sub-ring
plus a fixed fly-over latency.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..errors import NocError
from ..sim.component import Component
from ..sim.engine import Process, Simulator
from ..sim.stats import StatsRegistry
from .link import SlicedLink
from .packet import Packet

__all__ = ["DirectDatapath"]


class DirectDatapath(Component):
    """Per-sub-ring star links into the memory controllers."""

    def __init__(
        self,
        sim: Simulator,
        sub_rings: int,
        link_bytes: int = 8,
        latency: int = 4,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: str = "direct",
    ) -> None:
        if sub_rings < 1:
            raise NocError("direct datapath needs >=1 sub-ring")
        super().__init__(name, parent=parent, sim=sim, registry=registry)
        self.latency = latency
        self.links: List[SlicedLink] = [
            SlicedLink(f"link{s}", link_bytes, link_bytes, "monolithic",
                       self.stats)
            for s in range(sub_rings)
        ]
        self.injected = self.stats.counter("injected")
        self.delivered = self.stats.counter("delivered")
        self.lat_stat = self.stats.accumulator("latency")

    def attach_audit(self, auditor) -> None:
        auditor.register_flow(self.path, self.injected, self.delivered)
        for link in self.links:
            auditor.register_link(link)

    def eligible(self, packet: Packet) -> bool:
        """Only control messages and real-time reads ride the star path."""
        from .packet import PacketKind

        if packet.kind is PacketKind.CONTROL:
            return True
        return packet.realtime and packet.kind is PacketKind.MEM_READ

    def send(self, packet: Packet, sub_ring: int) -> Process:
        """Fly a packet from ``sub_ring`` straight to memory (or back)."""
        if not 0 <= sub_ring < len(self.links):
            raise NocError(f"sub-ring {sub_ring} has no direct link")
        packet.created_at = self.sim.now
        self.injected.inc()
        return self.sim.spawn(self._fly(packet, sub_ring),
                              f"direct.pkt{packet.pkt_id}")

    def _fly(self, packet: Packet, sub_ring: int) -> Generator:
        link = self.links[sub_ring]
        start, finish = link.reserve(packet.size_bytes, self.sim.now)
        if packet.traces:
            component = f"{self.path}.link{sub_ring}"
            if start > self.sim.now:
                packet.advance_traces("link_wait", component, self.sim.now)
            packet.advance_traces("direct", component, start)
        yield max(0.0, finish - self.sim.now) + self.latency
        self.delivered.inc()
        self.lat_stat.add(self.sim.now - packet.created_at)
        packet.deliver(self.sim.now)
        return self.sim.now
