"""2-D mesh NoC baseline with XY dimension-order routing.

Used by the topology ablation bench (DESIGN.md §5): the paper argues the
hierarchical ring beats a mesh for HTC traffic through simpler routers
(lower per-hop latency) and more predictable latency; the mesh baseline
lets us measure that trade-off.  Links are conventional (monolithic) by
default, matching mesh designs like Tile64.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..errors import NocError
from ..sim.engine import Process, Simulator
from ..sim.stats import StatsRegistry
from .link import SlicedLink
from .packet import Packet

__all__ = ["MeshNoC"]


class MeshNoC:
    """``width x height`` mesh; node id = y * width + x."""

    def __init__(
        self,
        sim: Simulator,
        width: int,
        height: int,
        link_bytes: int = 32,
        slice_bytes: Optional[int] = None,
        policy: str = "monolithic",
        hop_latency: int = 2,          # mesh routers are heavier than ring's
        router_latency: int = 2,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        if width < 1 or height < 1:
            raise NocError("mesh needs positive dimensions")
        self.sim = sim
        self.width = width
        self.height = height
        self.hop_latency = hop_latency
        self.router_latency = router_latency
        slice_b = slice_bytes if slice_bytes is not None else link_bytes
        # one link object per directed edge
        self._links: Dict[Tuple[int, int], SlicedLink] = {}
        for y in range(height):
            for x in range(width):
                node = y * width + x
                for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if 0 <= nx < width and 0 <= ny < height:
                        nbr = ny * width + nx
                        self._links[(node, nbr)] = SlicedLink(
                            f"mesh.{node}-{nbr}", link_bytes, slice_b, policy,
                            registry,
                        )
        reg = registry if registry is not None else StatsRegistry()
        self.delivered = reg.counter("mesh.delivered")
        self.latency = reg.accumulator("mesh.latency")
        self.hop_count = reg.accumulator("mesh.hops")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def _coords(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def xy_route(self, src: int, dst: int) -> List[int]:
        """Node sequence of the XY dimension-order route (excl. src)."""
        x, y = self._coords(src)
        dx, dy = self._coords(dst)
        path = []
        while x != dx:
            x += 1 if dx > x else -1
            path.append(y * self.width + x)
        while y != dy:
            y += 1 if dy > y else -1
            path.append(y * self.width + x)
        return path

    def send(self, packet: Packet, src: int, dst: int) -> Process:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise NocError(f"mesh nodes {src}->{dst} out of range")
        packet.created_at = self.sim.now
        return self.sim.spawn(self._traverse(packet, src, dst),
                              f"mesh.pkt{packet.pkt_id}")

    def _traverse(self, packet: Packet, src: int, dst: int) -> Generator:
        current = src
        hops = 0
        for nxt in self.xy_route(src, dst):
            yield self.router_latency
            link = self._links[(current, nxt)]
            finish = link.transmit(packet.size_bytes, self.sim.now)
            yield max(0.0, finish - self.sim.now) + self.hop_latency
            current = nxt
            hops += 1
        packet.hops += hops
        self.delivered.inc()
        self.hop_count.add(hops)
        self.latency.add(self.sim.now - packet.created_at)
        packet.deliver(self.sim.now)
        return self.sim.now

    def total_bytes(self) -> int:
        return sum(l.bytes_moved.value for l in self._links.values())
