"""NoC packet objects.

A packet is the unit of routing; flits are implicit — a packet of ``size``
bytes occupies ``ceil(size / slice_bytes)`` narrow-channel slice-cycles on
each link it crosses (paper §3.3: the high-density NoC lets a small packet
occupy only the channels it really needs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from ..sim.snapshot import snapshotable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.request import HopTrace

__all__ = ["NodeId", "PacketKind", "Packet"]

# plain module counter (not itertools.count) so checkpoints can capture
# and restore the id high-water mark
_next_packet_id = 0


def _new_packet_id() -> int:
    global _next_packet_id
    pid = _next_packet_id
    _next_packet_id += 1
    return pid


def packet_id_state() -> int:
    return _next_packet_id


def set_packet_id_state(value: int) -> None:
    global _next_packet_id
    _next_packet_id = value


class PacketKind(enum.Enum):
    MEM_READ = "mem_read"
    MEM_WRITE = "mem_write"
    MEM_REPLY = "mem_reply"
    SPM_TRANSFER = "spm_transfer"
    CONTROL = "control"
    TASK_DISPATCH = "task_dispatch"


@snapshotable
@dataclass(frozen=True)
class NodeId:
    """Address of a NoC endpoint.

    ``kind``: ``"core"`` (sub_ring, index), ``"bridge"`` (sub_ring, 0),
    ``"mc"`` (memory controller), ``"sched"`` (main scheduler), ``"io"``
    (PCIe / host).
    """

    kind: str
    ring: int = 0        # sub-ring number (cores/bridges) or 0
    index: int = 0       # position within the ring / controller number

    def __str__(self) -> str:
        return f"{self.kind}[{self.ring}.{self.index}]"


@snapshotable
class Packet:
    """One message travelling the NoC.

    A plain ``__slots__`` class rather than a dataclass: packets are the
    single most-allocated object in a chip run, and slots cut both the
    per-instance memory and the attribute-access cost on the ring/link
    hot paths.
    """

    __slots__ = ("src", "dst", "size_bytes", "kind", "realtime", "payload",
                 "created_at", "delivered_at", "hops", "on_delivered",
                 "pkt_id", "traces")

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        size_bytes: int,
        kind: PacketKind = PacketKind.CONTROL,
        realtime: bool = False,
        payload: Any = None,
        created_at: float = 0.0,
        delivered_at: Optional[float] = None,
        hops: int = 0,
        on_delivered: Optional[Callable[["Packet", float], None]] = None,
        pkt_id: Optional[int] = None,
        traces: Tuple["HopTrace", ...] = (),
    ) -> None:
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.kind = kind
        self.realtime = realtime
        self.payload = payload
        self.created_at = created_at
        self.delivered_at = delivered_at
        self.hops = hops
        self.on_delivered = on_delivered
        self.pkt_id = _new_packet_id() if pkt_id is None else pkt_id
        #: hop traces of the transactions riding this packet (a MACT batch
        #: packet carries one per member request); empty = untraced
        self.traces = traces

    def advance_traces(self, stage: str, component: str, now: float) -> None:
        """Advance every riding transaction's hop chain (NoC legs)."""
        for trace in self.traces:
            trace.advance(stage, component, now)

    @property
    def latency(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def deliver(self, now: float) -> None:
        if self.delivered_at is not None:
            return
        self.delivered_at = now
        if self.on_delivered is not None:
            self.on_delivered(self, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet#{self.pkt_id}({self.kind.value} {self.src}->{self.dst} "
            f"{self.size_bytes}B)"
        )
