"""Synthetic traffic generation for NoC experiments.

Drives the high-density-NoC sweep (paper Fig 18): open-loop injection of
packets whose size distribution follows a workload's memory-access
granularity histogram (paper Fig 8), measured as delivered packets per
cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ..errors import WorkloadError
from ..sim.engine import Simulator
from ..sim.rng import RngTree
from .hierring import HierarchicalRingNoC
from .packet import NodeId, Packet, PacketKind

__all__ = ["GranularityDist", "TrafficGenerator", "TrafficResult", "run_uniform_traffic"]


@dataclass(frozen=True)
class GranularityDist:
    """A discrete packet-size distribution (bytes -> probability weight)."""

    weights: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise WorkloadError("empty granularity distribution")
        if any(size <= 0 or w < 0 for size, w in self.weights):
            raise WorkloadError("granularity entries must be positive")
        if sum(w for _, w in self.weights) <= 0:
            raise WorkloadError("granularity weights must sum > 0")

    def sample(self, rng: random.Random) -> int:
        sizes = [s for s, _ in self.weights]
        weights = [w for _, w in self.weights]
        return rng.choices(sizes, weights=weights, k=1)[0]

    def mean(self) -> float:
        total = sum(w for _, w in self.weights)
        return sum(s * w for s, w in self.weights) / total


@dataclass
class TrafficResult:
    """Outcome of one traffic run."""

    injected: int = 0
    delivered: int = 0
    duration: float = 0.0
    total_latency: float = 0.0

    @property
    def throughput(self) -> float:
        """Delivered packets per cycle (paper Fig 18's y-axis)."""
        return self.delivered / self.duration if self.duration else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class TrafficGenerator:
    """Open-loop injector: every core emits packets at ``injection_rate``
    packets/cycle toward memory controllers (the dominant HTC pattern) or
    uniformly random cores."""

    def __init__(
        self,
        sim: Simulator,
        noc: HierarchicalRingNoC,
        dist: GranularityDist,
        injection_rate: float,
        pattern: str = "memory",
        seed: int = 0,
    ) -> None:
        if not 0 < injection_rate <= 1:
            raise WorkloadError("injection_rate must be in (0, 1]")
        if pattern not in ("memory", "uniform"):
            raise WorkloadError(f"unknown traffic pattern {pattern!r}")
        self.sim = sim
        self.noc = noc
        self.dist = dist
        self.injection_rate = injection_rate
        self.pattern = pattern
        self.rng = RngTree(seed).stream("traffic")
        self.result = TrafficResult()

    def _random_core(self) -> NodeId:
        ring = self.rng.randrange(self.noc.num_sub_rings)
        idx = self.rng.randrange(self.noc.cores_per_sub_ring)
        return NodeId("core", ring=ring, index=idx)

    def _destination(self) -> NodeId:
        if self.pattern == "memory":
            mcs = [n for n in self.noc.main_stops if n.kind == "mc"]
            return self.rng.choice(mcs)
        return self._random_core()

    def _on_delivered(self, packet: Packet, now: float) -> None:
        self.result.delivered += 1
        self.result.total_latency += packet.latency or 0.0

    def run(self, cycles: int) -> TrafficResult:
        """Inject for ``cycles`` and drain; returns the measured result.

        Injection uses a geometric inter-arrival per core with mean
        ``1 / injection_rate`` cycles (Bernoulli-per-cycle equivalent).
        """
        for ring in range(self.noc.num_sub_rings):
            for idx in range(self.noc.cores_per_sub_ring):
                src = NodeId("core", ring=ring, index=idx)
                t = 0.0
                while True:
                    gap = self.rng.expovariate(self.injection_rate)
                    t += max(1.0, gap)
                    if t >= cycles:
                        break
                    self.sim.schedule_at(t, self._inject, src)
        self.sim.run()
        self.result.duration = max(self.sim.now, cycles)
        return self.result

    def _inject(self, src: NodeId) -> None:
        dst = self._destination()
        if dst == src:
            return
        packet = Packet(
            src=src, dst=dst,
            size_bytes=self.dist.sample(self.rng),
            kind=PacketKind.MEM_READ,
            on_delivered=self._on_delivered,
        )
        self.result.injected += 1
        self.noc.send(packet)


def run_uniform_traffic(
    sub_rings: int,
    cores_per_sub_ring: int,
    dist: GranularityDist,
    slice_bytes: int,
    injection_rate: float = 0.05,
    cycles: int = 2000,
    greedy: bool = True,
    seed: int = 0,
) -> TrafficResult:
    """Convenience wrapper: build a fresh NoC with ``slice_bytes`` slicing
    and measure throughput under the given traffic (Fig 18 harness)."""
    from ..config import RingConfig

    sim = Simulator()
    config = RingConfig(slice_bytes=slice_bytes, greedy_allocation=greedy)
    noc = HierarchicalRingNoC(
        sim, sub_rings, cores_per_sub_ring,
        mem_channels=min(4, sub_rings), config=config,
    )
    gen = TrafficGenerator(sim, noc, dist, injection_rate, seed=seed)
    return gen.run(cycles)
