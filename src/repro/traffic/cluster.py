"""A cluster of SmarCo chips behind a front-end balancer, open loop.

This is the datacenter tier of the repro: open-loop arrivals
(:mod:`repro.traffic.arrivals`) flow through a registered front-end
balancer (:mod:`repro.traffic.balancer`) onto N chip servers, and every
request's arrival → start → finish stamps fold into the shared quantile
module (:mod:`repro.analysis.quantiles`) as p50/p95/p99/p99.9 and
SLO-violation fractions.

**The chip service model.**  Simulating a full cycle-accurate
:class:`~repro.chip.smarco.SmarCoChip` per request would cap runs at a
few thousand requests; instead each server is a *calibrated* queueing
model of one chip, and the calibration is a real chip run:

* :func:`calibrate_chip` executes the traffic request's own workload on
  a (hop-trace-sampled) SmarCoChip through the unified
  :func:`repro.chip.run.execute` entry point and measures the full-load
  per-context CPI plus the PR-3 hop-stamped latency histograms.
* A chip serves up to ``contexts`` (cores × threads/core) requests
  concurrently; excess requests queue FIFO at the chip.
* A request's service time is ``instrs × CPI × jitter``, where
  ``jitter`` is drawn from the measured hop-latency distribution
  normalised to mean 1 — the memory-tail variability the trace layer
  observed, applied per request.  (Assumption, stated: one multiplier
  per request models fully-correlated memory behaviour within a
  request, which is tail-conservative; see ``docs/traffic.md``.)
* A request landing off its flow's home sub-ring (because that
  sub-ring's context share is saturated) pays the cross-ring bridge
  penalty ``CROSS_RING_PENALTY`` — the structural term that makes the
  ``subring-aware`` balancer a different policy, not a relabelling.

Offered load is expressed as ``rho``, the arrival rate as a fraction of
the cluster's calibrated service capacity, so sweeps over
``traffic_load`` trace the offered-load-vs-latency hockey stick the SLO
report renders.  Everything is seeded through one
:class:`~repro.sim.rng.RngTree`, so a traffic run is deterministic and
cache-keyable like every other run kind.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..analysis.quantiles import ReservoirQuantiles, thin_sorted
from ..chip.results import DictResult
from ..errors import TrafficError
from ..sim.engine import Simulator
from ..sim.rng import RngTree
from ..sim.stats import StatsRegistry
from .arrivals import generate_requests
from .balancer import create_balancer
from .request import TrafficRequest

__all__ = [
    "CROSS_RING_PENALTY",
    "LATENCY_SAMPLE_CAP",
    "ChipCalibration",
    "ChipServer",
    "TrafficRunResult",
    "calibrate_chip",
    "synthetic_calibration",
    "run_traffic",
]

#: service multiplier for a request executing off its home sub-ring
#: (bridge hop both ways on the hierarchical ring; see docs/traffic.md)
CROSS_RING_PENALTY = 1.3

#: most latency samples a result record ships (thinned order statistics)
LATENCY_SAMPLE_CAP = 512

#: reservoir size of the streaming sketch (exact below this many requests)
RESERVOIR_CAPACITY = 8192


# -- calibration -------------------------------------------------------------


@dataclass(frozen=True)
class ChipCalibration:
    """What the cluster model knows about one chip, measured or synthetic."""

    workload: str
    contexts: int                        # concurrent service slots
    subrings: int
    cpi: float                           # full-load per-context CPI
    frequency_ghz: float
    #: empirical service-jitter distribution, mean-normalised to 1.0:
    #: bucket bounds plus weights; a request's multiplier is drawn
    #: uniformly inside its bucket (a point mass when lo == hi)
    jitter_lo: Tuple[float, ...]
    jitter_hi: Tuple[float, ...]
    jitter_weights: Tuple[float, ...]
    source: str = "measured"

    def __post_init__(self) -> None:
        if self.contexts <= 0 or self.subrings <= 0:
            raise TrafficError("calibration needs >= 1 context and sub-ring")
        if self.cpi <= 0:
            raise TrafficError(f"calibrated CPI must be positive: {self.cpi}")
        if not self.jitter_weights \
                or len({len(self.jitter_lo), len(self.jitter_hi),
                        len(self.jitter_weights)}) != 1 \
                or any(lo > hi for lo, hi in zip(self.jitter_lo,
                                                 self.jitter_hi)):
            raise TrafficError("jitter distribution is malformed")


_UNIT_JITTER = ((1.0,), (1.0,), (1.0,))


def _normalise_jitter(los: Sequence[float], his: Sequence[float],
                      weights: Sequence[float]
                      ) -> Tuple[Tuple[float, ...], Tuple[float, ...],
                                 Tuple[float, ...]]:
    """Scale a bucketed distribution to mean 1, weights to sum 1.

    The mean of a uniform draw in ``[lo, hi]`` is the midpoint, so the
    distribution mean is the weighted midpoint sum.
    """
    total = sum(weights)
    if total <= 0:
        return _UNIT_JITTER
    mean = sum((lo + hi) / 2.0 * w
               for lo, hi, w in zip(los, his, weights)) / total
    if mean <= 0:
        return _UNIT_JITTER
    return (tuple(lo / mean for lo in los),
            tuple(hi / mean for hi in his),
            tuple(w / total for w in weights))


def synthetic_calibration(contexts: int = 32, subrings: int = 2,
                          cpi: float = 2.0, frequency_ghz: float = 1.5,
                          workload: str = "synthetic") -> ChipCalibration:
    """A fixed calibration for kernels/tests that must not run a chip.

    The jitter shape is a mild heavy tail (most requests under the mean,
    a minority several times over it) so percentile math has something
    to measure.
    """
    los, his, weights = _normalise_jitter(
        (0.3, 0.9, 1.3, 3.0), (0.9, 1.3, 3.0, 9.0), (0.45, 0.40, 0.12, 0.03))
    return ChipCalibration(workload=workload, contexts=contexts,
                           subrings=subrings, cpi=cpi,
                           frequency_ghz=frequency_ghz,
                           jitter_lo=los, jitter_hi=his,
                           jitter_weights=weights, source="synthetic")


_HIST_MARK = ".hophist."


#: an open top bucket ``>X`` is modelled as uniform over [X, 4X]
_TAIL_STRETCH = 4.0


def _bucket_bounds(label: str) -> Optional[Tuple[float, float]]:
    """Duration bounds of one histogram bin label.

    Labels come from :meth:`repro.sim.stats.Histogram.bin_labels`:
    ``<=8``, ``(8,32]``, ``>2048``.
    """
    try:
        if label.startswith("<="):
            return 0.0, float(label[2:])
        if label.startswith(">"):
            edge = float(label[1:])
            return edge, edge * _TAIL_STRETCH
        if label.startswith("(") and label.endswith("]"):
            lo, hi = label[1:-1].split(",")
            return float(lo), float(hi)
    except ValueError:      # pragma: no cover - defensive
        return None
    return None


def _jitter_from_stats(stats: Dict[str, float]
                       ) -> Tuple[Tuple[float, ...], Tuple[float, ...],
                                  Tuple[float, ...]]:
    """Pool every hop-latency histogram into one jitter distribution.

    Bucket fractions are weighted by their histogram's sample count, so
    a hot stage (thousands of DRAM hops) outweighs a rarely-visited one.
    Falls back to the deterministic unit jitter when the run was not
    traced (no ``.hophist.`` keys).
    """
    counts: Dict[str, float] = {}
    for key, value in stats.items():
        if _HIST_MARK in key and key.endswith(".count"):
            counts[key[: -len(".count")]] = value
    pooled: Dict[Tuple[float, float], float] = {}
    for key, value in stats.items():
        if _HIST_MARK not in key or not key.endswith("]"):
            continue
        hist, _, label = key.rpartition("[")
        bounds = _bucket_bounds(label[:-1])
        total = counts.get(hist, 0.0)
        if bounds is None or total <= 0 or value <= 0:
            continue
        pooled[bounds] = pooled.get(bounds, 0.0) + value * total
    if not pooled:
        return _UNIT_JITTER
    buckets = sorted(pooled)
    return _normalise_jitter([b[0] for b in buckets],
                             [b[1] for b in buckets],
                             [pooled[b] for b in buckets])


#: per-process memo: calibration request snapshot -> ChipCalibration
_CALIBRATIONS: Dict[str, ChipCalibration] = {}


def calibrate_chip(request: Any) -> ChipCalibration:
    """Measure a chip service model by running the real chip once.

    ``request`` is the traffic :class:`~repro.exp.RunRequest`; the
    calibration run reuses its workload, seed, chip config and
    thread/instruction budgets, with hop-trace sampling forced to 1.0 so
    the jitter distribution has the full per-request latency evidence.
    Memoised per process on the calibration request snapshot.
    """
    import dataclasses

    from ..chip.run import execute
    from ..config import smarco_scaled
    from ..exp.cache import canonical_json

    config = request.smarco_config
    if config is None:
        config = smarco_scaled(2, 4)
    if not config.trace_sample_rate:
        config = dataclasses.replace(config, trace_sample_rate=1.0)
    # reset every traffic_* axis to its default so sweep points that vary
    # only in arrival/balancer/load/... share one calibration (and one
    # memo entry)
    traffic_defaults = {
        f.name: f.default for f in dataclasses.fields(type(request))
        if f.name.startswith("traffic_")}
    calib_request = request.replace(
        kind="smarco", smarco_config=config, shards=0, shard_quantum=None,
        run_cycles=None, warm_cycles=0.0, warm_axes=(), **traffic_defaults)
    key = canonical_json(calib_request.snapshot())
    cached = _CALIBRATIONS.get(key)
    if cached is not None:
        return cached
    outcome = execute(calib_request)
    result = outcome.result
    contexts = (config.sub_rings * config.cores_per_sub_ring
                * request.threads_per_core)
    if not result.instructions:
        raise TrafficError(
            f"calibration run of {request.workload!r} retired no "
            "instructions; cannot derive a service model")
    cpi = result.cycles * contexts / result.instructions
    los, his, weights = _jitter_from_stats(outcome.stats)
    calibration = ChipCalibration(
        workload=request.workload, contexts=contexts,
        subrings=config.sub_rings, cpi=cpi,
        frequency_ghz=config.frequency_ghz,
        jitter_lo=los, jitter_hi=his, jitter_weights=weights,
        source="measured")
    _CALIBRATIONS[key] = calibration
    return calibration


# -- the cluster -------------------------------------------------------------


class _JitterSampler:
    """Inverse-CDF bucket pick + intra-bucket uniform draw."""

    __slots__ = ("los", "his", "_cum", "rng")

    def __init__(self, calibration: ChipCalibration, rng) -> None:
        self.los = calibration.jitter_lo
        self.his = calibration.jitter_hi
        self._cum: List[float] = []
        acc = 0.0
        for w in calibration.jitter_weights:
            acc += w
            self._cum.append(acc)
        self._cum[-1] = 1.0          # guard against float drift
        self.rng = rng

    def __call__(self) -> float:
        i = bisect_left(self._cum, self.rng.random())
        lo, hi = self.los[i], self.his[i]
        if lo == hi:
            return lo
        return lo + (hi - lo) * self.rng.random()


class ChipServer:
    """One chip as a calibrated multi-context queueing server."""

    def __init__(self, sim: Simulator, chip_id: int,
                 calibration: ChipCalibration, jitter: _JitterSampler,
                 collector: "_Collector") -> None:
        self.sim = sim
        self.chip_id = chip_id
        self.calibration = calibration
        self.capacity = calibration.contexts
        self.subrings = calibration.subrings
        # nominal per-sub-ring context share (>= 1)
        self.ring_share = max(1, self.capacity // self.subrings)
        self.jitter = jitter
        self.collector = collector
        self.busy = 0
        self.served = 0
        self.queue: Deque[TrafficRequest] = deque()
        self._ring_busy = [0] * self.subrings

    @property
    def outstanding(self) -> int:
        """In-flight plus queued — the balancer's load signal."""
        return self.busy + len(self.queue)

    def subring_outstanding(self, subring: int) -> int:
        return self._ring_busy[subring]

    def submit(self, request: TrafficRequest) -> None:
        request.chip = self.chip_id
        request.subring = request.flow % self.subrings
        if self.busy < self.capacity:
            self._start(request)
        else:
            self.queue.append(request)

    def _start(self, request: TrafficRequest) -> None:
        request.started_at = self.sim.now
        self.busy += 1
        home = request.subring
        if self._ring_busy[home] < self.ring_share:
            ring, penalty = home, 1.0
            request.home_hit = True
        else:
            # home sub-ring saturated: spill to the least busy ring and
            # pay the bridge round trip
            ring = min(range(self.subrings), key=lambda r: (self._ring_busy[r], r))
            penalty = CROSS_RING_PENALTY
            request.home_hit = False
        self._ring_busy[ring] += 1
        service = (request.instrs * self.calibration.cpi
                   * self.jitter() * penalty)
        self.sim.schedule(service, self._finish, (request, ring))
    def _finish(self, payload: Tuple[TrafficRequest, int]) -> None:
        request, ring = payload
        request.finished_at = self.sim.now
        self.busy -= 1
        self._ring_busy[ring] -= 1
        self.served += 1
        self.collector.record(request)
        if self.queue:
            self._start(self.queue.popleft())


class _Collector:
    """Folds completed requests into the streaming quantile sketch."""

    def __init__(self, rng, slo_cycles: Sequence[float],
                 reservoir_capacity: int) -> None:
        self.sketch = ReservoirQuantiles(reservoir_capacity, rng)
        self.slo_cycles = list(slo_cycles)
        self.slo_hits = [0] * len(self.slo_cycles)
        self.completed = 0
        self.wait_sum = 0.0
        self.home_hits = 0
        self.last_finish = 0.0

    def record(self, request: TrafficRequest) -> None:
        latency = request.latency
        assert latency is not None
        self.completed += 1
        self.sketch.add(latency)
        self.wait_sum += request.wait or 0.0
        if request.home_hit:
            self.home_hits += 1
        if request.finished_at > self.last_finish:
            self.last_finish = request.finished_at
        for i, bound in enumerate(self.slo_cycles):
            if latency > bound:
                self.slo_hits[i] += 1


# -- the result --------------------------------------------------------------


@dataclass
class TrafficRunResult(DictResult):
    """Outcome of one open-loop cluster run (``kind="traffic"``)."""

    workload: str
    arrival: str
    balancer: str
    chips: int
    contexts_per_chip: int
    requests_total: int
    requests_completed: int
    load: float                      # offered rho (fraction of capacity)
    rate_per_cycle: float            # the realised arrival rate lambda
    base_service_cycles: float       # calibrated solo service time
    frequency_ghz: float
    duration_cycles: float           # last completion time
    mean_latency: float
    mean_wait: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    p999_latency: float
    slo_targets: Tuple[float, ...]       # multiples of base_service_cycles
    slo_violations: Tuple[float, ...]    # violation fraction per target
    per_chip_served: Tuple[int, ...]
    home_hit_rate: float
    quantile_mode: str                   # "exact" | "reservoir"
    calibration_source: str              # "measured" | "synthetic"
    latency_samples: Tuple[float, ...] = ()

    _COMPUTED = ("throughput_rps", "p99_latency_ms")

    _TUPLES = ("slo_targets", "slo_violations", "per_chip_served",
               "latency_samples")

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated wall time."""
        if not self.duration_cycles:
            return float("nan")
        seconds = self.duration_cycles / (self.frequency_ghz * 1e9)
        return self.requests_completed / seconds

    @property
    def p99_latency_ms(self) -> float:
        return self.p99_latency / (self.frequency_ghz * 1e9) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        for name in self._TUPLES:
            out[name] = list(getattr(self, name))
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrafficRunResult":
        obj = super().from_dict(data)
        for name in cls._TUPLES:
            setattr(obj, name, tuple(getattr(obj, name) or ()))
        return obj


# -- the driver --------------------------------------------------------------


def run_traffic(request: Any, registry: Optional[StatsRegistry] = None,
                calibration: Optional[ChipCalibration] = None,
                reservoir_capacity: int = RESERVOIR_CAPACITY
                ) -> TrafficRunResult:
    """One open-loop traffic run described by a ``kind="traffic"`` request.

    Calibrates the chip service model (unless one is injected — perf
    kernels and unit tests pass :func:`synthetic_calibration`), expands
    the arrival process, drives the cluster to drain and folds the
    latencies through the shared quantile sketch.
    """
    chips = request.traffic_chips
    if chips <= 0:
        raise TrafficError(f"need at least one chip, got {chips}")
    if not 0.0 < request.traffic_load:
        raise TrafficError(
            f"offered load must be positive, got {request.traffic_load!r}")
    if calibration is None:
        calibration = calibrate_chip(request)

    base_service = request.traffic_instrs * calibration.cpi
    rate = (request.traffic_load * chips * calibration.contexts
            / base_service)
    slo_targets = tuple(request.traffic_slo)
    if not slo_targets or any(t <= 0 for t in slo_targets):
        raise TrafficError(f"SLO targets must be positive: {slo_targets!r}")
    slo_cycles = [t * base_service for t in slo_targets]

    rng = RngTree(request.seed).child("traffic")
    requests = generate_requests(
        request.traffic_arrival, rng.child("arrivals"), rate,
        request.traffic_requests, request.traffic_instrs)

    sim = Simulator()
    collector = _Collector(rng.stream("reservoir"), slo_cycles,
                           reservoir_capacity)
    jitter = _JitterSampler(calibration, rng.stream("jitter"))
    servers = [ChipServer(sim, i, calibration, jitter, collector)
               for i in range(chips)]
    balancer = create_balancer(request.traffic_balancer)

    def inject(req: TrafficRequest) -> None:
        servers[balancer.route(req, servers)].submit(req)

    for req in requests:
        sim.schedule_at(req.arrival, inject, req)
    sim.run()

    completed = collector.completed
    if completed != len(requests):
        raise TrafficError(
            f"cluster leaked requests: {completed}/{len(requests)} completed")
    sketch = collector.sketch
    qs = sketch.quantiles((0.50, 0.95, 0.99, 0.999))
    result = TrafficRunResult(
        workload=request.workload,
        arrival=request.traffic_arrival,
        balancer=request.traffic_balancer,
        chips=chips,
        contexts_per_chip=calibration.contexts,
        requests_total=len(requests),
        requests_completed=completed,
        load=request.traffic_load,
        rate_per_cycle=rate,
        base_service_cycles=base_service,
        frequency_ghz=calibration.frequency_ghz,
        duration_cycles=collector.last_finish,
        mean_latency=sketch.mean,
        mean_wait=collector.wait_sum / completed,
        p50_latency=qs[0.50],
        p95_latency=qs[0.95],
        p99_latency=qs[0.99],
        p999_latency=qs[0.999],
        slo_targets=slo_targets,
        slo_violations=tuple(h / completed for h in collector.slo_hits),
        per_chip_served=tuple(s.served for s in servers),
        home_hit_rate=collector.home_hits / completed,
        quantile_mode="exact" if sketch.exact else "reservoir",
        calibration_source=calibration.source,
        latency_samples=tuple(sketch.thinned(LATENCY_SAMPLE_CAP)),
    )
    if registry is not None:
        registry.counter("traffic.requests").inc(completed)
        registry.accumulator("traffic.latency").add(result.mean_latency)
        for server in servers:
            registry.counter(f"traffic.chip{server.chip_id}.served").inc(
                server.served)
    return result
