"""Front-end load balancers: who gets the next request.

A :class:`LoadBalancer` sees every arrival before the chips do and picks
the serving chip from the live cluster state (per-chip and per-sub-ring
outstanding counts).  Three registered policies span the design space
the who-wins-where analysis of ``repro.sched`` made familiar:

* ``round-robin``       — stateless rotation; optimal when service times
  are uniform, tail-hostile when they are not (a slow chip keeps
  receiving its share).
* ``least-outstanding`` — join the chip with the fewest in-flight plus
  queued requests; the classic datacenter default.
* ``subring-aware``     — route on the *sub-ring* occupancy of the
  request's preferred sub-ring (its flow key hashed onto the chip's
  sub-ring count): requests of one flow co-locate where their SPM/MACT
  affinity lives, falling back to least-outstanding among chips whose
  home sub-ring is saturated.  This is the policy that knows the chip
  is not a featureless server — cross-ring placement pays the bridge
  penalty (see ``docs/traffic.md``).

Policies are registered by name so ``RunRequest.traffic_balancer`` is a
plain cache-key string, mirroring the scheduler policy registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Type

from ..errors import TrafficError
from .request import TrafficRequest

__all__ = [
    "LoadBalancer",
    "register_balancer",
    "get_balancer",
    "create_balancer",
    "list_balancers",
    "balancer_summaries",
]


class LoadBalancer:
    """Routing policy base: subclass, set ``name``/``summary``, register."""

    name = "base"
    summary = "abstract"

    def route(self, request: TrafficRequest, servers: Sequence) -> int:
        """Index of the serving chip for ``request``."""
        raise NotImplementedError

    def describe(self) -> Dict[str, str]:
        return {"name": self.name, "summary": self.summary}


_BALANCERS: Dict[str, Type[LoadBalancer]] = {}


def register_balancer(cls: Type[LoadBalancer]) -> Type[LoadBalancer]:
    """Class decorator: add a balancer under its ``name`` attribute."""
    if cls.name in _BALANCERS:
        raise TrafficError(f"duplicate balancer {cls.name!r}")
    _BALANCERS[cls.name] = cls
    return cls


def get_balancer(name: str) -> Type[LoadBalancer]:
    try:
        return _BALANCERS[name]
    except KeyError:
        raise TrafficError(
            f"unknown balancer {name!r}; "
            f"registered: {', '.join(sorted(_BALANCERS))}") from None


def create_balancer(name: str) -> LoadBalancer:
    return get_balancer(name)()


def list_balancers() -> List[str]:
    return sorted(_BALANCERS)


def balancer_summaries() -> List[Dict[str, str]]:
    return [{"name": name, "summary": _BALANCERS[name].summary}
            for name in sorted(_BALANCERS)]


# -- the catalogue -----------------------------------------------------------


@register_balancer
class RoundRobinBalancer(LoadBalancer):
    """Stateless rotation over the chips."""

    name = "round-robin"
    summary = "rotate over chips regardless of load"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: TrafficRequest, servers: Sequence) -> int:
        chip = self._next % len(servers)
        self._next = chip + 1
        return chip


@register_balancer
class LeastOutstandingBalancer(LoadBalancer):
    """Join the chip with the fewest in-flight + queued requests."""

    name = "least-outstanding"
    summary = "join the chip with the fewest outstanding requests"

    def route(self, request: TrafficRequest, servers: Sequence) -> int:
        return min(range(len(servers)),
                   key=lambda i: (servers[i].outstanding, i))


@register_balancer
class SubringAwareBalancer(LoadBalancer):
    """Place a flow where its preferred sub-ring is least busy.

    The flow key hashes to one sub-ring index; among the chips, prefer
    the one whose *that* sub-ring has the most headroom (then fewest
    total outstanding, then lowest index).  Keeping a flow's requests on
    their home sub-ring avoids the cross-ring service penalty and keeps
    the MACT seeing the adjacent small accesses it batches best.
    """

    name = "subring-aware"
    summary = "flow-affine: least-busy preferred sub-ring, then least load"

    def route(self, request: TrafficRequest, servers: Sequence) -> int:
        subring = request.flow % servers[0].subrings
        return min(range(len(servers)),
                   key=lambda i: (servers[i].subring_outstanding(subring),
                                  servers[i].outstanding, i))
