"""The unit of open-loop traffic: one timestamped service request.

A :class:`TrafficRequest` is what the datacenter tier of the repro
schedules: it arrives at a wall-clock-independent simulated cycle
(open loop — arrivals do not wait for completions, unlike the fixed
closed-loop workload slices the chip benches run), carries a service
demand in instructions and a ``flow`` key (a client/connection identity
that hashes to a preferred sub-ring — the affinity signal the
subring-aware balancer exploits), and is stamped by the cluster as it
moves: routed → started → finished.  Latency is ``finished - arrival``;
everything the SLO report shows folds from these stamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TrafficRequest"]


@dataclass
class TrafficRequest:
    """One open-loop request and its lifecycle stamps (cycles domain)."""

    req_id: int
    arrival: float
    flow: int
    instrs: int
    # -- stamped by the cluster --
    chip: Optional[int] = None
    subring: Optional[int] = None        # preferred sub-ring (flow hash)
    home_hit: bool = True                # landed on its preferred sub-ring?
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def latency(self) -> Optional[float]:
        """End-to-end response time: queueing wait plus service."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival

    @property
    def wait(self) -> Optional[float]:
        """Time spent queued at the front end before a context freed up."""
        if self.started_at is None:
            return None
        return self.started_at - self.arrival

    @property
    def service(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at
