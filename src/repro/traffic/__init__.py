"""Open-loop datacenter traffic over clusters of SmarCo chips.

The package splits along the request's path through the datacenter tier:

* :mod:`repro.traffic.request`  — the timestamped unit of work;
* :mod:`repro.traffic.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty MMPP, diurnal), registered by name;
* :mod:`repro.traffic.balancer` — front-end routing policies
  (round-robin, least-outstanding, subring-aware), registered by name;
* :mod:`repro.traffic.cluster`  — calibrated chip servers, the cluster
  driver and the :class:`TrafficRunResult` it folds latencies into.

``RunRequest(kind="traffic")`` through :func:`repro.chip.run.execute` is
the supported entry point; :func:`run_traffic` is the engine underneath.
"""

from .arrivals import (
    ArrivalProcess,
    arrival_summaries,
    generate_requests,
    get_arrival,
    list_arrivals,
    register_arrival,
)
from .balancer import (
    LoadBalancer,
    balancer_summaries,
    create_balancer,
    get_balancer,
    list_balancers,
    register_balancer,
)
from .cluster import (
    CROSS_RING_PENALTY,
    ChipCalibration,
    ChipServer,
    TrafficRunResult,
    calibrate_chip,
    run_traffic,
    synthetic_calibration,
)
from .request import TrafficRequest

__all__ = [
    "ArrivalProcess",
    "arrival_summaries",
    "generate_requests",
    "get_arrival",
    "list_arrivals",
    "register_arrival",
    "LoadBalancer",
    "balancer_summaries",
    "create_balancer",
    "get_balancer",
    "list_balancers",
    "register_balancer",
    "CROSS_RING_PENALTY",
    "ChipCalibration",
    "ChipServer",
    "TrafficRunResult",
    "calibrate_chip",
    "run_traffic",
    "synthetic_calibration",
    "TrafficRequest",
]
