"""Out-of-order SMT core model for the Xeon E7-8890V4 baseline.

The baseline does not need instruction-level fidelity — the paper uses it
as the comparison point for throughput (Figs 1, 22, 23).  We model each
core as ``smt_per_core`` hardware contexts executing software threads in
*quanta*: per quantum the model samples the thread's address stream
through the (real, stateful) cache hierarchy and converts the measured
miss behaviour into cycles, split into accounting buckets:

* ``busy`` — useful issue slots;
* ``mem_stall`` — backend stalls on data misses (OoO overlap applied);
* ``frontend_stall`` — instruction starvation: I-side misses + branch
  mispredictions (paper Fig 1b's quantity);
* ``switch`` — OS context-switch overhead when software threads
  oversubscribe the hardware contexts (the effect that bends Fig 23).

Idle ratio (Fig 1a) falls out as ``1 - busy/total``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config import XeonConfig
from ..errors import ConfigError
from ..mem.hierarchy import CacheHierarchy
from ..sim.component import Component
from ..sim.engine import EventSignal, Simulator
from ..sim.snapshot import register_snapshot_class, snapshotable
from ..sim.stats import StatsRegistry

__all__ = ["AccessSample", "SoftwareThread", "OooCoreModel"]

# Bounds on how many representative accesses we walk through the cache
# model per quantum: 1-in-8 sampling, enough to warm working sets and
# track contention, cheap enough for 2048 threads.
MIN_SAMPLES_PER_QUANTUM = 24
MAX_SAMPLES_PER_QUANTUM = 384
BRANCH_MISS_PENALTY = 15
SMT_ISSUE_FACTOR = {1: 1.0, 2: 0.62}     # per-context share when co-resident


class AccessSample(Tuple[int, int, bool]):
    """(addr, size, is_write) — what an address sampler yields."""


class SoftwareThread:
    """One software (pthread-level) thread of a workload on the baseline."""

    def __init__(
        self,
        thread_id: int,
        instr_budget: int,
        mem_ratio: float,
        branch_ratio: float,
        branch_miss_rate: float,
        ilp: float,
        mlp: float,
        data_sampler: Callable[[], Tuple[int, int, bool]],
        code_sampler: Callable[[], int],
    ) -> None:
        if instr_budget <= 0:
            raise ConfigError("thread needs a positive instruction budget")
        self.thread_id = thread_id
        self.instr_budget = instr_budget
        self.executed = 0
        self.mem_ratio = mem_ratio
        self.branch_ratio = branch_ratio
        self.branch_miss_rate = branch_miss_rate
        self.ilp = ilp
        self.mlp = mlp
        self.data_sampler = data_sampler
        self.code_sampler = code_sampler
        self.finish_time: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.executed >= self.instr_budget

    @property
    def remaining(self) -> int:
        return self.instr_budget - self.executed


@snapshotable
class _ContextEngine:
    """Explicit-state form of one SMT context's scheduling loop.

    Each phase boundary is one resume of the old ``_context_proc``
    generator, issuing identical schedule/wait calls in identical order.
    """

    __slots__ = ("core", "ctx_id", "last_thread", "thread", "quantum",
                 "phase")

    def __init__(self, core: "OooCoreModel", ctx_id: int) -> None:
        self.core = core
        self.ctx_id = ctx_id
        self.last_thread: Optional[SoftwareThread] = None
        self.thread: Optional[SoftwareThread] = None
        self.quantum = 0
        self.phase = "pick"

    def _step(self, _payload=None) -> None:
        core = self.core
        sim = core.sim
        while True:
            if self.phase == "pick":
                if not core.run_queue:
                    if not core._accepting:
                        return                     # context drains and exits
                    core._queue_wake.wait(self._step)
                    return
                thread = core.run_queue.popleft()
                self.thread = thread
                core.active_contexts += 1
                self.phase = "run"
                if self.last_thread is not thread and self.last_thread is not None:
                    switch = core.config.context_switch_cycles
                    core.switch_cycles.add(switch)
                    self.last_thread = thread
                    sim.schedule(switch, self._step, None)
                    return
                self.last_thread = thread
                continue
            if self.phase == "run":
                thread = self.thread
                self.quantum = min(core.quantum_instrs, thread.remaining)
                cycles = core._quantum_cycles(thread, self.quantum)
                self.phase = "retire"
                sim.schedule(cycles, self._step, None)
                return
            # retire
            thread = self.thread
            thread.executed += self.quantum
            core.instructions.inc(self.quantum)
            core.active_contexts -= 1
            if thread.done:
                thread.finish_time = sim.now
            else:
                core.run_queue.append(thread)      # round-robin timeslice
            self.thread = None
            self.phase = "pick"


class OooCoreModel(Component):
    """One OoO/SMT core: contexts pull software threads off a run queue."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        hierarchy: CacheHierarchy,
        config: Optional[XeonConfig] = None,
        quantum_instrs: int = 20_000,
        registry: Optional[StatsRegistry] = None,
        parent: Optional[Component] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name if name is not None else f"xcore{core_id}",
                         parent=parent, sim=sim, registry=registry)
        self.core_id = core_id
        self.config = config if config is not None else XeonConfig()
        self.hierarchy = hierarchy
        self.quantum_instrs = quantum_instrs
        self.run_queue: Deque[SoftwareThread] = deque()
        self._queue_wake = sim.signal(f"xcore{core_id}.wake")
        self.active_contexts = 0
        self._started = False
        self._accepting = True
        self._contexts: List[_ContextEngine] = []

        self.instructions = self.stats.counter("instructions")
        self.busy_cycles = self.stats.accumulator("busy")
        self.mem_stall_cycles = self.stats.accumulator("mem_stall")
        self.frontend_stall_cycles = self.stats.accumulator("frontend")
        self.switch_cycles = self.stats.accumulator("switch")

    # -- thread management ----------------------------------------------------

    def enqueue(self, thread: SoftwareThread) -> None:
        self.run_queue.append(thread)
        self._queue_wake.fire()

    def close(self) -> None:
        """No more threads will arrive; contexts drain and exit."""
        self._accepting = False
        self._queue_wake.fire()

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for ctx in range(self.config.smt_per_core):
            engine = _ContextEngine(self, ctx)
            self._contexts.append(engine)
            self.sim.schedule(0, engine._step, None)

    # -- snapshot protocol ----------------------------------------------------

    def extra_state(self) -> dict:
        return {
            "queue": list(self.run_queue),
            "active_contexts": self.active_contexts,
            "started": self._started,
            "accepting": self._accepting,
            "contexts": self._contexts,
        }

    def load_extra_state(self, state: dict) -> None:
        self.run_queue = deque(state["queue"])
        self.active_contexts = state["active_contexts"]
        self._started = state["started"]
        self._accepting = state["accepting"]
        self._contexts = list(state["contexts"])

    # -- execution ---------------------------------------------------------------

    def _quantum_cycles(self, thread: SoftwareThread, k: int) -> float:
        cfg = self.config
        smt_factor = SMT_ISSUE_FACTOR.get(max(1, self.active_contexts), 0.5)

        # useful-issue time
        busy = k / (thread.ilp * smt_factor)

        # data-side: sample real addresses through the stateful hierarchy
        mem_count = k * thread.mem_ratio
        samples = max(1, min(MAX_SAMPLES_PER_QUANTUM,
                             max(MIN_SAMPLES_PER_QUANTUM, int(mem_count / 8)),
                             int(mem_count) or 1))
        lat_total = 0.0
        for _ in range(samples):
            addr, _size, is_write = thread.data_sampler()
            lat_total += self.hierarchy.access(addr, is_write).latency
        mean_lat = lat_total / samples
        mem_stall = mem_count * max(0.0, mean_lat - cfg.l1_hit_latency) / thread.mlp

        # instruction starvation: I-side misses + branch mispredictions,
        # amplified by fetch-bandwidth competition (SMT co-residency and
        # run-queue pressure) — the effect that bends Fig 1(b) upward.
        i_samples = 16
        i_lat = 0.0
        for _ in range(i_samples):
            i_lat += self.hierarchy.access(thread.code_sampler(),
                                           is_instruction=True).latency
        # one fetch-group I-cache exposure per ~64 instructions
        i_miss_stall = (i_lat / i_samples - cfg.l1_hit_latency) * (k / 64)
        branch_stall = (k * thread.branch_ratio * thread.branch_miss_rate
                        * BRANCH_MISS_PENALTY)
        competition = min(3.0, 1.0 + 0.5 * (max(1, self.active_contexts) - 1)
                          + 0.15 * (len(self.run_queue)
                                    / max(1, self.config.smt_per_core)))
        frontend = (max(0.0, i_miss_stall) + branch_stall) * competition

        self.busy_cycles.add(busy)
        self.mem_stall_cycles.add(mem_stall)
        self.frontend_stall_cycles.add(frontend)
        return busy + mem_stall + frontend

    # -- metrics --------------------------------------------------------------------

    def cycle_breakdown(self) -> Dict[str, float]:
        """Total cycles per accounting bucket."""
        return {
            "busy": self.busy_cycles.total,
            "mem_stall": self.mem_stall_cycles.total,
            "frontend_stall": self.frontend_stall_cycles.total,
            "switch": self.switch_cycles.total,
        }

    def idle_ratio(self) -> float:
        """Fraction of pipeline time with no useful issue (paper Fig 1a)."""
        b = self.cycle_breakdown()
        total = sum(b.values())
        return 1.0 - b["busy"] / total if total else 0.0

    def starvation_ratio(self) -> float:
        """Frontend starvation (paper Fig 1b): fraction of *issue
        opportunity* lost to instruction supply — frontend stalls over
        (busy + frontend), excluding backend data stalls."""
        b = self.cycle_breakdown()
        denom = b["busy"] + b["frontend_stall"]
        return b["frontend_stall"] / denom if denom else 0.0


register_snapshot_class(SoftwareThread)
