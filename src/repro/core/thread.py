"""Hardware thread state (paper §3.1.1).

Every thread carries its own id plus a *pair id*; each thread is either
``RUNNING`` or ``WAITING`` while alive (the paper's two states), with
``DONE`` marking stream exhaustion.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from ..sim.snapshot import snapshotable
from ..sim.stats import Counter
from .stream import CoreInstr

__all__ = ["ThreadState", "HardwareThread"]


class ThreadState(enum.Enum):
    RUNNING = "running"
    WAITING = "waiting"      # blocked on an SPM/D-cache miss
    DONE = "done"


@snapshotable
class HardwareThread:
    """One hardware thread bound to a TCG slot."""

    __slots__ = (
        "thread_id", "pair_id", "name", "state", "_stream", "retired",
        "switches", "misses", "data_ready", "finish_time",
        "blocked_at", "ready_at", "resume_trace", "observer",
    )

    def __init__(self, thread_id: int, pair_id: int,
                 stream: Iterator[CoreInstr], name: str = "") -> None:
        self.thread_id = thread_id
        self.pair_id = pair_id
        self.name = name or f"t{thread_id}"
        self.state = ThreadState.WAITING
        self._stream = stream
        self.retired = 0
        self.switches = 0
        self.misses = 0
        self.data_ready = True       # no outstanding miss
        self.finish_time: Optional[float] = None
        # park/resume accounting for the in-pair handoff (set by the core)
        self.blocked_at = 0.0
        self.ready_at: Optional[float] = None
        self.resume_trace = None     # the blocking request's HopTrace
        #: optional FSM-legality observer (repro.sim.invariants); its
        #: ``pre_*`` hooks run before each transition
        self.observer = None

    def next_instr(self) -> Optional[CoreInstr]:
        """Fetch the next instruction, or None at end-of-stream."""
        if self.observer is not None:
            self.observer.pre_retire(self)
        try:
            instr = next(self._stream)
        except StopIteration:
            return None
        self.retired += 1
        return instr

    @property
    def runnable(self) -> bool:
        """Can be (re)scheduled: alive and not blocked on a miss."""
        return self.state is not ThreadState.DONE and self.data_ready

    def block(self) -> None:
        if self.observer is not None:
            self.observer.pre_block(self)
        self.state = ThreadState.WAITING
        self.data_ready = False
        self.misses += 1

    def unblock(self) -> None:
        if self.observer is not None:
            self.observer.pre_unblock(self)
        self.data_ready = True

    def finish(self, now: float) -> None:
        if self.observer is not None:
            self.observer.pre_finish(self)
        self.state = ThreadState.DONE
        self.finish_time = now

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HardwareThread({self.name}, pair={self.pair_id}, "
            f"{self.state.value}, retired={self.retired})"
        )
