"""Thread Core Group timing model (paper §3.1).

A TCG is a 4-wide in-order core with 4 *slots*; each slot hosts an
in-pair thread couple (8 hardware threads total).  Because only one
thread of a pair runs at a time, the four slots structurally satisfy the
4-wide issue limit: each running thread issues at most one instruction
per cycle.  That is exactly why the paper sees IPC "growing linearly"
from 1 to 4 threads (Fig 17).

Scheduling policies (the Fig 17 ablation set):

* ``"inpair"`` — the paper's mechanism: slot *i* hosts threads
  ``(2i, 2i+1)``; on an SPM/D-cache miss the friend thread takes over;
  the blocked thread resumes only when its data is back **and** the
  friend blocks;
* ``"blocking"`` — no pairing: one thread per slot, stalls on miss;
* ``"coarse"`` — coarse-grained MT with a *global* ready pool: a slot
  picks any runnable thread, modelling the more complex scheduler the
  paper argues is unnecessary for same-behaviour HTC threads.

Memory routing follows the paper's LSQ address check (§3.5.1): SPM-window
addresses hit the scratchpad, addresses above :data:`UNCACHED_BASE` are
streaming/uncached small-granularity accesses that travel to memory
as-is (the MACT path), everything else goes through the 16 KB D-cache at
line granularity.
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Deque, Dict, Generator, Iterator, List, Optional, Tuple

from ..config import TCGConfig
from ..errors import ConfigError, SimulationError
from ..mem.cache import Cache
from ..mem.request import MemRequest, Priority
from ..mem.spm import SpmAddressMap, SPM_REGION_BASE
from ..sim.component import Component
from ..sim.engine import EventSignal, Simulator
from ..sim.snapshot import snapshotable
from ..sim.stats import StatsRegistry
from .ports import FunctionPort, MemoryPort
from .stream import CoreInstr
from .thread import HardwareThread, ThreadState

__all__ = ["TCGCore", "UNCACHED_BASE"]

# LSQ address map: [0, SPM_REGION_BASE) cacheable DRAM,
# [SPM_REGION_BASE, UNCACHED_BASE) scratchpads,
# [UNCACHED_BASE, ...) uncached streaming accesses (MACT-eligible).
UNCACHED_BASE = 0x8000_0000_0000

_POLICIES = ("inpair", "blocking", "coarse")


@snapshotable
class _SlotEngine:
    """Explicit-state form of the slot scheduling process.

    One engine per slot replaces the old ``_slot_proc`` generator.  Each
    ``_step`` call is one resume of that generator: it executes
    synchronously through pick/dispatch/run until it must wait (a
    thread-switch delay, an instruction bundle, an idle slot) and then
    issues exactly one ``schedule``/``wait`` — the same calls, in the
    same order, with the same sequence numbers the generator produced.
    Being a plain object with field state, it survives a checkpoint.
    """

    __slots__ = ("core", "slot_id", "prev", "idle", "thread",
                 "blocking", "posted", "phase")

    def __init__(self, core: "TCGCore", slot_id: int) -> None:
        self.core = core
        self.slot_id = slot_id
        self.prev: Optional[HardwareThread] = None
        self.idle = False       # the slot just slept on its wake signal
        self.thread: Optional[HardwareThread] = None
        self.blocking: Optional[MemRequest] = None
        self.posted: tuple = ()
        self.phase = "pick"

    def _wake_signal(self) -> EventSignal:
        core = self.core
        return (core._coarse_wake if core.policy == "coarse"
                else core._slot_wake[self.slot_id])

    def _step(self, _payload=None) -> None:
        core = self.core
        sim = core.sim
        while True:
            if self.phase == "pick":
                thread, any_alive = core._pick(self.slot_id, self.prev)
                if not any_alive:
                    return                       # slot retires
                if thread is None:
                    self.idle = True
                    self._wake_signal().wait(self._step)
                    return
                if core._audit is not None:
                    # at pick time, before any yield: prev may legally
                    # unblock during the switch-latency wait below
                    core._audit.thread_picked(core, self.slot_id, thread,
                                              self.prev, self.idle)
                self.idle = False
                self.thread = thread
                self.phase = "dispatch"
                if self.prev is not None and thread is not self.prev:
                    thread.switches += 1
                    core.switch_count.inc()
                    core._emit("switch", thread)
                    sim.schedule(core.config.thread_switch_latency,
                                 self._step, None)
                    return
                continue
            if self.phase == "dispatch":
                thread = self.thread
                if thread.ready_at is not None:
                    core.resume_wait.add(sim.now - thread.ready_at)
                    if thread.resume_trace is not None:
                        # out-of-chain record: the request already
                        # completed, this is how long its thread then
                        # waited for the slot
                        thread.resume_trace.stamp(
                            "resume", core.path, thread.ready_at, sim.now)
                    thread.ready_at = None
                    thread.resume_trace = None
                thread.state = ThreadState.RUNNING
                self.prev = thread
                self.phase = "run"
                continue
            if self.phase == "run":
                # Non-interacting instructions (ALU, branches, cache/SPM
                # hits) accumulate into one delay — exact under in-pair
                # semantics, since a slot only switches threads at misses
                # anyway.  The clock is synced before any request issues.
                thread = self.thread
                pending = 0.0
                nxt = None
                while True:
                    instr = thread.next_instr()
                    if instr is None:
                        if pending:
                            self.phase = "finish"
                            sim.schedule(pending, self._step, None)
                            return
                        nxt = "finish"
                        break
                    core.retired.inc()
                    cost, blocking, posted = core._execute(instr)
                    pending += cost
                    if posted or blocking is not None:
                        if pending:
                            self.blocking = blocking
                            self.posted = posted
                            self.phase = "issue"
                            sim.schedule(pending, self._step, None)
                            return
                        nxt = self._issue(blocking, posted)
                        if nxt is not None:
                            break
                if nxt is None:
                    raise SimulationError("slot run loop fell through")
                self.phase = nxt
                continue
            if self.phase == "issue":
                blocking, posted = self.blocking, self.posted
                self.blocking, self.posted = None, ()
                nxt = self._issue(blocking, posted)
                self.phase = nxt if nxt is not None else "run"
                continue
            if self.phase == "finish":
                thread = self.thread
                thread.finish(sim.now)
                if thread.state is ThreadState.DONE:
                    core._maybe_finish()
                self.phase = "pick"
                continue
            raise SimulationError(f"slot engine in unknown phase {self.phase!r}")

    def _issue(self, blocking: Optional[MemRequest],
               posted: tuple) -> Optional[str]:
        """Issue the flushed requests; returns the next phase when the
        thread blocked, None to keep running it."""
        core = self.core
        for req in posted:
            core.port.issue(req)
        if blocking is None:
            return None
        thread = self.thread
        thread.block()
        thread.blocked_at = core.sim.now
        core._emit("block", thread)
        signal = core.port.issue(blocking)
        # the chip may have attached a trace during issue
        thread.resume_trace = blocking.trace
        signal.wait(functools.partial(core._data_returned, thread,
                                      self.slot_id))
        return "pick"


class TCGCore(Component):
    """One Thread Core Group.

    Misses leave the core through ``self.port``.  When no explicit port is
    supplied, the core issues through its declared ``mem_req`` output port
    and the chip wires that to the memory path; unit rigs instead pass a
    :class:`~repro.core.ports.FixedLatencyPort` (or similar) directly.
    """

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        port: Optional[MemoryPort] = None,
        config: Optional[TCGConfig] = None,
        policy: str = "inpair",
        spm_map: Optional[SpmAddressMap] = None,
        mul_latency: int = 3,
        branch_penalty: int = 2,
        icache_miss_penalty: int = 20,
        realtime_fraction: float = 0.0,
        rng=None,
        registry: Optional[StatsRegistry] = None,
        trace=None,
        parent: Optional[Component] = None,
        name: Optional[str] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ConfigError(f"unknown TCG policy {policy!r}")
        if realtime_fraction and rng is None:
            raise ConfigError("realtime_fraction needs an rng")
        super().__init__(name if name is not None else f"core{core_id}",
                         parent=parent, sim=sim, registry=registry,
                         trace=trace)
        self.core_id = core_id
        self.mem_req = self.out_port(
            "mem_req", MemRequest, optional=port is not None,
            doc="misses and posted writes bound for the memory path",
        )
        self.port: MemoryPort = (
            port if port is not None else FunctionPort(sim, self.mem_req.send)
        )
        self.config = config if config is not None else TCGConfig()
        self.policy = policy
        self.spm_map = spm_map
        self.mul_latency = mul_latency
        self.branch_penalty = branch_penalty
        self.icache_miss_penalty = icache_miss_penalty
        self.realtime_fraction = realtime_fraction
        self._rng = rng

        self.dcache = Cache("dcache", self.config.dcache_bytes,
                            self.config.cache_line_bytes,
                            self.config.cache_ways, self.stats,
                            hit_latency=self.config.dcache_hit_latency)
        self.icache = Cache("icache", self.config.icache_bytes,
                            self.config.cache_line_bytes,
                            self.config.cache_ways, self.stats)
        self.spm_hits = self.stats.counter("spm_hits")
        self.uncached_accesses = self.stats.counter("uncached")
        self.switch_count = self.stats.counter("switches")
        self.retired = self.stats.counter("retired")
        # in-pair park/resume accounting: block -> data-back, and
        # data-back -> actually re-picked by the slot
        self.park_cycles = self.stats.accumulator("park_cycles")
        self.resume_wait = self.stats.accumulator("resume_wait")

        self.threads: List[HardwareThread] = []
        self._engines: List[_SlotEngine] = []
        self._slots: List[List[HardwareThread]] = []
        # registered up front (never at start()) so the signal registry is
        # purely structural: a fresh build and a mid-run snapshot of the
        # same config expose identical signal sets to checkpoints
        self._slot_wake_pool: List[EventSignal] = [
            sim.signal(f"core{core_id}.slot{i}.wake")
            for i in range(self.config.running_threads)
        ]
        self._slot_wake: List[EventSignal] = []
        self._coarse_pool: Deque[HardwareThread] = deque()
        self._coarse_wake = sim.signal(f"core{core_id}.coarse_wake")
        self._shared_segments: List[Tuple[int, int]] = []
        self._last_fetch_line = -1
        self.started = False
        self.start_time: float = 0.0
        self.finish_time: Optional[float] = None
        #: fired (with the core) when the last thread finishes
        self.done_signal = sim.signal(f"core{core_id}.done")
        self._audit = None              # set by attach_audit
        self._thread_observer = None

    def attach_audit(self, auditor) -> None:
        observer = auditor.register_core(self)
        if observer is None:
            return
        self._audit = auditor
        self._thread_observer = observer
        for thread in self.threads:
            thread.observer = observer

    # -- configuration -----------------------------------------------------------

    def add_thread(self, stream: Iterator[CoreInstr], name: str = "") -> HardwareThread:
        """Attach a hardware thread; must be called before :meth:`start`."""
        if self.started:
            raise SimulationError("cannot add threads after start()")
        if len(self.threads) >= self.config.hw_threads:
            raise ConfigError(
                f"core {self.core_id}: at most {self.config.hw_threads} threads"
            )
        if self.policy == "blocking" and len(self.threads) >= self.config.running_threads:
            raise ConfigError(
                "blocking policy supports at most one thread per slot"
            )
        tid = len(self.threads)
        # First `running_threads` threads occupy distinct slots; later ones
        # become their friends (pairing engages past 4 threads, Fig 17).
        thread = HardwareThread(tid, pair_id=tid % self.config.running_threads,
                                stream=stream, name=name)
        if self._thread_observer is not None:
            thread.observer = self._thread_observer
        self.threads.append(thread)
        return thread

    def set_shared_segment(self, lo_pc: int, hi_pc: int) -> None:
        """Mark a PC range as SPM-prefetched (paper §3.1.2): instruction
        fetches in the range never miss the I-cache."""
        self._shared_segments.append((lo_pc, hi_pc))

    # -- slot construction ---------------------------------------------------------

    def _build_slots(self) -> None:
        n_slots = self.config.running_threads
        if self.policy == "inpair":
            self._slots = [
                [t for t in self.threads if t.pair_id == s]
                for s in range(n_slots)
            ]
        elif self.policy == "blocking":
            self._slots = [[t] for t in self.threads[:n_slots]]
        else:  # coarse: slots share the pool
            self._coarse_pool.extend(self.threads)
            self._slots = [[] for _ in range(min(n_slots, len(self.threads)))]
        self._slots = [s for s in self._slots if s or self.policy == "coarse"]
        self._slot_wake = self._slot_wake_pool[:len(self._slots)]

    def start(self) -> None:
        """Start the slot engines.  Call once, then run the simulator."""
        if self.started:
            raise SimulationError("core already started")
        if not self.threads:
            raise ConfigError("core has no threads")
        self.started = True
        self.start_time = self.sim.now
        self._build_slots()
        for slot_id in range(len(self._slots)):
            engine = _SlotEngine(self, slot_id)
            self._engines.append(engine)
            self.sim.schedule(0, engine._step, None)

    # -- scheduling ---------------------------------------------------------------

    def _pick(self, slot_id: int, prev: Optional[HardwareThread]) -> Tuple[Optional[HardwareThread], bool]:
        """(next thread, any_alive).  Rotates for fairness within a slot."""
        if self.policy == "coarse":
            alive = [t for t in self._coarse_pool if t.state is not ThreadState.DONE]
            if not alive:
                return None, False
            for _ in range(len(self._coarse_pool)):
                t = self._coarse_pool[0]
                self._coarse_pool.rotate(-1)
                # a RUNNING thread is claimed by another slot
                if t.runnable and t.state is not ThreadState.RUNNING:
                    t.state = ThreadState.RUNNING      # claim before any yield
                    return t, True
            return None, True

        slot = self._slots[slot_id]
        alive = [t for t in slot if t.state is not ThreadState.DONE]
        if not alive:
            return None, False
        # prefer a runnable thread that is not the one that just blocked
        for t in alive:
            if t.runnable and t is not prev:
                return t, True
        if prev is not None and prev in alive and prev.runnable:
            return prev, True
        return None, True

    def slot_threads(self, slot_id: int) -> Tuple[HardwareThread, ...]:
        """Threads bound to one slot (empty under the coarse global pool)."""
        if self.policy == "coarse" or not self._slots:
            return ()
        return tuple(self._slots[slot_id])

    def _wake_slot(self, slot_id: int) -> None:
        if self.policy == "coarse":
            self._coarse_wake.fire()
        else:
            self._slot_wake[slot_id].fire()

    def _emit(self, event: str, thread: HardwareThread) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, self.path, event, thread.name)

    def _data_returned(self, thread: HardwareThread, slot_id: int,
                       _payload=None) -> None:
        thread.unblock()
        thread.ready_at = self.sim.now
        self.park_cycles.add(self.sim.now - thread.blocked_at)
        self._emit("wake", thread)
        self._wake_slot(slot_id)

    def _maybe_finish(self) -> None:
        if all(t.state is ThreadState.DONE for t in self.threads):
            self.finish_time = self.sim.now
            self.done_signal.fire(self)

    # -- execution ------------------------------------------------------------------

    def _in_shared_segment(self, pc: int) -> bool:
        return any(lo <= pc <= hi for lo, hi in self._shared_segments)

    def _fetch_cost(self, instr: CoreInstr) -> int:
        if instr.pc is None or self._in_shared_segment(instr.pc):
            return 0
        fetch_addr = instr.pc * 4
        if self.icache.access(fetch_addr).hit:
            self._last_fetch_line = fetch_addr // self.config.cache_line_bytes
            return 0
        line = fetch_addr // self.config.cache_line_bytes
        sequential = line == self._last_fetch_line + 1
        self._last_fetch_line = line
        # straight-line code is covered by next-line prefetch; only
        # discontinuous fetches pay the full refill
        return 2 if sequential else self.icache_miss_penalty

    _NO_REQS: tuple = ()

    def _execute(self, instr: CoreInstr):
        """(cycles, blocking request or None, posted requests)."""
        cost: float = self._fetch_cost(instr)
        kind = instr.kind
        if kind == "alu":
            return cost + 1, None, self._NO_REQS
        if kind == "mul":
            return cost + self.mul_latency, None, self._NO_REQS
        if kind == "branch":
            penalty = self.branch_penalty if instr.taken else 0
            return cost + 1 + penalty, None, self._NO_REQS
        if kind in ("load", "store"):
            return self._execute_mem(instr, cost)
        raise SimulationError(f"unknown instruction kind {kind!r}")

    def _route(self, addr: int) -> str:
        if addr >= UNCACHED_BASE:
            return "uncached"
        if addr >= SPM_REGION_BASE:
            if self.spm_map is None:
                return "spm-local"
            return self.spm_map.route(addr, self.core_id)
        return "cached"

    def _execute_mem(self, instr: CoreInstr, cost: float):
        cfg = self.config
        addr = instr.addr if instr.addr is not None else 0
        is_write = instr.kind == "store"
        route = self._route(addr)

        if route == "spm-local":
            self.spm_hits.inc()
            return cost + cfg.spm_hit_latency, None, self._NO_REQS

        if route == "spm-remote":
            # remote SPM access rides the sub-ring; loads block
            request = MemRequest(addr=addr, size=instr.size or 8,
                                 is_write=is_write, core_id=self.core_id)
            if is_write:
                return cost + 1, None, (request,)      # posted write
            return cost + 1, request, self._NO_REQS

        if route == "uncached":
            self.uncached_accesses.inc()
            priority = Priority.NORMAL
            if (self.realtime_fraction and self._rng is not None
                    and self._rng.random() < self.realtime_fraction):
                priority = Priority.REALTIME
            request = MemRequest(addr=addr, size=instr.size or 4,
                                 is_write=is_write, core_id=self.core_id,
                                 priority=priority)
            if is_write:
                return cost + 1, None, (request,)      # store buffer drains it
            return cost + 1, request, self._NO_REQS

        # cached path: 16KB write-back D-cache, line-granular fills
        result = self.dcache.access(addr, is_write)
        posted = []
        if result.victim_dirty and result.victim_addr is not None:
            posted.append(MemRequest(
                addr=result.victim_addr, size=cfg.cache_line_bytes,
                is_write=True, core_id=self.core_id,
            ))
        if result.hit:
            return cost + cfg.dcache_hit_latency, None, tuple(posted)
        line_addr = (addr // cfg.cache_line_bytes) * cfg.cache_line_bytes
        fill = MemRequest(addr=line_addr, size=cfg.cache_line_bytes,
                          is_write=False, core_id=self.core_id)
        if is_write:
            posted.append(fill)                 # write-allocate, non-blocking
            return cost + cfg.dcache_hit_latency, None, tuple(posted)
        return cost + cfg.dcache_hit_latency, fill, tuple(posted)

    # -- snapshot protocol -------------------------------------------------------------

    def extra_state(self) -> dict:
        return {
            "threads": self.threads,
            "engines": self._engines,
            "slots": [list(slot) for slot in self._slots],
            "coarse_pool": list(self._coarse_pool),
            "shared_segments": list(self._shared_segments),
            "last_fetch_line": self._last_fetch_line,
            "started": self.started,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "dcache": self.dcache.state_dict(),
            "icache": self.icache.state_dict(),
        }

    def load_extra_state(self, state: dict) -> None:
        self.threads = list(state["threads"])
        self._engines = list(state["engines"])
        self._slots = [list(slot) for slot in state["slots"]]
        self._coarse_pool = deque(state["coarse_pool"])
        self._shared_segments = [tuple(seg)
                                 for seg in state["shared_segments"]]
        self._last_fetch_line = state["last_fetch_line"]
        self.started = state["started"]
        self.start_time = state["start_time"]
        self.finish_time = state["finish_time"]
        self.dcache.load_state(state["dcache"])
        self.icache.load_state(state["icache"])
        # slot wake signals are construction-time structure; re-derive the
        # active prefix for the restored slot partition
        self._slot_wake = self._slot_wake_pool[:len(self._slots)]

    # -- results ----------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def elapsed(self) -> float:
        end = self.finish_time if self.finish_time is not None else self.sim.now
        return max(0.0, end - self.start_time)

    @property
    def instructions(self) -> int:
        return self.retired.value

    @property
    def ipc(self) -> float:
        return self.instructions / self.elapsed if self.elapsed else 0.0

    @property
    def utilization(self) -> float:
        """Issue-slot utilisation (IPC / issue width)."""
        return self.ipc / self.config.issue_width

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TCGCore({self.core_id}, {self.policy}, "
            f"threads={len(self.threads)}, ipc={self.ipc:.2f})"
        )
