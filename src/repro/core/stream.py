"""Instruction streams consumed by the timing models.

The timing cores are trace-driven: they consume :class:`CoreInstr`
records, which can come from the functional ISA machine (real programs,
see :func:`from_machine`) or from the statistical workload generators in
:mod:`repro.workloads` (paper-scale runs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional

from ..isa.machine import ExecutedInstr, Machine
from ..isa.instructions import OpClass

__all__ = ["CoreInstr", "from_machine", "from_executed", "repeat_stream"]

_KIND_OF_CLASS = {
    OpClass.ALU: "alu",
    OpClass.MUL: "mul",
    OpClass.LOAD: "load",
    OpClass.STORE: "store",
    OpClass.BRANCH: "branch",
    OpClass.JUMP: "branch",
    OpClass.SYS: "alu",
}


class CoreInstr(NamedTuple):
    """One instruction as the pipeline sees it.

    ``kind``: "alu" | "mul" | "load" | "store" | "branch".
    ``addr``/``size`` describe the memory footprint (loads/stores only).
    ``pc`` enables I-cache modelling when known (None for synthetic
    streams).  ``taken`` is the branch outcome.
    """

    kind: str
    addr: Optional[int] = None
    size: int = 0
    pc: Optional[int] = None
    taken: bool = False

    @property
    def is_mem(self) -> bool:
        return self.kind in ("load", "store")


def from_executed(record: ExecutedInstr) -> CoreInstr:
    """Convert one functional-machine record to a pipeline record."""
    return CoreInstr(
        kind=_KIND_OF_CLASS[record.op_class],
        addr=record.addr,
        size=record.size,
        pc=record.pc,
        taken=record.taken,
    )


def from_machine(machine: Machine, max_instructions: int = 10_000_000) -> Iterator[CoreInstr]:
    """Lazily execute ``machine`` and yield pipeline records."""
    for record in machine.trace(max_instructions):
        yield from_executed(record)


def repeat_stream(instrs: Iterable[CoreInstr], times: int) -> Iterator[CoreInstr]:
    """Replay a materialised instruction list ``times`` times."""
    instrs = list(instrs)
    for _ in range(times):
        yield from instrs
