"""Core models: the TCG (paper's contribution) and the OoO/SMT baseline."""

from .ooo import OooCoreModel, SoftwareThread
from .ports import FixedLatencyPort, FunctionPort, MemoryPort
from .stream import CoreInstr, from_executed, from_machine, repeat_stream
from .tcg import TCGCore, UNCACHED_BASE
from .thread import HardwareThread, ThreadState

__all__ = [
    "CoreInstr",
    "from_machine",
    "from_executed",
    "repeat_stream",
    "HardwareThread",
    "ThreadState",
    "TCGCore",
    "UNCACHED_BASE",
    "MemoryPort",
    "FixedLatencyPort",
    "FunctionPort",
    "OooCoreModel",
    "SoftwareThread",
]
