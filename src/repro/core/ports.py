"""Memory ports: how a core's misses reach the rest of the chip.

A port accepts a :class:`~repro.mem.request.MemRequest` and returns an
:class:`~repro.sim.engine.EventSignal` that fires when the data is back.
Three implementations cover every experiment:

* :class:`FixedLatencyPort` — constant (or callable) latency; used for
  single-core studies (paper Fig 17) where the rest of the chip is not
  under test;
* :class:`FunctionPort` — adapts any ``submit(request)`` style component
  (e.g. a MACT or the chip's memory path) into the port protocol;
* the full chip (:mod:`repro.chip.smarco`) builds ports that route
  through MACT → NoC → DRAM.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol  # noqa: F401

from ..mem.request import MemRequest
from ..sim.engine import EventSignal, Simulator
from ..sim.snapshot import snapshotable

__all__ = ["MemoryPort", "FixedLatencyPort", "FunctionPort"]


@snapshotable
class _CompletionChain:
    """Completion hook linking a request's prior hook to a port signal.

    A named object instead of a closure so in-flight requests can travel
    through checkpoints.
    """

    __slots__ = ("prev", "signal")

    def __init__(self, prev: Optional[Callable], signal: EventSignal) -> None:
        self.prev = prev
        self.signal = signal

    def fire(self, req: MemRequest, now: float) -> None:
        if self.prev is not None:
            self.prev(req, now)
        self.signal.fire(req)


class MemoryPort(Protocol):
    """Anything that can service a memory request asynchronously."""

    def issue(self, request: MemRequest) -> EventSignal:
        """Admit the request; the returned signal fires at completion."""
        ...


class FixedLatencyPort:
    """Completes every request after a fixed (or per-request) latency."""

    def __init__(self, sim: Simulator,
                 latency: float | Callable[[MemRequest], float] = 100.0) -> None:
        self.sim = sim
        self._latency = latency
        self.issued = 0

    def issue(self, request: MemRequest) -> EventSignal:
        self.issued += 1
        request.issue_time = self.sim.now
        lat = self._latency(request) if callable(self._latency) else self._latency
        # unregistered: per-request signals are run state, not structure,
        # so they travel through checkpoints by value
        signal = EventSignal(self.sim, f"mem.req{request.req_id}")

        def complete() -> None:
            request.complete(self.sim.now)
            signal.fire(request)

        self.sim.schedule(lat, complete)
        return signal


class FunctionPort:
    """Wraps a component's ``submit(request)`` into the port protocol.

    The component must eventually call ``request.complete(now)``; the
    port hooks that completion to fire the signal.
    """

    def __init__(self, sim: Simulator,
                 submit: Callable[[MemRequest], None]) -> None:
        self.sim = sim
        self._submit = submit
        self.issued = 0

    def issue(self, request: MemRequest) -> EventSignal:
        self.issued += 1
        request.issue_time = self.sim.now
        # unregistered, as in FixedLatencyPort: run state, not structure
        signal = EventSignal(self.sim, f"mem.req{request.req_id}")
        request.on_complete = _CompletionChain(request.on_complete,
                                               signal).fire
        self._submit(request)
        return signal
