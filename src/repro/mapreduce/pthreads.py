"""POSIX-threads-like programming model (paper §3.6).

    "In SmarCo, we implemented the basic programming model based on POSIX
    threads.  Programmers can easily create and terminate threads by
    calling library functions, such as pthread_create(), and
    pthread_exit()."

:class:`ThreadApi` is that library: it binds software threads to a
:class:`~repro.chip.smarco.SmarCoChip`'s hardware thread contexts,
choosing placements through the main scheduler's load-balancing policy.
A thread's body is an instruction stream (a workload profile slice, a
functional-machine trace, or any ``CoreInstr`` iterator); ``join`` blocks
the *host* program on simulated completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..chip.smarco import SmarCoChip
from ..core.stream import CoreInstr
from ..core.thread import HardwareThread, ThreadState
from ..errors import ConfigError, SchedulerError

__all__ = ["SpawnedThread", "ThreadApi"]


@dataclass
class SpawnedThread:
    """Handle returned by :meth:`ThreadApi.create` (a pthread_t)."""

    thread_id: int
    core_id: int
    hw_thread: HardwareThread

    @property
    def finished(self) -> bool:
        return self.hw_thread.state is ThreadState.DONE

    @property
    def finish_time(self) -> Optional[float]:
        return self.hw_thread.finish_time

    @property
    def instructions_retired(self) -> int:
        return self.hw_thread.retired


class ThreadApi:
    """pthread-style thread management over one SmarCo chip.

    Usage::

        chip = SmarCoChip(smarco_scaled(2))
        api = ThreadApi(chip)
        handles = [api.create(profile.stream(500, rng)) for _ in range(32)]
        api.join_all()            # runs the simulation to completion
    """

    def __init__(self, chip: SmarCoChip) -> None:
        self.chip = chip
        self._next_id = 0
        self._spawned: List[SpawnedThread] = []
        self._started = False

    # -- creation ---------------------------------------------------------

    def _least_loaded_core(self) -> int:
        """Main-scheduler placement: balance threads across cores, and
        across sub-rings first (paper §3.7's load-balance goal)."""
        loads = [len(core.threads) for core in self.chip.cores]
        capacity = self.chip.config.tcg.hw_threads
        candidates = [cid for cid, load in enumerate(loads) if load < capacity]
        if not candidates:
            raise SchedulerError("all hardware thread contexts are occupied")
        per_ring = self.chip.config.cores_per_sub_ring

        def key(cid: int):
            ring = cid // per_ring
            ring_load = sum(loads[ring * per_ring:(ring + 1) * per_ring])
            return (loads[cid], ring_load, cid)

        return min(candidates, key=key)

    def create(self, body: Iterator[CoreInstr],
               name: str = "") -> SpawnedThread:
        """pthread_create: bind ``body`` to a free hardware context."""
        if self._started:
            raise ConfigError("cannot create threads after start/join")
        core_id = self._least_loaded_core()
        hw = self.chip.cores[core_id].add_thread(
            body, name=name or f"pthread{self._next_id}")
        handle = SpawnedThread(self._next_id, core_id, hw)
        self._next_id += 1
        self._spawned.append(handle)
        return handle

    # -- execution ----------------------------------------------------------

    def start(self) -> None:
        """Begin executing every created thread (idempotent)."""
        if self._started:
            return
        if not self._spawned:
            raise ConfigError("no threads created")
        self._started = True
        self.chip._loaded = True
        for core in self.chip.cores:
            if core.threads and not core.started:
                core.start()

    def join(self, handle: SpawnedThread,
             max_cycles: Optional[float] = None) -> float:
        """pthread_join: simulate until ``handle`` exits; returns its
        finish time."""
        self.start()
        while not handle.finished:
            if not self.chip.sim.step():
                raise SchedulerError(
                    f"thread {handle.thread_id} can never finish "
                    "(simulation ran dry)")
            if max_cycles is not None and self.chip.sim.now > max_cycles:
                raise SchedulerError(
                    f"thread {handle.thread_id} still running at the "
                    f"{max_cycles}-cycle horizon")
        return handle.finish_time

    def join_all(self, max_cycles: Optional[float] = None) -> float:
        """Join every spawned thread; returns the last exit time."""
        last = 0.0
        for handle in self._spawned:
            last = max(last, self.join(handle, max_cycles))
        return last

    # -- introspection ---------------------------------------------------------

    @property
    def threads(self) -> List[SpawnedThread]:
        return list(self._spawned)

    def placement_counts(self) -> Dict[int, int]:
        """{core_id: spawned thread count} — load-balance visibility."""
        counts: Dict[int, int] = {}
        for handle in self._spawned:
            counts[handle.core_id] = counts.get(handle.core_id, 0) + 1
        return counts
