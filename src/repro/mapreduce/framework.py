"""MapReduce runtime on SmarCo (paper §3.6, Fig 15).

Execution follows the paper's four stages:

1. the framework slices the input by hardware resources
   (:mod:`repro.mapreduce.slicing`);
2. the master (host CPU) maps Map tasks onto sub-rings ``0..N``; each
   task's data is staged in SPM when it fits, otherwise it spills and
   exchanges with main memory;
3. Reduce nodes on sub-rings ``K1..Km`` run ``reduce()`` over the
   shuffled intermediate pairs;
4. the master merges Reduce outputs.

The runtime always computes the *functional* result (real Python
map/reduce).  When given a scheduler-policy and context budget it also
*times* the job on the laxity scheduler testbed, charging per-item work so
the examples can show stage-level concurrency without the full-chip
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..config import SmarCoConfig, smarco_scaled
from ..errors import WorkloadError
from ..sched import SchedulerTestbed, Task, create_policy
from ..sim.engine import Simulator

__all__ = ["MapReduceJob", "TaskPlacement", "StageTiming", "MapReduceResult",
           "MapReduceRuntime"]

MapFn = Callable[[Any], List[Tuple[Hashable, Any]]]
ReduceFn = Callable[[Hashable, List[Any]], Tuple[Hashable, Any]]


@dataclass(frozen=True)
class MapReduceJob:
    """A user job: a map function and a reduce function."""

    name: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    #: rough work per input item on a TCG thread, for the timing model
    cycles_per_map_item: float = 200.0
    cycles_per_reduce_item: float = 120.0


@dataclass(frozen=True)
class TaskPlacement:
    """Where one task landed (paper Fig 15's sub-ring assignment)."""

    stage: str            # "map" | "reduce"
    index: int
    sub_ring: int
    core: int
    thread: int
    items: int
    spm_resident: bool


@dataclass
class StageTiming:
    cycles: float = 0.0
    tasks: int = 0


@dataclass
class MapReduceResult:
    """Functional output plus placement and (optional) timing."""

    output: Dict[Hashable, Any]
    placements: List[TaskPlacement] = field(default_factory=list)
    shuffle_pairs: int = 0
    map_timing: Optional[StageTiming] = None
    reduce_timing: Optional[StageTiming] = None

    @property
    def total_cycles(self) -> float:
        total = 0.0
        for timing in (self.map_timing, self.reduce_timing):
            if timing is not None:
                total += timing.cycles
        return total


class MapReduceRuntime:
    """Binds jobs to a SmarCo chip configuration."""

    def __init__(
        self,
        config: Optional[SmarCoConfig] = None,
        map_sub_rings: Optional[Sequence[int]] = None,
        reduce_sub_rings: Optional[Sequence[int]] = None,
        simulate_timing: bool = True,
        bytes_per_item: int = 64,
    ) -> None:
        self.config = config if config is not None else smarco_scaled(4)
        all_rings = list(range(self.config.sub_rings))
        if len(all_rings) == 1:
            default_map, default_reduce = all_rings, all_rings
        else:
            cut = max(1, len(all_rings) * 3 // 4)
            default_map, default_reduce = all_rings[:cut], all_rings[cut:]
        self.map_sub_rings = list(map_sub_rings) if map_sub_rings else default_map
        self.reduce_sub_rings = (list(reduce_sub_rings) if reduce_sub_rings
                                 else default_reduce)
        if not self.map_sub_rings or not self.reduce_sub_rings:
            raise WorkloadError("need at least one map and one reduce sub-ring")
        bad = [r for r in self.map_sub_rings + self.reduce_sub_rings
               if not 0 <= r < self.config.sub_rings]
        if bad:
            raise WorkloadError(f"sub-rings {bad} outside chip")
        self.simulate_timing = simulate_timing
        self.bytes_per_item = bytes_per_item

    # -- placement -----------------------------------------------------------

    def _place(self, stage: str, rings: Sequence[int], index: int,
               items: int) -> TaskPlacement:
        cfg = self.config
        ring = rings[index % len(rings)]
        slot = index // len(rings)
        core = slot % cfg.cores_per_sub_ring
        thread = (slot // cfg.cores_per_sub_ring) % cfg.tcg.hw_threads
        spm_resident = items * self.bytes_per_item <= cfg.tcg.spm_bytes - 256
        return TaskPlacement(stage, index, ring, core, thread, items,
                             spm_resident)

    @staticmethod
    def _items_in(chunk: Any) -> int:
        try:
            return max(1, len(chunk))
        except TypeError:
            return 1

    # -- timing --------------------------------------------------------------------

    def _time_stage(self, job: MapReduceJob, placements: List[TaskPlacement],
                    cycles_per_item: float) -> StageTiming:
        """Run one stage's tasks on the laxity testbed; SPM spill costs
        extra memory traffic (the paper's 'exchange data with main
        memory' case)."""
        sim = Simulator()
        scheduler = create_policy(self.config.scheduler.policy,
                                  config=self.config.scheduler)
        contexts = (len({p.sub_ring for p in placements})
                    * self.config.cores_per_sub_ring
                    * self.config.tcg.running_threads)
        bed = SchedulerTestbed(sim, scheduler, contexts=max(1, contexts))
        horizon = 1e12
        for p in placements:
            work = p.items * cycles_per_item
            if not p.spm_resident:
                work *= 1.6                    # DRAM exchange penalty
            bed.submit(Task(work_cycles=work, deadline=horizon))
        result = bed.run()
        return StageTiming(cycles=result.latest, tasks=len(placements))

    # -- execution --------------------------------------------------------------------

    def run(self, job: MapReduceJob, input_slices: Sequence[Any]) -> MapReduceResult:
        """Execute a job over pre-sliced input."""
        if not input_slices:
            return MapReduceResult(output={})

        # Stage 2: map tasks on map sub-rings.
        placements: List[TaskPlacement] = []
        intermediate: List[Tuple[Hashable, Any]] = []
        for i, chunk in enumerate(input_slices):
            placements.append(self._place("map", self.map_sub_rings, i,
                                          self._items_in(chunk)))
            pairs = job.map_fn(chunk)
            intermediate.extend(pairs)

        # Shuffle: group by key; each key lands on one reduce task.
        grouped: Dict[Hashable, List[Any]] = {}
        for key, value in intermediate:
            grouped.setdefault(key, []).append(value)

        # Stage 3: reduce tasks on reduce sub-rings.
        output: Dict[Hashable, Any] = {}
        reduce_placements: List[TaskPlacement] = []
        for i, (key, values) in enumerate(sorted(grouped.items(), key=str)):
            reduce_placements.append(
                self._place("reduce", self.reduce_sub_rings, i, len(values))
            )
            out_key, out_value = job.reduce_fn(key, values)
            output[out_key] = out_value

        result = MapReduceResult(
            output=output,
            placements=placements + reduce_placements,
            shuffle_pairs=len(intermediate),
        )
        if self.simulate_timing:
            result.map_timing = self._time_stage(
                job, placements, job.cycles_per_map_item)
            result.reduce_timing = self._time_stage(
                job, reduce_placements, job.cycles_per_reduce_item)
        return result
