"""Staged MapReduce execution on a real SmarCoChip (paper Fig 15).

:class:`MapReduceRuntime` computes placements and times stages on the
scheduler testbed; this module goes further and *drives the chip
simulator* through the paper's four stages:

1. map-task input slices are DMA-staged into the assigned cores' SPMs
   (serialised on each sub-ring's DMA engine, as §3.5.1 describes);
2. a map core starts the moment its data has landed; its threads execute
   profile-derived instruction streams sized by the slice volume;
3. when every map core has exited, the shuffle rides the NoC: one
   SPM-transfer packet per reduce task, sized by its key group;
4. reduce cores start when their shuffle data arrives and run to
   completion.

The result carries the functional output (the real map/reduce functions
run host-side, exactly like Phoenix++ masters do) plus the measured
per-stage cycle boundaries on the chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Hashable, List, Optional, Sequence, Tuple

from ..chip.smarco import SmarCoChip
from ..errors import ConfigError, WorkloadError
from ..noc.packet import NodeId, Packet, PacketKind
from ..sim.rng import RngTree
from ..workloads.base import WorkloadProfile
from .framework import MapReduceJob

__all__ = ["StagedResult", "StagedMapReduce"]


@dataclass
class StagedResult:
    """Functional output + measured stage boundaries (cycles)."""

    output: Dict[Hashable, Any]
    staging_done: float = 0.0
    map_done: float = 0.0
    shuffle_done: float = 0.0
    reduce_done: float = 0.0
    map_tasks: int = 0
    reduce_tasks: int = 0
    shuffle_bytes: int = 0

    @property
    def total_cycles(self) -> float:
        return self.reduce_done


class StagedMapReduce:
    """Drives one job through a chip's map and reduce sub-rings."""

    def __init__(
        self,
        chip: SmarCoChip,
        profile: WorkloadProfile,
        bytes_per_item: int = 64,
        instrs_per_item: int = 40,
        seed: int = 0,
    ) -> None:
        if chip.config.sub_rings < 2:
            raise ConfigError("staged MapReduce needs >=2 sub-rings "
                              "(distinct map and reduce nodes, Fig 15)")
        self.chip = chip
        self.profile = profile
        self.bytes_per_item = bytes_per_item
        self.instrs_per_item = instrs_per_item
        self.rng = RngTree(seed)
        cut = max(1, chip.config.sub_rings * 3 // 4)
        self.map_rings = list(range(cut))
        self.reduce_rings = list(range(cut, chip.config.sub_rings))

    # -- assignment -----------------------------------------------------------

    def _cores_of(self, rings: Sequence[int]) -> List[int]:
        per = self.chip.config.cores_per_sub_ring
        return [ring * per + idx for ring in rings for idx in range(per)]

    def _assign(self, n_tasks: int, rings: Sequence[int]) -> Dict[int, List[int]]:
        """{core_id: [task sizes indexes]} round-robin over ring cores."""
        cores = self._cores_of(rings)
        capacity = len(cores) * self.chip.config.tcg.hw_threads
        if n_tasks > capacity:
            raise WorkloadError(
                f"{n_tasks} tasks exceed {capacity} thread contexts; "
                "slice coarser")
        assignment: Dict[int, List[int]] = {}
        for task in range(n_tasks):
            core = cores[task % len(cores)]
            assignment.setdefault(core, []).append(task)
        return assignment

    @staticmethod
    def _items_in(chunk: Any) -> int:
        try:
            return max(1, len(chunk))
        except TypeError:
            return 1

    # -- execution ----------------------------------------------------------------

    def run(self, job: MapReduceJob,
            input_slices: Sequence[Any]) -> StagedResult:
        """Execute the job; returns output + stage boundaries."""
        if not input_slices:
            return StagedResult(output={})
        if self.chip._loaded:
            raise ConfigError("chip already in use")
        self.chip._loaded = True

        # ---- functional pass (host master, as in the paper) ----
        intermediate: List[Tuple[Hashable, Any]] = []
        for chunk in input_slices:
            intermediate.extend(job.map_fn(chunk))
        grouped: Dict[Hashable, List[Any]] = {}
        for key, value in intermediate:
            grouped.setdefault(key, []).append(value)
        output: Dict[Hashable, Any] = {}
        for key in sorted(grouped, key=str):
            out_key, out_value = job.reduce_fn(key, grouped[key])
            output[out_key] = out_value

        # keys are hash-partitioned over the reduce contexts: one reduce
        # *task* handles many keys, as Phoenix++ reducers do
        reduce_capacity = (len(self._cores_of(self.reduce_rings))
                           * self.chip.config.tcg.hw_threads)
        keys = sorted(grouped, key=str)
        n_parts = max(1, min(len(keys), reduce_capacity))
        reduce_sizes = [0] * n_parts
        for i, key in enumerate(keys):
            reduce_sizes[i % n_parts] += len(grouped[key])

        result = StagedResult(
            output=output,
            map_tasks=len(input_slices),
            reduce_tasks=n_parts,
        )

        # ---- timed pass on the chip ----
        map_sizes = [self._items_in(c) for c in input_slices]
        driver = self.chip.sim.spawn(
            self._pipeline(map_sizes, reduce_sizes, result), "mr.pipeline")
        self.chip.sim.run()
        if not driver.finished:
            raise ConfigError("MapReduce pipeline deadlocked")
        return result

    # -- the pipeline process ---------------------------------------------------------

    def _attach_threads(self, assignment: Dict[int, List[int]],
                        sizes: List[int], stage: str) -> None:
        cfg = self.chip.config.tcg
        for core_id, tasks in assignment.items():
            core = self.chip.cores[core_id]
            spm_base = self.chip.spms[core_id].base_addr
            for task in tasks:
                n_instrs = max(10, sizes[task] * self.instrs_per_item)
                rng = self.rng.stream(f"{stage}.{task}")
                core.add_thread(
                    self.profile.stream(
                        n_instrs, rng, thread_id=core_id * 8 + len(core.threads),
                        spm_base=spm_base, spm_bytes=cfg.spm_bytes),
                    name=f"{stage}{task}",
                )

    def _pipeline(self, map_sizes: List[int], reduce_sizes: List[int],
                  result: StagedResult) -> Generator:
        chip = self.chip
        sim = chip.sim
        map_assign = self._assign(len(map_sizes), self.map_rings)
        reduce_assign = self._assign(len(reduce_sizes), self.reduce_rings)
        self._attach_threads(map_assign, map_sizes, "map")
        self._attach_threads(reduce_assign, reduce_sizes, "reduce")

        # Stage 1: DMA-stage every map task's slice into its core's SPM;
        # a core starts as soon as ITS data is resident.
        staging_procs = []
        for core_id, tasks in map_assign.items():
            ring = chip.ring_of(core_id)
            spm = chip.spms[core_id]
            payload_bytes = min(
                sum(map_sizes[t] for t in tasks) * self.bytes_per_item,
                spm.data_bytes,
            )
            proc = chip.dmas[ring].prefetch_fill(
                spm, spm.base_addr, bytes(max(1, payload_bytes)))
            proc.done_signal.wait(
                lambda _p, c=chip.cores[core_id]: c.start())
            staging_procs.append(proc)
        for proc in staging_procs:
            if not proc.finished:
                yield proc
        result.staging_done = sim.now

        # Stage 2: wait for every map core to exit.
        for core_id in map_assign:
            core = chip.cores[core_id]
            if not core.done:
                yield core.done_signal
        result.map_done = sim.now

        # Stage 3: shuffle — one SPM-transfer packet per reduce task,
        # from a map core to the reduce core that owns the key group.
        map_cores = sorted(map_assign)
        pending = {"n": 0}
        done = sim.signal("mr.shuffle")
        for i, (core_id, tasks) in enumerate(sorted(reduce_assign.items())):
            volume = sum(reduce_sizes[t] for t in tasks) * self.bytes_per_item
            src = map_cores[i % len(map_cores)]
            result.shuffle_bytes += volume
            pending["n"] += 1

            def arrived(_p, _t) -> None:
                pending["n"] -= 1
                if pending["n"] == 0:
                    done.fire()

            packet = Packet(
                src=chip.core_node(src), dst=chip.core_node(core_id),
                size_bytes=max(1, min(volume, 4096)),
                kind=PacketKind.SPM_TRANSFER, on_delivered=arrived,
            )
            chip.noc.send(packet)
        if pending["n"]:
            yield done
        result.shuffle_done = sim.now

        # Stage 4: reduce cores start on their shuffled data.
        for core_id in reduce_assign:
            chip.cores[core_id].start()
        for core_id in reduce_assign:
            core = chip.cores[core_id]
            if not core.done:
                yield core.done_signal
        result.reduce_done = sim.now
        return result
