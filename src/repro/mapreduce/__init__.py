"""MapReduce programming model on SmarCo (paper §3.6)."""

from .framework import (
    MapReduceJob,
    MapReduceResult,
    MapReduceRuntime,
    StageTiming,
    TaskPlacement,
)
from .pthreads import SpawnedThread, ThreadApi
from .slicing import slice_sequence, slice_text, slices_for_chip
from .staged import StagedMapReduce, StagedResult

__all__ = [
    "MapReduceJob",
    "MapReduceRuntime",
    "MapReduceResult",
    "TaskPlacement",
    "StageTiming",
    "ThreadApi",
    "SpawnedThread",
    "StagedMapReduce",
    "StagedResult",
    "slice_sequence",
    "slice_text",
    "slices_for_chip",
]
