"""Input slicing for the MapReduce framework (paper §3.6, Fig 15: "input
dataset is sliced into equal stacks ... based on the hardware resources").
"""

from __future__ import annotations

from typing import Any, List, Sequence, Union

from ..errors import WorkloadError

__all__ = ["slice_sequence", "slice_text", "slices_for_chip"]


def slice_sequence(data: Sequence, n_slices: int) -> List[Sequence]:
    """Split a sequence into ``n_slices`` near-equal contiguous chunks."""
    if n_slices <= 0:
        raise WorkloadError("n_slices must be positive")
    n = len(data)
    if n == 0:
        return []
    n_slices = min(n_slices, n)
    base, extra = divmod(n, n_slices)
    out, start = [], 0
    for i in range(n_slices):
        size = base + (1 if i < extra else 0)
        out.append(data[start:start + size])
        start += size
    return out


def slice_text(text: str, n_slices: int) -> List[str]:
    """Split text into chunks on word boundaries (no split words)."""
    if n_slices <= 0:
        raise WorkloadError("n_slices must be positive")
    if not text:
        return []
    target = max(1, len(text) // n_slices)
    out = []
    start = 0
    while start < len(text) and len(out) < n_slices - 1:
        end = min(len(text), start + target)
        # extend to the next whitespace so words stay whole
        while end < len(text) and not text[end].isspace():
            end += 1
        out.append(text[start:end])
        start = end
    if start < len(text):
        out.append(text[start:])
    return [chunk for chunk in out if chunk.strip()]


def slices_for_chip(total_items: int, sub_rings: int, cores_per_sub_ring: int,
                    threads_per_core: int = 4, min_items_per_slice: int = 1) -> int:
    """Slice count matched to hardware parallelism (one slice per running
    thread), bounded by the data volume."""
    threads = sub_rings * cores_per_sub_ring * threads_per_core
    if total_items <= 0:
        return 1
    return max(1, min(threads, total_items // max(1, min_items_per_slice)))
