#!/usr/bin/env python3
"""Quickstart: simulate an HTC workload on a SmarCo chip.

Builds a scaled SmarCo (4 sub-rings x 16 cores = 64 TCG cores), loads the
KMP string-matching profile on all 512 hardware threads, runs the
discrete-event simulation to completion, and prints the chip-level
metrics — then does the same on the Xeon baseline for comparison.

Run:  python examples/quickstart.py
"""

from repro import RunRequest, SmarCoChip, get_profile, run_xeon, smarco_scaled


def main() -> None:
    profile = get_profile("kmp")

    print("=== SmarCo (scaled: 4 sub-rings x 16 cores) ===")
    chip = SmarCoChip(smarco_scaled(sub_rings=4), seed=0)
    chip.load_profile(profile, threads_per_core=8, instrs_per_thread=300)
    result = chip.run()
    print(f"cores completed        : {result.cores_done}/{result.total_cores}")
    print(f"simulated cycles       : {result.cycles:,.0f}")
    print(f"instructions retired   : {result.instructions:,}")
    print(f"chip IPC               : {result.ipc:.1f}")
    print(f"throughput             : {result.throughput_ips / 1e9:.2f} Ginstr/s")
    print(f"memory requests        : {result.mem_requests:,} "
          f"(batched into {result.mem_transactions:,} transactions, "
          f"{result.mact_request_reduction:.2f}x MACT reduction)")
    print(f"mean request latency   : {result.mean_request_latency:.0f} cycles")
    print(f"NoC bandwidth utilised : {result.noc_bandwidth_utilization:.1%}")

    print("\n=== Xeon E7-8890V4 baseline (48 threads) ===")
    xeon = run_xeon(RunRequest(kind="xeon", workload="kmp", xeon_threads=48,
                               xeon_instrs_per_thread=30_000))
    print(f"throughput             : {xeon.throughput_ips / 1e9:.2f} Ginstr/s")
    print(f"pipeline idle ratio    : {xeon.idle_ratio:.1%}")
    print(f"L1 miss ratio          : {xeon.miss_ratios['L1']:.1%}")

    speedup = result.throughput_ips / xeon.throughput_ips
    print(f"\nSmarCo speedup over Xeon: {speedup:.1f}x "
          "(paper Fig 22: 4.86x-18.57x)")


if __name__ == "__main__":
    main()
