#!/usr/bin/env python3
"""The paper's motivating CDN study (Fig 2).

Models the Nginx + 10 Gbps NIC video server of the paper's introduction:
as concurrent 25 Mbps streams approach the NIC limit, the conventional
processor shows the HTC mismatch signatures — CPU utilisation stays
under 10 % while branch and L1 miss ratios blow up.

Run:  python examples/cdn_service.py
"""

from repro.analysis import render_table
from repro.workloads import CdnConfig, CdnModel


def main() -> None:
    config = CdnConfig()
    model = CdnModel(config)

    print(f"NIC: {config.nic_gbps:.0f} Gbps, streams: "
          f"{config.video_rate_mbps:.0f} Mbps "
          f"-> connection limit {config.max_connections}")
    print(f"server: {config.cores} cores @ {config.frequency_ghz} GHz\n")

    points = model.sweep(points=8)
    rows = [[p.connections,
             f"{p.nic_utilization:.0%}",
             f"{p.cpu_utilization:.1%}",
             f"{p.branch_miss_ratio:.1%}",
             f"{p.l1_miss_ratio:.1%}"] for p in points]
    print(render_table(
        ["connections", "NIC util", "CPU util", "branch miss", "L1 miss"],
        rows, title="Fig 2: conventional processor under a CDN workload"))

    limit = points[-1]
    print(f"\nAt the NIC limit ({limit.connections} clients):")
    print(f"  the NIC is saturated but the CPU is only "
          f"{limit.cpu_utilization:.1%} busy,")
    print(f"  yet the branch miss ratio is {limit.branch_miss_ratio:.1%} "
          f"and the L1 miss ratio {limit.l1_miss_ratio:.1%}.")
    print("  -> throughput-oriented many-cores (SmarCo) fit this class of")
    print("     workload far better than big out-of-order cores.")


if __name__ == "__main__":
    main()
