#!/usr/bin/env python3
"""The full Fig 15 pipeline executed on the chip simulator.

Unlike ``mapreduce_wordcount.py`` (which times stages on the scheduler
testbed), this example drives the chip itself: map slices are DMA-staged
into SPMs, map cores start when their data lands, the shuffle rides the
NoC as SPM transfers, and reduce cores run on the reduce sub-rings —
with per-stage cycle boundaries measured from the simulation.

Run:  python examples/staged_pipeline.py
"""

from repro import SmarCoChip, get_profile, smarco_scaled
from repro.mapreduce import MapReduceJob, StagedMapReduce, slice_text
from repro.workloads import wordcount
from repro.workloads.datasets import synthetic_text


def main() -> None:
    chip = SmarCoChip(smarco_scaled(sub_rings=4, cores_per_sub_ring=8),
                      seed=15)
    runner = StagedMapReduce(chip, get_profile("wordcount"), seed=15)
    print(f"chip: {chip.config.total_cores} cores; "
          f"map sub-rings {runner.map_rings}, "
          f"reduce sub-rings {runner.reduce_rings}\n")

    text = synthetic_text(2_000, seed=15)
    slices = slice_text(text, 48)
    job = MapReduceJob("wordcount", wordcount.map_fn, wordcount.reduce_fn)
    result = runner.run(job, slices)

    assert result.output == wordcount.wordcount(text)
    print(f"{len(slices)} map tasks over {len(text.split())} words -> "
          f"{len(result.output)} distinct words "
          f"({result.reduce_tasks} reduce partitions)")
    print("functional check vs reference: OK\n")

    stages = [
        ("DMA staging into SPM", 0.0, result.staging_done),
        ("map execution", result.staging_done, result.map_done),
        ("shuffle over the NoC", result.map_done, result.shuffle_done),
        ("reduce execution", result.shuffle_done, result.reduce_done),
    ]
    print(f"{'stage':<24}{'start':>12}{'end':>12}{'cycles':>10}")
    for name, start, end in stages:
        print(f"{name:<24}{start:>12,.0f}{end:>12,.0f}{end - start:>10,.0f}")
    print(f"\nshuffle volume: {result.shuffle_bytes:,} bytes")
    us = result.total_cycles / (chip.config.frequency_ghz * 1e9) * 1e6
    print(f"end-to-end: {result.total_cycles:,.0f} cycles "
          f"= {us:.1f} us at {chip.config.frequency_ghz} GHz")


if __name__ == "__main__":
    main()
