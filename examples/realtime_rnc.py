#!/usr/bin/env python3
"""Hard real-time RNC service on SmarCo (paper §3.7 + Fig 21).

Generates UMTS RNC connection events, turns them into deadline tasks,
and executes them under the paper's two schedulers on one sub-ring's
thread contexts:

* the software Deadline scheduler — fair time-sharing, exits spread wide;
* the hardware laxity-aware scheduler — least-laxity-first, exits cluster
  tightly just before the deadline, success rate improves.

Run:  python examples/realtime_rnc.py
"""

from repro.sched import Task, TimeSharedTestbed
from repro.sim import RngTree
from repro.workloads.rnc import default_events, make_tasks, process_serial


def fig21_task_set(n=128, seed=3):
    rng = RngTree(seed).stream("rnc-demo")
    return [Task(work_cycles=rng.uniform(158_000, 176_000), deadline=340_000)
            for _ in range(n)]


def main() -> None:
    # -- part 1: connection events through the functional RNC model ------
    events = default_events(n=64, seed=11)
    met, missed = process_serial(events)
    print("serial single-context reference on 64 connection events:")
    print(f"  deadlines met: {met}, missed: {missed} "
          "(one context cannot keep up -> a many-core RNC is needed)\n")

    # -- part 2: the Fig 21 experiment ------------------------------------
    print("128 task threads on one sub-ring (64 running contexts),")
    print("deadline = 340,000 cycles:\n")
    for label, policy, quantum in (
        ("software Deadline scheduler", "fair", 8192),
        ("hardware laxity-aware scheduler", "laxity", 1024),
    ):
        result = TimeSharedTestbed(slots=64, policy=policy,
                                   quantum=quantum).run(fig21_task_set())
        print(f"  {label}:")
        print(f"    exit times : {result.earliest:,.0f} .. "
              f"{result.latest:,.0f} (spread {result.spread:,.0f})")
        print(f"    success    : {result.success_rate:.1%}\n")

    # -- part 3: priorities through the chain tables ----------------------
    from repro.sched import LaxityScheduler, TaskPriority

    scheduler = LaxityScheduler()
    tasks = make_tasks(default_events(n=16, seed=5),
                       high_priority_fraction=0.25)
    for task in tasks:
        scheduler.submit(task)
    order = []
    while True:
        task = scheduler.next_task()
        if task is None:
            break
        order.append(task)
    n_high = sum(1 for t in tasks if t.priority is TaskPriority.HIGH)
    print("hardware chain tables dispatch HIGH-priority procedures first:")
    print(f"  first {n_high} dispatched: "
          f"{[t.priority.name for t in order[:n_high]]}")


if __name__ == "__main__":
    main()
