#!/usr/bin/env python3
"""Run a *real program* on a TCG core: assembly -> functional machine ->
cycle-approximate pipeline.

Assembles the KMP string-search kernel from :mod:`repro.isa.programs`,
executes it functionally to get the answer, and simultaneously feeds the
retired-instruction stream into TCG timing models to compare the paper's
in-pair thread scheduling against a blocking (no-pairing) core.

Run:  python examples/isa_on_tcg.py
"""

from repro.core import FixedLatencyPort, TCGCore, from_machine
from repro.isa import Machine
from repro.isa.programs import (
    kmp_failure_table,
    kmp_search_program,
    load_words,
)
from repro.sim import Simulator
from repro.workloads.datasets import low_entropy_string


def make_machine(text: bytes, pattern: bytes) -> Machine:
    machine = Machine(kmp_search_program())
    machine.memory.write_bytes(0x1000, text)
    machine.memory.write_bytes(0x4000, pattern)
    load_words(machine.memory, 0x5000, kmp_failure_table(pattern))
    machine.write_reg(1, 0x1000)
    machine.write_reg(2, len(text))
    machine.write_reg(3, 0x4000)
    machine.write_reg(4, len(pattern))
    machine.write_reg(5, 0x5000)
    return machine


def run_core(policy: str, n_threads: int, text: bytes, pattern: bytes):
    sim = Simulator()
    core = TCGCore(sim, 0, FixedLatencyPort(sim, 120.0), policy=policy)
    machines = []
    for _ in range(n_threads):
        machine = make_machine(text, pattern)
        machines.append(machine)
        core.add_thread(from_machine(machine))
    core.start()
    sim.run()
    return core, machines


def main() -> None:
    text = low_entropy_string(1500, seed=4).encode()
    pattern = b"acgta"

    print(f"searching a {len(text)}-byte DNA-like text for {pattern!r}\n")

    # functional answer straight from the machine
    reference = make_machine(text, pattern)
    reference.run()
    print(f"matches found (functional machine): {reference.read_reg(10)}")
    print(f"instructions retired               : {reference.retired:,}\n")

    # the same program as a timing workload
    print(f"{'policy':<22}{'threads':<9}{'cycles':<12}{'core IPC'}")
    for policy, threads in (("blocking", 2), ("inpair", 2),
                            ("inpair", 8)):
        core, machines = run_core(policy, threads, text, pattern)
        # every thread computed the right answer
        assert all(m.read_reg(10) == reference.read_reg(10)
                   for m in machines)
        print(f"{policy:<22}{threads:<9}{core.elapsed:<12,.0f}"
              f"{core.ipc:.2f}")

    print("\nIn-pair threading hides the memory latency the blocking core")
    print("eats, and 8 threads (4 pairs) keep all four issue slots busy —")
    print("the mechanism behind paper Fig 17.")


if __name__ == "__main__":
    main()
