#!/usr/bin/env python3
"""MapReduce on SmarCo (paper §3.6, Fig 15): WordCount end to end.

Slices a synthetic text corpus by the chip's hardware parallelism, maps
the word-count kernel over map sub-rings, reduces per-word counts on the
reduce sub-rings, and reports both the *functional* result and the
simulated stage timing (map/reduce cycles on the laxity scheduler).

Run:  python examples/mapreduce_wordcount.py
"""

from collections import Counter

from repro import smarco_scaled
from repro.mapreduce import (
    MapReduceJob,
    MapReduceRuntime,
    slice_text,
    slices_for_chip,
)
from repro.workloads import wordcount
from repro.workloads.datasets import synthetic_text


def main() -> None:
    config = smarco_scaled(sub_rings=4)
    text = synthetic_text(5_000, seed=7)

    n_slices = slices_for_chip(
        total_items=len(text.split()),
        sub_rings=config.sub_rings,
        cores_per_sub_ring=config.cores_per_sub_ring,
        min_items_per_slice=20,
    )
    slices = slice_text(text, n_slices)
    print(f"input: {len(text.split())} words -> {len(slices)} map slices")

    runtime = MapReduceRuntime(config)
    job = MapReduceJob("wordcount", wordcount.map_fn, wordcount.reduce_fn)
    result = runtime.run(job, slices)

    top = Counter(result.output).most_common(5)
    print("\ntop-5 words:")
    for word, count in top:
        print(f"  {word:<12} {count}")

    # verify against the single-threaded reference
    assert result.output == wordcount.wordcount(text)
    print("\nfunctional check vs reference implementation: OK")

    map_rings = sorted({p.sub_ring for p in result.placements
                        if p.stage == "map"})
    reduce_rings = sorted({p.sub_ring for p in result.placements
                           if p.stage == "reduce"})
    spm_resident = sum(p.spm_resident for p in result.placements)
    print(f"\nplacement: map on sub-rings {map_rings}, "
          f"reduce on sub-rings {reduce_rings}")
    print(f"SPM-resident tasks: {spm_resident}/{len(result.placements)}")
    print(f"shuffle pairs: {result.shuffle_pairs:,}")
    print(f"map stage   : {result.map_timing.tasks} tasks, "
          f"{result.map_timing.cycles:,.0f} cycles")
    print(f"reduce stage: {result.reduce_timing.tasks} tasks, "
          f"{result.reduce_timing.cycles:,.0f} cycles")
    ms = result.total_cycles / (config.frequency_ghz * 1e9) * 1e3
    print(f"total simulated time: {ms:.3f} ms at {config.frequency_ghz} GHz")


if __name__ == "__main__":
    main()
