#!/usr/bin/env python
"""Fail on dead *relative* links in the repo's markdown files.

Checks every ``[text](target)`` whose target is a relative path (external
URLs and pure anchors are skipped) against the working tree, resolving
relative to the file containing the link.  Inline code spans and fenced
code blocks are ignored so documentation *about* link syntax doesn't
trip the checker.

Usage: python tools/check_doc_links.py [root]   (default: repo root)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^(```|~~~)")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "results", "node_modules"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def strip_code(text: str) -> str:
    """Blank out fenced code blocks and inline code spans."""
    out_lines = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            out_lines.append("")
            continue
        out_lines.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return "\n".join(out_lines)


def check(root: Path) -> int:
    dead = []
    for md in iter_markdown(root):
        for target in LINK.findall(strip_code(md.read_text())):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                dead.append((md.relative_to(root), target))
    for md, target in dead:
        print(f"DEAD LINK  {md}: ({target})")
    if dead:
        print(f"{len(dead)} dead relative link(s)")
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    sys.exit(check(root))
