# Developer / CI entry points.
#
# REPRO_WORKERS feeds the experiment runner's default worker count
# (repro.exp.runner.resolve_workers); CI pins it to 2 so the sweep-backed
# benches exercise the multi-process path deterministically.

PYTHON ?= python
REPRO_WORKERS ?= 2

export PYTHONPATH := src

.PHONY: test lint bench-smoke bench perf perf-smoke shard-smoke ckpt-smoke traffic-smoke energy-smoke sweep-policies docs-cli linkcheck-docs clean

test:
	$(PYTHON) -m pytest -x -q

# Static checks over the transaction-lifecycle and sharding layers
# (ruff + mypy come from the `lint` extra; CI installs them, local runs
# need `pip install -e '.[lint]'` once).
LINT_PATHS = src/repro/mem src/repro/noc src/repro/sim src/repro/exp
lint:
	$(PYTHON) -m ruff check $(LINT_PATHS)
	$(PYTHON) -m mypy $(LINT_PATHS)

bench-smoke:
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks -k "fig17 or fig19"

bench:
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks

# Full microbenchmark suite; writes results/perf/BENCH_<timestamp>.json
# (see docs/performance.md for the record schema and compare gate).
perf:
	$(PYTHON) -m repro.cli perf

# CI gate: tiny suite, compared against the checked-in baseline with a
# generous threshold (CI machines vary widely; tight thresholds belong
# on one quiet machine comparing its own records).
PERF_BASELINE ?= benchmarks/results/perf/BENCH_baseline_tiny.json
PERF_THRESHOLD ?= 75
perf-smoke:
	$(PYTHON) -m repro.cli perf --size tiny --repeat 3 --out results/perf
	$(PYTHON) -m repro.cli perf --compare $(PERF_BASELINE) \
		"$$(ls -t results/perf/BENCH_*.json | head -1)" \
		--threshold $(PERF_THRESHOLD)

# Sharded-execution smoke: the quantum-boundary unit tests, the
# sharded-vs-serial golden-digest equivalence tests, then a small
# multiprocess shardbench run that cross-checks digests end to end and
# writes a BENCH_shard artifact (see docs/sharding.md).
shard-smoke:
	$(PYTHON) -m pytest -q -p no:cacheprovider \
		tests/sim/test_domain.py tests/chip/test_sharded_run.py
	$(PYTHON) -m repro.perf.shardbench --sub-rings 2 --cores 4 \
		--instrs 80 --shards 1 2 --out results/perf

# Checkpoint/restore smoke: the bit-identical-resume digest tests for all
# three session kinds, then the CLI checkpoint lifecycle and a warm-started
# sweep end to end (see docs/checkpointing.md).
ckpt-smoke:
	$(PYTHON) -m pytest -q -p no:cacheprovider \
		tests/chip/test_session_restore.py tests/exp/test_warm_sweep.py
	$(PYTHON) -m repro.cli checkpoint save results/ckpt/smoke.ckpt.gz \
		--cycles 800 --kind smarco --workload kmp --seed 3 \
		--sub-rings 2 --cores 4 --threads-per-core 4 --instrs 120
	$(PYTHON) -m repro.cli checkpoint info results/ckpt/smoke.ckpt.gz
	$(PYTHON) -m repro.cli checkpoint restore results/ckpt/smoke.ckpt.gz
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m repro.cli \
		sweep kmp --kind sched --tasks 24 --contexts 8 \
		--sched-policies laxity --scenarios deadline-storm \
		--run-cycles 300000 600000 --warm-start --warm-cycles 50000 \
		--name ckpt-smoke --out results/ckpt

# Open-loop traffic smoke: the shared quantile module and the traffic
# layer's unit tests, a single calibrated cluster run, then a small
# arrival x load sweep replayed from the cache to prove the percentile
# output is deterministic and cache-hit-stable (see docs/traffic.md).
traffic-smoke:
	$(PYTHON) -m pytest -q -p no:cacheprovider \
		tests/analysis/test_quantiles.py tests/traffic
	$(PYTHON) -m repro.cli traffic kmp --chips 2 --requests 500 \
		--instrs 200 --load 0.8 --sub-rings 2 --cores 2
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m repro.cli \
		sweep kmp --kind traffic --chips 2 --requests 500 \
		--sub-rings 2 --cores 2 --arrivals poisson bursty \
		--balancers least-outstanding --loads 0.5 0.7 0.9 \
		--name traffic-smoke --out results/traffic
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m repro.cli \
		sweep kmp --kind traffic --chips 2 --requests 500 \
		--sub-rings 2 --cores 2 --arrivals poisson bursty \
		--balancers least-outstanding --loads 0.5 0.7 0.9 \
		--name traffic-smoke --out results/traffic \
		| tee results/traffic/replay.out
	grep -q "6 cache hits" results/traffic/replay.out

# Activity-energy smoke: the power-stack unit tests (Table 1, tech
# scaling, DVFS, activity accounting + conservation), one energy-
# annotated compare run, then a tiny dvfs x node efficiency sweep
# replayed from the cache to prove the energy axes key it correctly
# (see docs/power.md).
energy-smoke:
	$(PYTHON) -m pytest -q -p no:cacheprovider tests/power
	$(PYTHON) -m repro.cli compare kmp --sub-rings 2 --instrs 150 \
		--energy --dvfs eco
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m repro.cli \
		sweep kmp --kind compare --sub-rings 1 --cores 4 \
		--instrs 80 --dvfs-points eco nominal --nodes 32 40 \
		--name energy-smoke --out results/energy
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m repro.cli \
		sweep kmp --kind compare --sub-rings 1 --cores 4 \
		--instrs 80 --dvfs-points eco nominal --nodes 32 40 \
		--name energy-smoke --out results/energy \
		| tee results/energy/replay.out
	grep -q "4 cache hits" results/energy/replay.out

# Scheduler policy zoo smoke: every registered policy x every adversarial
# scenario through the cached runner with the invariant audit layer armed;
# prints the who-wins-where table (see docs/scheduling.md).
sweep-policies:
	REPRO_AUDIT=collect REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m repro.cli \
		sweep kmp --kind sched --tasks 48 --contexts 16 \
		--name sweep-policies --out results/sched

# Regenerate the generated CLI reference from the live argparse tree.
docs-cli:
	$(PYTHON) -m repro.cli --dump-docs > docs/cli.md

# Fail on dead relative links in any tracked markdown file.
linkcheck-docs:
	$(PYTHON) tools/check_doc_links.py

clean:
	rm -rf .pytest_cache benchmarks/results/cache benchmarks/results/runs results
	find . -name __pycache__ -type d -exec rm -rf {} +
