# Developer / CI entry points.
#
# REPRO_WORKERS feeds the experiment runner's default worker count
# (repro.exp.runner.resolve_workers); CI pins it to 2 so the sweep-backed
# benches exercise the multi-process path deterministically.

PYTHON ?= python
REPRO_WORKERS ?= 2

export PYTHONPATH := src

.PHONY: test lint bench-smoke bench clean

test:
	$(PYTHON) -m pytest -x -q

# Static checks over the transaction-lifecycle layers (ruff + mypy come
# from the `lint` extra; CI installs them, local runs need `pip install
# -e '.[lint]'` once).
lint:
	$(PYTHON) -m ruff check src/repro/mem src/repro/noc
	$(PYTHON) -m mypy src/repro/mem src/repro/noc

bench-smoke:
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks -k "fig17 or fig19"

bench:
	REPRO_WORKERS=$(REPRO_WORKERS) $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks

clean:
	rm -rf .pytest_cache benchmarks/results/cache benchmarks/results/runs results
	find . -name __pycache__ -type d -exec rm -rf {} +
