"""Task and chain-table tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulerError
from repro.sched import ChainTable, Task, TaskPriority


class TestTask:
    def test_static_slack(self):
        t = Task(work_cycles=100, deadline=340)
        assert t.static_slack == 240

    def test_laxity_shrinks_with_time(self):
        t = Task(work_cycles=100, deadline=340)
        assert t.laxity(0) == 240
        assert t.laxity(100) == 140

    def test_missed_logic(self):
        t = Task(work_cycles=10, deadline=100)
        assert t.missed                      # never finished
        t.finished_at = 90
        assert not t.missed
        t.finished_at = 101
        assert t.missed

    def test_response_time(self):
        t = Task(work_cycles=10, deadline=100, arrival=5)
        assert t.response_time is None
        t.finished_at = 42
        assert t.response_time == 37

    def test_nonpositive_work_rejected(self):
        with pytest.raises(SchedulerError):
            Task(work_cycles=0, deadline=10)

    def test_ids_unique(self):
        a = Task(work_cycles=1, deadline=1)
        b = Task(work_cycles=1, deadline=1)
        assert a.task_id != b.task_id


class TestChainTable:
    def key(self, t):
        return t.static_slack

    def test_insert_keeps_sorted(self):
        table = ChainTable("c", self.key)
        for work in [50, 200, 10, 120]:
            table.insert(Task(work_cycles=work, deadline=340))
        # least slack first = largest work first
        works = [t.work_cycles for t in table]
        assert works == [200, 120, 50, 10]
        assert table.is_sorted

    def test_pop_head_returns_min_key(self):
        table = ChainTable("c", self.key)
        t_long = Task(work_cycles=300, deadline=340)
        t_short = Task(work_cycles=10, deadline=340)
        table.insert(t_short)
        table.insert(t_long)
        assert table.pop_head() is t_long
        assert table.pop_head() is t_short
        assert table.pop_head() is None

    def test_peek_does_not_remove(self):
        table = ChainTable("c", self.key)
        t = Task(work_cycles=1, deadline=10)
        table.insert(t)
        assert table.peek() is t and len(table) == 1

    def test_remove(self):
        table = ChainTable("c", self.key)
        t = Task(work_cycles=1, deadline=10)
        table.insert(t)
        assert table.remove(t) is True
        assert table.remove(t) is False

    def test_capacity_enforced(self):
        table = ChainTable("c", self.key, capacity=2)
        table.insert(Task(work_cycles=1, deadline=10))
        table.insert(Task(work_cycles=2, deadline=10))
        with pytest.raises(SchedulerError):
            table.insert(Task(work_cycles=3, deadline=10))

    def test_insert_walk_cost_counted(self):
        """The RAM-not-CAM cost the paper accepted: inserts walk."""
        table = ChainTable("c", self.key)
        steps0 = table.insert(Task(work_cycles=100, deadline=340))
        assert steps0 == 0                            # empty walk
        steps1 = table.insert(Task(work_cycles=50, deadline=340))
        assert steps1 == 1                            # walked past one entry
        assert table.insert_steps == 1

    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_always_sorted_and_complete(self, works):
        table = ChainTable("c", self.key, capacity=100)
        tasks = [Task(work_cycles=w, deadline=20_000) for w in works]
        for t in tasks:
            table.insert(t)
        assert table.is_sorted
        assert len(table) == len(tasks)
        popped = []
        while True:
            t = table.pop_head()
            if t is None:
                break
            popped.append(t)
        keys = [self.key(t) for t in popped]
        assert keys == sorted(keys)
        assert sorted(t.task_id for t in popped) == sorted(t.task_id for t in tasks)
