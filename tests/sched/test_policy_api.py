"""Conformance suite for the SchedulerPolicy protocol.

Every policy in the registry — including ones added after this file was
written — is run through the same contract: uniform construction, task
conservation, an intact context lifecycle, deterministic ordering under
fixed seeds, and a clean invariant audit on every scenario.  A golden
digest pins the default laxity policy bit-identical to its pre-registry
behaviour.
"""

import hashlib
import json

import pytest

from repro.config import SchedulerConfig
from repro.errors import ConfigError, SchedulerError
from repro.sched import (
    LaxityScheduler,
    SchedulerPolicy,
    SchedulerTestbed,
    Task,
    TaskPriority,
    create_policy,
    get_policy,
    list_policies,
    make_scheduler,
    policy_summaries,
    run_sched_scenario,
)
from repro.sched.policy import register_policy
from repro.sim.engine import Simulator
from repro.sim.invariants import Auditor
from repro.sim.rng import RngTree
from repro.sim.stats import StatsRegistry
from repro.config import AuditConfig


def _tasks(n=24, seed=0, deadline=500_000.0):
    rng = RngTree(seed).stream("conformance.tasks")
    out = []
    for _ in range(n):
        pri = TaskPriority.HIGH if rng.random() < 0.3 else TaskPriority.NORMAL
        out.append(Task(work_cycles=rng.uniform(10_000, 90_000),
                        deadline=deadline, priority=pri,
                        payload={"criticality": rng.random()}))
    return out


@pytest.fixture(params=list_policies())
def policy_name(request):
    return request.param


class TestRegistry:
    def test_builtins_registered(self):
        names = list_policies()
        for expected in ("laxity", "deadline", "fifo", "smt-balance",
                         "criticality"):
            assert expected in names

    def test_get_policy_unknown(self):
        with pytest.raises(SchedulerError, match="unknown scheduling policy"):
            get_policy("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            @register_policy("laxity")
            class Clash(SchedulerPolicy):   # pragma: no cover - rejected
                def _enqueue(self, task):
                    pass

                def _select(self):
                    return None

                @property
                def pending(self):
                    return 0

    def test_non_policy_rejected(self):
        with pytest.raises(SchedulerError, match="not a SchedulerPolicy"):
            register_policy("oops")(object)

    def test_summaries_cover_every_policy(self):
        cards = policy_summaries()
        assert [c["name"] for c in cards] == list_policies()
        for card in cards:
            assert card["summary"]
            assert card["decision_overhead"] > 0

    def test_config_validate_uses_registry(self):
        SchedulerConfig(policy="smt-balance").validate()
        with pytest.raises(ConfigError, match="unknown scheduler policy"):
            SchedulerConfig(policy="random").validate()

    def test_make_scheduler_deprecated_but_working(self):
        with pytest.warns(DeprecationWarning, match="make_scheduler"):
            sched = make_scheduler("laxity")
        assert isinstance(sched, LaxityScheduler)


class TestConformance:
    """Contract every registered policy must honour."""

    def test_uniform_constructor(self, policy_name):
        reg = StatsRegistry()
        sched = create_policy(policy_name, instance_name="s0",
                              config=SchedulerConfig(), registry=reg)
        assert sched.name == "s0"
        assert sched.registry is reg
        assert sched.decision_overhead > 0
        assert type(sched).policy_name == policy_name

    def test_task_conservation(self, policy_name):
        sched = create_policy(policy_name)
        tasks = _tasks(24)
        for t in tasks:
            sched.submit(t)
        assert sched.pending == 24
        drained = []
        while True:
            task = sched.next_task()
            if task is None:
                break
            drained.append(task)
        assert sched.pending == 0
        assert sched.next_task() is None
        # every submitted task came back exactly once
        assert sorted(t.task_id for t in drained) == sorted(
            t.task_id for t in tasks)
        assert sched.stats()["submitted"] == 24
        assert sched.stats()["dispatched"] == 24

    def test_context_lifecycle(self, policy_name):
        sched = create_policy(policy_name)
        for cid in range(4):
            sched.release_context(cid)
        assert sched.free_contexts == 4
        assert sched.acquire_context() == 0          # FIFO
        assert sched.withdraw_context(2) is True
        assert sched.withdraw_context(2) is False    # already gone
        assert sched.free_contexts == 2
        got = {sched.acquire_context(), sched.acquire_context()}
        assert got == {1, 3}
        assert sched.acquire_context() is None

    def test_assign_pairs_context_and_task(self, policy_name):
        sched = create_policy(policy_name)
        assert sched.assign() is None                # nothing queued, no ctx
        for t in _tasks(3):
            sched.submit(t)
        assert sched.assign() is None                # tasks but no context
        sched.release_context(7)
        pair = sched.assign()
        assert pair is not None
        context, task = pair
        assert context == 7
        assert isinstance(task, Task)
        assert sched.free_contexts == 0
        assert sched.pending == 2
        assert sched.assign() is None                # context pool exhausted

    def test_deterministic_ordering(self, policy_name):
        def drain_order(seed):
            sched = create_policy(policy_name)
            for t in _tasks(16, seed=seed):
                sched.submit(t)
            order = []
            while sched.pending:
                # record positions, not global task ids (ids are a
                # process-wide counter)
                order.append(sched.next_task().work_cycles)
            return order

        assert drain_order(3) == drain_order(3)
        # and the policy actually reacts to the task set
        assert drain_order(3) != drain_order(4)

    @pytest.mark.parametrize("scenario", ["uniform", "skewed",
                                          "deadline-storm", "subring-drain",
                                          "mact-hostile"])
    def test_audited_scenario_run_is_clean(self, policy_name, scenario):
        auditor = Auditor(AuditConfig(enabled=True, fail_fast=True))
        result = run_sched_scenario(policy_name, scenario, seed=1,
                                    tasks=20, contexts=6, auditor=auditor)
        assert result.tasks_finished == result.tasks_total == 20
        assert auditor.clean
        assert auditor.summary()["total_checks"] > 0
        if scenario == "subring-drain":
            assert result.contexts_drained == 3
        else:
            assert result.contexts_drained == 0

    def test_scenario_runs_are_deterministic(self, policy_name):
        a = run_sched_scenario(policy_name, "skewed", seed=5, tasks=18,
                               contexts=5)
        b = run_sched_scenario(policy_name, "skewed", seed=5, tasks=18,
                               contexts=5)
        assert a == b
        c = run_sched_scenario(policy_name, "skewed", seed=6, tasks=18,
                               contexts=5)
        assert a != c


class TestZoo:
    def test_criticality_orders_by_payload(self):
        from repro.sched import task_criticality

        sched = create_policy("criticality")
        low = Task(work_cycles=100, deadline=1000,
                   payload={"criticality": 0.1})
        high = Task(work_cycles=100, deadline=1000,
                    payload={"criticality": 0.9})
        bare = Task(work_cycles=100, deadline=1000)   # no payload -> 0.0
        assert task_criticality(bare) == 0.0
        for t in (low, bare, high):
            sched.submit(t)
        assert sched.next_task() is high
        assert sched.next_task() is low
        assert sched.next_task() is bare

    def test_criticality_from_breakdown(self):
        from repro.analysis import BreakdownRow
        from repro.sched import criticality_from_breakdown

        rows = [BreakdownRow("noc", "link", count=3, mean=10.0),
                BreakdownRow("mem", "dram", count=1, mean=50.0)]
        # hop-count-weighted mean hop latency
        assert criticality_from_breakdown(rows) == pytest.approx(80.0 / 4)
        assert criticality_from_breakdown([]) == 0.0

    def test_smt_balance_tracks_served_work(self):
        sched = create_policy("smt-balance")
        for t in _tasks(6, seed=2):
            sched.submit(t)
        for cid in range(2):
            sched.release_context(cid)
        seen = {}
        while True:
            pair = sched.assign()
            if pair is None:
                break
            context, task = pair
            seen[context] = seen.get(context, 0.0) + task.work_cycles
            sched.release_context(context)
        # both contexts were exercised and the imbalance stays within one
        # max-size task of even
        assert set(seen) == {0, 1}
        assert abs(seen[0] - seen[1]) <= 90_000


GOLDEN_LAXITY_DIGEST = "cc72d4796d098ebc"


class TestGoldenLaxity:
    """The default policy must stay bit-identical across the refactor."""

    def test_testbed_schedule_digest(self):
        rng = RngTree(7).stream("golden.tasks")
        tasks = []
        for _ in range(96):
            work = rng.uniform(50_000, 150_000)
            pri = (TaskPriority.HIGH if rng.random() < 0.25
                   else TaskPriority.NORMAL)
            tasks.append(Task(work_cycles=work, deadline=400_000,
                              priority=pri))
        sim = Simulator()
        bed = SchedulerTestbed(sim, LaxityScheduler(), contexts=24)
        for t in tasks:
            bed.submit(t)
        result = bed.run()
        # digest over (work, priority, start, finish) in submit order: any
        # ordering or timing change to the laxity policy shows up here
        payload = [(round(t.work_cycles, 6), t.priority.value,
                    round(t.started_at, 6), round(t.finished_at, 6))
                   for t in tasks]
        digest = hashlib.sha256(
            json.dumps(payload).encode()).hexdigest()[:16]
        assert digest == GOLDEN_LAXITY_DIGEST
        assert result.success_rate == 0.8125
