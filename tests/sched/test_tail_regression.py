"""Regression pins for the percentile bugs this layer used to have.

Two distinct defects are locked out here:

* ``collect_sched_result`` computed p99 with ``int(0.99 * (n - 1))``,
  which truncates downward — on a 10-sample run it reported the 9th
  order statistic (~p89) as "p99".
* ``winners_matrix`` coerced a missing/nan p99 to ``0.0``, which then
  averaged into cells and made broken runs look infinitely fast.
"""

import math

import pytest

from repro.analysis.quantiles import quantile
from repro.analysis.winners import render_winners, winners_matrix
from repro.sched.scenarios import run_sched_scenario


def _record(policy="laxity", scenario="uniform", succ=1.0, mk=100.0,
            p99=float("nan"), samples=()):
    return {"policy": policy, "scenario": scenario,
            "deadline_success_rate": succ, "makespan": mk,
            "p99_response": p99, "response_samples": list(samples)}


class TestSchedP99:
    def test_ten_task_run_pins_the_ceil_rank(self):
        # pinned: with 10 responses, nearest-rank p99 is the maximum.
        result = run_sched_scenario(policy="laxity", scenario="uniform",
                                    seed=7, tasks=10, contexts=4)
        assert result.p99_response == pytest.approx(300949.17801828723)
        assert result.p99_response == max(result.response_samples)
        # the old floor formula picked the 9th order statistic instead
        ranked = sorted(result.response_samples)
        old = ranked[int(0.99 * (len(ranked) - 1))]
        assert old == pytest.approx(295269.77141229686)
        assert result.p99_response > old

    def test_no_responses_is_nan_not_zero(self):
        result = run_sched_scenario(policy="laxity", scenario="uniform",
                                    seed=0, tasks=1, contexts=1)
        if result.response_samples:          # guard: tiny run still responds
            assert result.p99_response == max(result.response_samples)
        else:
            assert math.isnan(result.p99_response)


class TestWinnersTailCells:
    def test_missing_p99_renders_dash_not_zero(self):
        records = [_record(p99=float("nan")), _record(p99=None)]
        matrix = winners_matrix(records)
        cell = matrix.cell("laxity", "uniform")
        assert cell is not None
        assert cell.p99_response is None     # never coerced to 0.0
        assert cell.tail_runs == 0
        table = render_winners(records)
        assert "—" in table and " 0 " not in table.split("winners:")[0]

    def test_aggregate_only_records_fall_back_with_marker(self):
        records = [_record(p99=100.0), _record(p99=300.0)]
        cell = winners_matrix(records).cell("laxity", "uniform")
        assert cell.p99_response == pytest.approx(200.0)   # mean of p99s
        assert not cell.p99_pooled
        assert "200~" in render_winners(records)

    def test_pooled_samples_beat_mean_of_p99s(self):
        # two 10-sample runs: averaging the per-run p99s (maxima) gives
        # (10 + 1000) / 2 = 505; the pooled 20-sample p99 is 1000
        a = [float(x) for x in range(1, 11)]          # p99 = 10
        b = [float(x) for x in range(991, 1001)]      # p99 = 1000
        records = [_record(p99=quantile(a, 0.99), samples=a),
                   _record(p99=quantile(b, 0.99), samples=b)]
        cell = winners_matrix(records).cell("laxity", "uniform")
        assert cell.p99_pooled
        assert cell.tail_runs == 2
        assert cell.p99_response == quantile(a + b, 0.99) == 1000.0
        assert cell.p99_response != pytest.approx(505.0)

    def test_mixed_runs_skip_tailless_never_zero_fill(self):
        samples = [float(x) for x in range(1, 101)]
        records = [_record(samples=samples, p99=quantile(samples, 0.99)),
                   _record(p99=float("nan"))]        # broken run, no tail
        cell = winners_matrix(records).cell("laxity", "uniform")
        assert cell.runs == 2
        assert cell.tail_runs == 1
        # the broken run neither zeroes nor drags down the pooled p99
        assert cell.p99_response == quantile(samples, 0.99)
