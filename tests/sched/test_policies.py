"""Scheduling policy and testbed tests (paper §3.7, Fig 21)."""

import pytest

from repro.errors import SchedulerError
from repro.sched import (
    DeadlineScheduler,
    FifoScheduler,
    LaxityScheduler,
    MainScheduler,
    SchedulerTestbed,
    Task,
    TaskPriority,
    make_scheduler,
)
from repro.sim import RngTree, Simulator


def rnc_tasks(n=64, deadline=340_000, seed=0):
    """RNC-like task set: same deadline, varied work (paper Fig 21 setup)."""
    rng = RngTree(seed).stream("tasks")
    return [Task(work_cycles=rng.uniform(60_000, 160_000), deadline=deadline)
            for _ in range(n)]


class TestLaxityScheduler:
    def test_least_slack_first(self):
        s = LaxityScheduler()
        short = Task(work_cycles=10, deadline=340)
        long = Task(work_cycles=300, deadline=340)
        s.submit(short)
        s.submit(long)
        assert s.next_task() is long

    def test_high_priority_preempts_normal_ordering(self):
        s = LaxityScheduler()
        normal = Task(work_cycles=300, deadline=340)
        high = Task(work_cycles=10, deadline=340, priority=TaskPriority.HIGH)
        s.submit(normal)
        s.submit(high)
        assert s.next_task() is high

    def test_pending_counts_both_tables(self):
        s = LaxityScheduler()
        s.submit(Task(work_cycles=1, deadline=10))
        s.submit(Task(work_cycles=1, deadline=10, priority=TaskPriority.HIGH))
        assert s.pending == 2

    def test_empty_returns_none(self):
        assert LaxityScheduler().next_task() is None

    def test_null_chain_tracks_free_contexts(self):
        """Fig 16's third table: free thread contexts in FIFO order."""
        s = LaxityScheduler()
        assert s.free_contexts == 0 and s.acquire_context() is None
        s.release_context(3)
        s.release_context(7)
        assert s.free_contexts == 2
        assert s.acquire_context() == 3          # FIFO
        assert s.acquire_context() == 7

    def test_assign_pairs_context_with_best_task(self):
        s = LaxityScheduler()
        long = Task(work_cycles=300, deadline=340)
        short = Task(work_cycles=10, deadline=340)
        s.submit(short)
        s.submit(long)
        assert s.assign() is None                # no free contexts yet
        s.release_context(0)
        ctx, task = s.assign()
        assert ctx == 0 and task is long         # least slack dispatched
        assert s.assign() is None                # context chain drained


class TestDeadlineScheduler:
    def test_edf_order(self):
        s = DeadlineScheduler()
        late = Task(work_cycles=10, deadline=500)
        early = Task(work_cycles=10, deadline=100)
        s.submit(late)
        s.submit(early)
        assert s.next_task() is early

    def test_fifo_tie_break(self):
        s = DeadlineScheduler()
        first = Task(work_cycles=10, deadline=100, arrival=0)
        second = Task(work_cycles=10, deadline=100, arrival=1)
        s.submit(second)
        s.submit(first)
        assert s.next_task() is first

    def test_software_overhead_larger_than_hardware(self):
        assert DeadlineScheduler.decision_overhead > LaxityScheduler.decision_overhead


class TestFactory:
    def test_make_each_policy(self):
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_scheduler("laxity"), LaxityScheduler)
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_scheduler("deadline"), DeadlineScheduler)
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_scheduler("fifo"), FifoScheduler)

    def test_unknown_policy(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SchedulerError):
                make_scheduler("lottery")


class TestMainScheduler:
    def test_least_loaded_balances(self):
        subs = [LaxityScheduler(f"s{i}") for i in range(4)]
        main = MainScheduler(subs)
        for _ in range(16):
            main.dispatch(Task(work_cycles=10, deadline=100))
        assert main.dispatched_to == [4, 4, 4, 4]
        assert main.imbalance() == pytest.approx(1.0)

    def test_round_robin(self):
        subs = [LaxityScheduler(f"s{i}") for i in range(3)]
        main = MainScheduler(subs, policy="round-robin")
        rings = [main.dispatch(Task(work_cycles=10, deadline=100))
                 for _ in range(6)]
        assert rings == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_empty_ring(self):
        subs = [LaxityScheduler(f"s{i}") for i in range(2)]
        subs[0].submit(Task(work_cycles=10, deadline=100))
        main = MainScheduler(subs)
        assert main.dispatch(Task(work_cycles=10, deadline=100)) == 1

    def test_validation(self):
        with pytest.raises(SchedulerError):
            MainScheduler([])
        with pytest.raises(SchedulerError):
            MainScheduler([LaxityScheduler()], policy="chaotic")


class TestTestbed:
    def test_single_context_serialises(self):
        sim = Simulator()
        bed = SchedulerTestbed(sim, FifoScheduler(), contexts=1)
        bed.submit_all([Task(work_cycles=100, deadline=10_000) for _ in range(3)])
        result = bed.run()
        times = sorted(result.exit_times)
        assert len(times) == 3
        assert times[1] - times[0] >= 100       # back-to-back, not parallel

    def test_parallel_contexts_overlap(self):
        sim = Simulator()
        bed = SchedulerTestbed(sim, FifoScheduler(), contexts=4)
        bed.submit_all([Task(work_cycles=100, deadline=10_000) for _ in range(4)])
        result = bed.run()
        assert result.spread == 0               # identical tasks, 4 contexts

    def test_success_rate(self):
        sim = Simulator()
        bed = SchedulerTestbed(sim, FifoScheduler(), contexts=1)
        bed.submit_all([Task(work_cycles=100, deadline=150),
                        Task(work_cycles=100, deadline=150)])
        result = bed.run()
        assert result.success_rate == pytest.approx(0.5)

    def test_empty_run(self):
        sim = Simulator()
        bed = SchedulerTestbed(sim, FifoScheduler(), contexts=2)
        result = bed.run()
        assert result.exit_times == [] and result.spread == 0

    def test_zero_contexts_rejected(self):
        with pytest.raises(SchedulerError):
            SchedulerTestbed(Simulator(), FifoScheduler(), contexts=0)


class TestFig21Shape:
    """The paper's Fig 21 comparison: hardware laxity scheduling tightens
    the exit-time spread and improves the deadline success rate versus
    the software Deadline scheduler."""

    def run_policy(self, scheduler, n_tasks=128, contexts=64):
        sim = Simulator()
        bed = SchedulerTestbed(sim, scheduler, contexts=contexts)
        bed.submit_all(rnc_tasks(n_tasks))
        return bed.run()

    def test_laxity_tightens_exit_spread(self):
        edf = self.run_policy(DeadlineScheduler())
        lax = self.run_policy(LaxityScheduler())
        assert lax.spread < edf.spread

    def test_laxity_success_rate_at_least_edf(self):
        edf = self.run_policy(DeadlineScheduler())
        lax = self.run_policy(LaxityScheduler())
        assert lax.success_rate >= edf.success_rate

    def test_edf_earliest_exit_before_laxity(self):
        """Paper: 'the execution time of the earliest exit thread is
        greater than that of the left figure' — EDF lets short tasks out
        early; laxity holds them back."""
        edf = self.run_policy(DeadlineScheduler())
        lax = self.run_policy(LaxityScheduler())
        assert edf.earliest < lax.earliest
