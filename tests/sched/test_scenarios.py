"""The adversarial scenario catalogue and the exp-layer sched run kind."""

import json

import pytest

from repro.chip.results import result_from_dict
from repro.chip.run import execute
from repro.config import AuditConfig
from repro.errors import ConfigError, SchedulerError
from repro.exp import ExperimentSpec, RunRequest, Runner
from repro.sched import (
    SchedRunResult,
    get_scenario,
    list_scenarios,
    run_sched_scenario,
    scenario_summaries,
)
from repro.sched.scenarios import register_scenario
from repro.sim.rng import RngTree
from repro.workloads.base import get_profile


class TestCatalogue:
    def test_five_scenarios_registered(self):
        names = list_scenarios()
        for expected in ("uniform", "skewed", "deadline-storm",
                         "subring-drain", "mact-hostile"):
            assert expected in names

    def test_unknown_scenario(self):
        with pytest.raises(SchedulerError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            register_scenario("uniform", "again")(lambda *a: None)

    def test_summaries(self):
        cards = scenario_summaries()
        assert [c["name"] for c in cards] == list_scenarios()
        assert all(c["summary"] for c in cards)

    @pytest.mark.parametrize("name", list_scenarios())
    def test_scripts_are_deterministic(self, name):
        profile = get_profile("kmp")
        build = get_scenario(name).build

        def fingerprint(seed):
            script = build(RngTree(seed), profile, 20, 8)
            return [(at, t.work_cycles, t.deadline, t.priority.value)
                    for at, t in script.arrivals], list(script.drains)

        assert fingerprint(11) == fingerprint(11)
        assert fingerprint(11) != fingerprint(12)

    @pytest.mark.parametrize("name", list_scenarios())
    def test_criticality_stamped(self, name):
        script = get_scenario(name).build(RngTree(0), get_profile("kmp"),
                                          10, 4)
        for _, task in script.arrivals:
            assert task.payload["criticality"] > 0

    def test_storm_has_timed_arrivals(self):
        script = get_scenario("deadline-storm").build(
            RngTree(0), get_profile("kmp"), 16, 4)
        times = sorted({at for at, _ in script.arrivals})
        assert len(times) > 4            # several distinct burst instants
        assert times[0] < times[-1]

    def test_drain_event_present_and_clamped(self):
        script = get_scenario("subring-drain").build(
            RngTree(0), get_profile("kmp"), 12, 6)
        assert script.drains == ((script.drains[0][0], 3),)
        # the harness never drains the last context even if asked to
        result = run_sched_scenario("fifo", "subring-drain", seed=0,
                                    tasks=6, contexts=1)
        assert result.contexts_drained == 0
        assert result.tasks_finished == 6


class TestSchedRunResult:
    def test_roundtrip_through_result_protocol(self):
        result = run_sched_scenario("laxity", "uniform", seed=2, tasks=12,
                                    contexts=4)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["type"] == "SchedRunResult"
        assert "miss_rate" in data and "exit_spread" in data
        rebuilt = result_from_dict(data)
        assert isinstance(rebuilt, SchedRunResult)
        assert rebuilt == result

    def test_computed_fields(self):
        result = run_sched_scenario("fifo", "uniform", seed=0, tasks=10,
                                    contexts=3)
        assert result.miss_rate == pytest.approx(
            1.0 - result.deadline_success_rate)
        assert result.exit_spread == pytest.approx(
            result.latest_exit - result.earliest_exit)

    def test_bad_inputs(self):
        with pytest.raises(SchedulerError):
            run_sched_scenario("laxity", "uniform", tasks=0)
        with pytest.raises(SchedulerError):
            run_sched_scenario("laxity", "uniform", tasks=4, contexts=0)


class TestExpIntegration:
    def test_request_validation(self):
        RunRequest(kind="sched").validate()
        with pytest.raises(ConfigError, match="unknown scheduling policy"):
            RunRequest(kind="sched", sched_policy="nope").validate()
        with pytest.raises(ConfigError, match="unknown scenario"):
            RunRequest(kind="sched", sched_scenario="nope").validate()
        with pytest.raises(ConfigError, match=">=1 task"):
            RunRequest(kind="sched", sched_tasks=0).validate()

    def test_execute_sched_audited(self):
        request = RunRequest(kind="sched", sched_policy="criticality",
                             sched_scenario="mact-hostile", sched_tasks=16,
                             sched_contexts=6, seed=4)
        outcome = execute(request, audit=AuditConfig(enabled=True,
                                                     fail_fast=True))
        assert isinstance(outcome.result, SchedRunResult)
        assert outcome.result.policy == "criticality"
        assert outcome.result.scenario == "mact-hostile"
        assert outcome.audit is not None and outcome.audit["clean"]
        # the policy's live counters land in the stats dump
        assert outcome.stats["criticality.submitted"] == 16
        assert outcome.stats["criticality.dispatched"] == 16
        # audited == unaudited, bit for bit
        plain = execute(request, audit=AuditConfig(enabled=False))
        assert plain.result == outcome.result

    def test_sched_policy_is_a_sweep_axis(self, tmp_path):
        base = RunRequest(kind="sched", sched_tasks=10, sched_contexts=4)
        spec = ExperimentSpec.grid(
            "zoo-mini", base,
            sched_policy=["laxity", "fifo"],
            sched_scenario=["uniform", "skewed"])
        runner = Runner(workers=1, base_dir=tmp_path)
        sweep = runner.run(spec)
        assert sweep.n_points == 4
        seen = {(o.result.policy, o.result.scenario)
                for o in sweep.outcomes}
        assert seen == {("laxity", "uniform"), ("laxity", "skewed"),
                        ("fifo", "uniform"), ("fifo", "skewed")}
        # the cache key includes the new axes: a second pass is all hits
        again = Runner(workers=1, base_dir=tmp_path).run(spec)
        assert again.hits == 4
        assert [o.to_dict() for o in again.outcomes] == \
               [o.to_dict() for o in sweep.outcomes]

    def test_policy_axis_changes_cache_key(self, tmp_path):
        a = RunRequest(kind="sched", sched_policy="laxity")
        b = a.replace(sched_policy="fifo")
        from repro.exp.cache import request_key
        assert request_key(a) != request_key(b)


class TestWinners:
    def test_matrix_and_rendering(self):
        from repro.analysis import render_winners, winners_matrix

        results = []
        for policy, scenario, succ, mk in [
            ("laxity", "uniform", 1.0, 100.0),
            ("fifo", "uniform", 0.8, 90.0),
            ("laxity", "storm", 0.9, 100.0),
            ("fifo", "storm", 0.9, 80.0),     # tie on success -> faster wins
        ]:
            results.append({"type": "SchedRunResult", "policy": policy,
                            "scenario": scenario,
                            "deadline_success_rate": succ, "makespan": mk,
                            "p99_response": 1.0})
        matrix = winners_matrix(results)
        assert matrix.winners == {"uniform": "laxity", "storm": "fifo"}
        assert matrix.overall in ("laxity", "fifo")
        text = render_winners(results)
        assert "1.000*" in text and "winners:" in text

    def test_records_filter(self):
        from repro.analysis import sched_results_from_records

        class FakeRecord:
            def __init__(self, result):
                self.result = result

        records = [
            FakeRecord({"type": "SchedRunResult", "policy": "laxity",
                        "scenario": "uniform",
                        "deadline_success_rate": 1.0, "makespan": 1.0}),
            FakeRecord({"type": "SmarcoRunResult"}),
        ]
        assert len(sched_results_from_records(records)) == 1

    def test_empty(self):
        from repro.analysis import render_winners

        assert "No sched sweep runs" in render_winners([])
