"""Instruction-stream adapter tests."""

from repro.core import CoreInstr, from_machine, repeat_stream
from repro.isa import Machine, assemble


def test_from_machine_yields_pipeline_records():
    machine = Machine(assemble("addi r1, r0, 40\nlw r2, 0(r1)\nsw r2, 8(r1)\nhalt"))
    records = list(from_machine(machine))
    kinds = [r.kind for r in records]
    assert kinds == ["alu", "load", "store", "alu"]
    assert records[1].addr == 40 and records[1].size == 4
    assert records[2].addr == 48
    assert all(r.pc is not None for r in records)


def test_branch_and_jump_map_to_branch_kind():
    machine = Machine(assemble("beq r0, r0, 2\nnop\njal r0, 3\nhalt"))
    records = list(from_machine(machine))
    assert records[0].kind == "branch" and records[0].taken
    assert records[1].kind == "branch"         # the jal


def test_mul_kind():
    machine = Machine(assemble("mul r1, r2, r3\nhalt"))
    assert list(from_machine(machine))[0].kind == "mul"


def test_is_mem_property():
    assert CoreInstr("load", addr=0, size=4).is_mem
    assert CoreInstr("store", addr=0, size=4).is_mem
    assert not CoreInstr("alu").is_mem


def test_repeat_stream():
    instrs = [CoreInstr("alu"), CoreInstr("load", addr=0, size=4)]
    out = list(repeat_stream(instrs, 3))
    assert len(out) == 6
    assert out[0] == out[2] == out[4]


def test_repeat_stream_accepts_generator():
    gen = (CoreInstr("alu") for _ in range(2))
    assert len(list(repeat_stream(gen, 2))) == 4
