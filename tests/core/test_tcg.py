"""TCG core tests: in-pair threading, LSQ routing, IPC behaviour."""

import pytest

from repro.config import TCGConfig
from repro.core import CoreInstr, FixedLatencyPort, TCGCore, ThreadState
from repro.core.tcg import UNCACHED_BASE
from repro.errors import ConfigError, SimulationError
from repro.mem import SPM_REGION_BASE
from repro.sim import Simulator


def alu_stream(n):
    return iter([CoreInstr("alu")] * n)


def uncached_load_stream(n, base=UNCACHED_BASE, stride=4):
    """n loads to the uncached region: every one blocks on memory."""
    return iter([CoreInstr("load", addr=base + i * stride, size=4)
                 for i in range(n)])


def mixed_stream(n, mem_every=3, base=UNCACHED_BASE):
    out = []
    for i in range(n):
        if i % mem_every == 0:
            out.append(CoreInstr("load", addr=base + i * 4, size=4))
        else:
            out.append(CoreInstr("alu"))
    return iter(out)


def make_core(sim=None, latency=50, **kwargs):
    sim = sim if sim is not None else Simulator()
    port = FixedLatencyPort(sim, latency)
    core = TCGCore(sim, 0, port, **kwargs)
    return sim, port, core


class TestBasics:
    def test_pure_alu_ipc_is_one_per_thread(self):
        sim, _, core = make_core()
        core.add_thread(alu_stream(100))
        core.start()
        sim.run()
        assert core.done
        assert core.ipc == pytest.approx(1.0, rel=0.05)

    def test_four_alu_threads_reach_issue_width(self):
        sim, _, core = make_core()
        for _ in range(4):
            core.add_thread(alu_stream(100))
        core.start()
        sim.run()
        assert core.ipc == pytest.approx(4.0, rel=0.1)

    def test_mul_latency_lowers_ipc(self):
        sim, _, core = make_core()
        core.add_thread(iter([CoreInstr("mul")] * 50))
        core.start()
        sim.run()
        assert core.ipc == pytest.approx(1 / core.mul_latency, rel=0.1)

    def test_taken_branch_penalty(self):
        sim, _, core = make_core()
        core.add_thread(iter([CoreInstr("branch", taken=True)] * 50))
        core.start()
        sim.run()
        assert core.ipc == pytest.approx(1 / (1 + core.branch_penalty), rel=0.1)

    def test_instruction_count(self):
        sim, _, core = make_core()
        core.add_thread(alu_stream(42))
        core.start()
        sim.run()
        assert core.instructions == 42

    def test_too_many_threads_rejected(self):
        _, _, core = make_core()
        for _ in range(8):
            core.add_thread(alu_stream(1))
        with pytest.raises(ConfigError):
            core.add_thread(alu_stream(1))

    def test_start_without_threads_rejected(self):
        _, _, core = make_core()
        with pytest.raises(ConfigError):
            core.start()

    def test_add_after_start_rejected(self):
        sim, _, core = make_core()
        core.add_thread(alu_stream(1))
        core.start()
        with pytest.raises(SimulationError):
            core.add_thread(alu_stream(1))

    def test_unknown_policy(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            TCGCore(sim, 0, FixedLatencyPort(sim), policy="magic")


class TestLsqRouting:
    def test_spm_access_is_fast_and_never_misses(self):
        sim, port, core = make_core(latency=1000)
        addrs = [SPM_REGION_BASE + i * 4 for i in range(50)]
        core.add_thread(iter([CoreInstr("load", addr=a, size=4) for a in addrs]))
        core.start()
        sim.run()
        assert core.spm_hits.value == 50
        assert port.issued == 0
        # SPM loads are fully pipelined at spm_hit_latency cycles each
        assert core.ipc == pytest.approx(1 / core.config.spm_hit_latency, rel=0.2)

    def test_uncached_load_blocks_on_memory(self):
        sim, port, core = make_core(latency=100)
        core.add_thread(uncached_load_stream(5))
        core.start()
        sim.run()
        assert port.issued == 5
        assert sim.now >= 5 * 100

    def test_uncached_store_does_not_block(self):
        sim, port, core = make_core(latency=1000)
        stores = [CoreInstr("store", addr=UNCACHED_BASE + i * 4, size=4)
                  for i in range(20)]
        core.add_thread(iter(stores))
        core.start()
        sim.run(until=100)
        assert core.done                      # finished long before 1000
        assert port.issued == 20              # posted writes still sent

    def test_cached_load_hits_after_fill(self):
        sim, port, core = make_core(latency=100)
        # two loads to the same line: first misses (blocks), second hits
        instrs = [CoreInstr("load", addr=0x1000, size=4),
                  CoreInstr("load", addr=0x1004, size=4)]
        core.add_thread(iter(instrs))
        core.start()
        sim.run()
        assert core.dcache.hits.value == 1
        assert core.dcache.misses.value == 1
        assert port.issued == 1

    def test_dcache_fill_requests_are_line_sized(self):
        sim = Simulator()
        seen = []
        port = FixedLatencyPort(sim, 10)
        original = port.issue

        def spy(request):
            seen.append(request)
            return original(request)

        port.issue = spy
        core = TCGCore(sim, 0, port)
        core.add_thread(iter([CoreInstr("load", addr=0x1234, size=4)]))
        core.start()
        sim.run()
        assert seen[0].size == 64
        assert seen[0].addr == 0x1200          # line aligned

    def test_dirty_eviction_emits_writeback(self):
        sim = Simulator()
        seen = []
        port = FixedLatencyPort(sim, 1)
        original = port.issue
        port.issue = lambda r: (seen.append(r), original(r))[1]
        cfg = TCGConfig(dcache_bytes=256, cache_ways=1)     # 4 sets x 64B
        core = TCGCore(sim, 0, port, config=cfg)
        stride = 256
        instrs = [CoreInstr("store", addr=0x0, size=4),
                  CoreInstr("store", addr=stride, size=4)]  # evicts dirty 0x0
        core.add_thread(iter(instrs))
        core.start()
        sim.run()
        writebacks = [r for r in seen if r.is_write and r.addr == 0]
        assert len(writebacks) == 1


class TestInPairThreads:
    def test_pair_hides_memory_latency(self):
        """Headline §3.1.1 effect: two paired memory-heavy threads finish
        much faster than twice one thread's time."""
        def run(n_threads):
            sim, _, core = make_core(latency=200)
            for t in range(n_threads):
                core.add_thread(uncached_load_stream(20, base=UNCACHED_BASE + t * 4096))
            core.start()
            sim.run()
            return sim.now

        t1 = run(1)
        t2 = run(2)
        assert t2 < t1 * 1.25       # near-complete overlap, not 2x

    def test_friend_runs_while_thread_waits(self):
        sim, _, core = make_core(latency=500)
        a = core.add_thread(iter([CoreInstr("load", addr=UNCACHED_BASE, size=4)]))
        b = core.add_thread(alu_stream(50))
        core.start()
        sim.run(until=300)
        # a blocked at ~1; b should have finished its ALU work meanwhile
        assert b.state is ThreadState.DONE
        assert a.state is ThreadState.WAITING
        sim.run()
        assert a.state is ThreadState.DONE

    def test_switch_counted(self):
        sim, _, core = make_core(latency=100)
        for t in range(5):          # thread 4 becomes thread 0's friend
            core.add_thread(mixed_stream(30, base=UNCACHED_BASE + (t << 20)))
        core.start()
        sim.run()
        assert core.switch_count.value > 0

    def test_pairs_are_isolated(self):
        """First 4 threads get distinct slots; threads 5-8 are their
        friends (thread 0 pairs with thread 4, etc.)."""
        sim, _, core = make_core()
        threads = [core.add_thread(alu_stream(1)) for _ in range(8)]
        assert [t.pair_id for t in threads] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_ipc_scales_with_thread_count(self):
        """Fig 17 core property: IPC(1) < IPC(2) <= IPC(4) < issue width."""
        def ipc_for(n):
            sim, _, core = make_core(latency=150)
            for t in range(n):
                core.add_thread(mixed_stream(200, mem_every=4,
                                             base=UNCACHED_BASE + t * (1 << 20)))
            core.start()
            sim.run()
            return core.ipc

        ipc1, ipc2, ipc4, ipc8 = ipc_for(1), ipc_for(2), ipc_for(4), ipc_for(8)
        assert ipc1 < ipc2 < ipc4
        assert ipc8 > ipc4                  # pairing kicks in past 4
        assert ipc8 <= 4.0


class TestPolicies:
    def test_blocking_policy_stalls_on_miss(self):
        sim_b, _, core_b = make_core(latency=200, policy="blocking")
        core_b.add_thread(uncached_load_stream(10))
        core_b.start()
        sim_b.run()
        t_blocking = sim_b.now

        sim_p, _, core_p = make_core(latency=200, policy="inpair")
        core_p.add_thread(uncached_load_stream(10))
        core_p.add_thread(uncached_load_stream(10, base=UNCACHED_BASE + 4096))
        core_p.start()
        sim_p.run()
        t_pair = sim_p.now
        # pair does 2x the work in barely more time
        assert t_pair < t_blocking * 1.3

    def test_blocking_rejects_more_threads_than_slots(self):
        _, _, core = make_core(policy="blocking")
        for _ in range(4):
            core.add_thread(alu_stream(1))
        with pytest.raises(ConfigError):
            core.add_thread(alu_stream(1))

    def test_coarse_policy_completes_all_threads(self):
        sim, _, core = make_core(latency=100, policy="coarse")
        for t in range(6):
            core.add_thread(mixed_stream(50, base=UNCACHED_BASE + t * (1 << 20)))
        core.start()
        sim.run()
        assert core.done
        assert core.instructions == 300

    def test_coarse_vs_inpair_similar_throughput(self):
        """Paper's argument: for same-behaviour threads, simple pairing
        performs like a full coarse-grained scheduler (within ~25%)."""
        def run(policy):
            sim, _, core = make_core(latency=150, policy=policy)
            for t in range(8):
                core.add_thread(mixed_stream(100, mem_every=3,
                                             base=UNCACHED_BASE + t * (1 << 20)))
            core.start()
            sim.run()
            return core.ipc

        ipc_pair, ipc_coarse = run("inpair"), run("coarse")
        assert ipc_pair > ipc_coarse * 0.75


class TestIcacheAndSharedSegment:
    def loop_stream(self, n, footprint_pcs=4096):
        return iter([CoreInstr("alu", pc=i % footprint_pcs) for i in range(n)])

    def test_icache_misses_slow_large_code(self):
        sim_small, _, core_small = make_core()
        core_small.add_thread(self.loop_stream(2000, footprint_pcs=64))
        core_small.start()
        sim_small.run()

        sim_big, _, core_big = make_core()
        # 64K instruction footprint >> 16KB icache
        core_big.add_thread(self.loop_stream(2000, footprint_pcs=65536))
        core_big.start()
        sim_big.run()
        assert sim_big.now > sim_small.now

    def test_shared_segment_suppresses_icache_misses(self):
        sim, _, core = make_core()
        core.set_shared_segment(0, 1 << 20)
        core.add_thread(self.loop_stream(2000, footprint_pcs=65536))
        core.start()
        sim.run()
        assert core.icache.accesses == 0
        assert core.ipc == pytest.approx(1.0, rel=0.05)
