"""HardwareThread pair state-machine tests, with and without the audit
observer (satellite of the invariant-audit PR)."""

import pytest

from repro.config import AuditConfig
from repro.core import CoreInstr, FixedLatencyPort, TCGCore, ThreadState
from repro.core.thread import HardwareThread
from repro.core.tcg import UNCACHED_BASE
from repro.errors import AuditError
from repro.sim import Auditor, Simulator


def alu_stream(n):
    return iter([CoreInstr("alu")] * n)


def uncached_load_stream(n, base=UNCACHED_BASE, stride=4):
    return iter([CoreInstr("load", addr=base + i * stride, size=4)
                 for i in range(n)])


def make_thread(n_instrs=4):
    return HardwareThread(0, pair_id=0, stream=alu_stream(n_instrs))


def make_audited_core(policy="inpair", latency=50, fail_fast=True):
    sim = Simulator()
    port = FixedLatencyPort(sim, latency)
    core = TCGCore(sim, 0, port, policy=policy)
    auditor = Auditor(AuditConfig(enabled=True, fail_fast=fail_fast))
    auditor.install(core)
    return sim, core, auditor


class TestBareStateMachine:
    """The raw thread FSM: legal transition sequences."""

    def test_lifecycle_running_waiting_done(self):
        t = make_thread()
        assert t.state is ThreadState.WAITING and t.data_ready
        t.state = ThreadState.RUNNING   # scheduler claims it
        t.block()
        assert t.state is ThreadState.WAITING and not t.data_ready
        assert not t.runnable
        t.unblock()
        assert t.data_ready and t.runnable
        t.state = ThreadState.RUNNING
        t.finish(42.0)
        assert t.state is ThreadState.DONE and t.finish_time == 42.0
        assert not t.runnable

    def test_block_counts_misses(self):
        t = make_thread()
        t.state = ThreadState.RUNNING
        t.block()
        t.unblock()
        t.state = ThreadState.RUNNING
        t.block()
        assert t.misses == 2

    def test_observer_defaults_to_none(self):
        assert make_thread().observer is None


class TestObservedTransitions:
    """The FSM observer flags every illegal transition."""

    def _observed_thread(self):
        sim = Simulator()
        core = TCGCore(sim, 0, FixedLatencyPort(sim, 10))
        auditor = Auditor(AuditConfig(enabled=True, fail_fast=True))
        auditor.install(core)
        t = core.add_thread(alu_stream(4))
        assert t.observer is not None
        return t, auditor

    def test_block_while_waiting_raises(self):
        t, _ = self._observed_thread()
        with pytest.raises(AuditError, match="block"):
            t.block()               # never entered RUNNING

    def test_unblock_without_miss_raises(self):
        t, _ = self._observed_thread()
        with pytest.raises(AuditError, match="unblock"):
            t.unblock()             # data_ready already True

    def test_finish_while_waiting_raises(self):
        t, _ = self._observed_thread()
        with pytest.raises(AuditError, match="finish"):
            t.finish(1.0)

    def test_fetch_after_done_raises(self):
        t, _ = self._observed_thread()
        t.state = ThreadState.RUNNING
        t.finish(1.0)
        with pytest.raises(AuditError, match="after DONE"):
            t.next_instr()

    def test_legal_sequence_passes_and_counts(self):
        t, auditor = self._observed_thread()
        t.state = ThreadState.RUNNING
        t.block()
        t.unblock()
        t.state = ThreadState.RUNNING
        t.finish(2.0)
        assert auditor.checks["thread_fsm"] == 3

    def test_threads_added_before_install_get_the_observer(self):
        sim = Simulator()
        core = TCGCore(sim, 0, FixedLatencyPort(sim, 10))
        early = core.add_thread(alu_stream(4))
        assert early.observer is None
        auditor = Auditor(AuditConfig(enabled=True))
        auditor.install(core)
        assert early.observer is not None


class TestAuditedScheduling:
    """Whole-core runs under each policy stay violation-free."""

    @pytest.mark.parametrize("policy,n_threads", [
        ("inpair", 8), ("blocking", 4), ("coarse", 8),
    ])
    def test_memory_heavy_run_is_clean(self, policy, n_threads):
        sim, core, auditor = make_audited_core(policy=policy, fail_fast=False)
        for i in range(n_threads):
            core.add_thread(uncached_load_stream(20, stride=64 * (i + 1)))
        core.start()
        sim.run()
        auditor.end_of_run(sim.now)
        assert auditor.clean, [str(v) for v in auditor.violations]
        assert auditor.checks["thread_fsm"] > 0
        assert core.done

    def test_inpair_resume_requires_friend_miss(self):
        """The paper's takeover rule holds across a full in-pair run where
        both threads of the pair alternate misses."""
        sim, core, auditor = make_audited_core(policy="inpair")
        core.add_thread(uncached_load_stream(15))
        core.add_thread(uncached_load_stream(15, base=UNCACHED_BASE + 0x10000))
        core.start()
        sim.run()          # fail_fast: any illegal resume raises AuditError
        assert core.done
        assert auditor.checks["thread_fsm"] > 0

    def test_fsm_checker_can_be_disabled(self):
        sim = Simulator()
        core = TCGCore(sim, 0, FixedLatencyPort(sim, 10))
        auditor = Auditor(AuditConfig(enabled=True, thread_fsm=False))
        auditor.install(core)
        t = core.add_thread(alu_stream(4))
        assert t.observer is None
