"""In-pair handoff observability: the trace buffer records the paper's
block -> switch-to-friend -> wake -> switch-back sequence."""

from repro.core import CoreInstr, FixedLatencyPort, TCGCore
from repro.core.tcg import UNCACHED_BASE
from repro.sim import Simulator, TraceBuffer


def blocking_loads(n, base):
    return iter([CoreInstr("load", addr=base + i * 4, size=4)
                 for i in range(n)])


def run_traced(n_threads=5):
    sim = Simulator()
    trace = TraceBuffer(enabled=True)
    core = TCGCore(sim, 0, FixedLatencyPort(sim, 80.0), trace=trace)
    for t in range(n_threads):
        core.add_thread(blocking_loads(6, UNCACHED_BASE + (t << 22)),
                        name=f"t{t}")
    core.start()
    sim.run()
    return trace


def test_trace_records_blocks_switches_and_wakes():
    trace = run_traced()
    events = {rec.event for rec in trace}
    assert {"block", "switch", "wake"} <= events


def test_every_block_has_a_wake():
    trace = run_traced()
    blocks = trace.records(event="block")
    wakes = trace.records(event="wake")
    assert len(blocks) == len(wakes) == 5 * 6       # one per load


def test_handoff_sequence_for_a_pair():
    """Thread t0 blocks; its friend t4 is switched in before t0's data
    returns (the §3.1.1 interleave)."""
    trace = run_traced(n_threads=5)    # t0 pairs with t4
    t0_first_block = next(r for r in trace.records(event="block")
                          if r.payload == "t0")
    t4_switch = next((r for r in trace.records(event="switch")
                      if r.payload == "t4"), None)
    t0_wake = next(r for r in trace.records(event="wake")
                   if r.payload == "t0")
    assert t4_switch is not None
    assert t0_first_block.time <= t4_switch.time <= t0_wake.time


def test_no_trace_by_default():
    sim = Simulator()
    core = TCGCore(sim, 0, FixedLatencyPort(sim, 10.0))
    core.add_thread(blocking_loads(3, UNCACHED_BASE))
    core.start()
    sim.run()
    assert core.trace is None           # zero overhead path
