"""Unit tests for the OoO/SMT baseline core model."""

import pytest

from repro.config import XeonConfig
from repro.core import OooCoreModel, SoftwareThread
from repro.errors import ConfigError
from repro.mem.hierarchy import CacheHierarchy
from repro.sim import RngTree, Simulator
from repro.workloads import get_profile


def make_core(quantum=4000, config=None):
    sim = Simulator()
    cfg = config if config is not None else XeonConfig()
    hierarchy = CacheHierarchy(0, cfg)
    core = OooCoreModel(sim, 0, hierarchy, cfg, quantum_instrs=quantum)
    return sim, core


def make_thread(thread_id=0, instrs=20_000, workload="kmp", seed=0):
    profile = get_profile(workload)
    rng = RngTree(seed).stream(f"t{thread_id}")
    return SoftwareThread(
        thread_id=thread_id,
        instr_budget=instrs,
        mem_ratio=profile.mem_ratio,
        branch_ratio=profile.branch_ratio,
        branch_miss_rate=profile.branch_miss_rate,
        ilp=profile.ilp,
        mlp=profile.mlp,
        data_sampler=profile.xeon_data_sampler(thread_id, rng),
        code_sampler=profile.xeon_code_sampler(rng, thread_id=thread_id),
    )


class TestSoftwareThread:
    def test_budget_validation(self):
        with pytest.raises(ConfigError):
            make_thread(instrs=0)

    def test_progress_tracking(self):
        thread = make_thread(instrs=100)
        assert not thread.done and thread.remaining == 100
        thread.executed = 100
        assert thread.done and thread.remaining == 0


class TestExecution:
    def test_thread_runs_to_completion(self):
        sim, core = make_core()
        thread = make_thread(instrs=12_000)
        core.enqueue(thread)
        core.start()
        core.close()
        sim.run()
        assert thread.done
        assert thread.finish_time is not None
        assert core.instructions.value == 12_000

    def test_two_threads_share_smt_contexts(self):
        sim, core = make_core()
        threads = [make_thread(i, instrs=8_000) for i in range(2)]
        for t in threads:
            core.enqueue(t)
        core.start()
        core.close()
        sim.run()
        assert all(t.done for t in threads)
        # SMT overlap: both finish before 2x one thread's serial time
        serial_sim, serial_core = make_core()
        solo = make_thread(9, instrs=8_000)
        serial_sim, serial_core = make_core()
        serial_core.enqueue(solo)
        serial_core.start()
        serial_core.close()
        serial_sim.run()
        assert max(t.finish_time for t in threads) < 2 * solo.finish_time

    def test_oversubscription_pays_context_switches(self):
        sim, core = make_core(quantum=2000)
        threads = [make_thread(i, instrs=6_000) for i in range(6)]
        for t in threads:
            core.enqueue(t)
        core.start()
        core.close()
        sim.run()
        assert core.switch_cycles.total > 0

    def test_close_lets_contexts_exit(self):
        sim, core = make_core()
        core.start()
        core.close()
        sim.run()
        assert sim.pending() == 0        # contexts exited cleanly


class TestMetrics:
    def run_core(self, n_threads=2, workload="kmp"):
        sim, core = make_core()
        for i in range(n_threads):
            core.enqueue(make_thread(i, instrs=16_000, workload=workload))
        core.start()
        core.close()
        sim.run()
        return core

    def test_cycle_breakdown_nonnegative(self):
        core = self.run_core()
        breakdown = core.cycle_breakdown()
        assert set(breakdown) == {"busy", "mem_stall", "frontend_stall",
                                  "switch"}
        assert all(v >= 0 for v in breakdown.values())
        assert breakdown["busy"] > 0

    def test_idle_ratio_bounds(self):
        core = self.run_core()
        assert 0 <= core.idle_ratio() < 1

    def test_starvation_excludes_backend_stalls(self):
        core = self.run_core()
        b = core.cycle_breakdown()
        expected = b["frontend_stall"] / (b["busy"] + b["frontend_stall"])
        assert core.starvation_ratio() == pytest.approx(expected)

    def test_memory_heavy_workload_stalls_more(self):
        heavy = self.run_core(workload="kmp")       # mem_ratio 0.45
        light = self.run_core(workload="search")    # mem_ratio 0.15
        heavy_share = (heavy.mem_stall_cycles.total
                       / sum(heavy.cycle_breakdown().values()))
        light_share = (light.mem_stall_cycles.total
                       / sum(light.cycle_breakdown().values()))
        assert heavy_share > light_share
