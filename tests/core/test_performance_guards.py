"""Performance-regression guards on the simulation hot paths.

The TCG execution loop batches non-interacting instructions into one
yield — exact under in-pair semantics and the reason full-chip runs are
tractable.  These tests fail loudly if someone reintroduces a per-
instruction event.
"""

from repro.core import CoreInstr, FixedLatencyPort, TCGCore
from repro.core.tcg import UNCACHED_BASE
from repro.mem.spm import SPM_REGION_BASE
from repro.sim import Simulator


def run_core(instrs, n_threads=1):
    sim = Simulator()
    core = TCGCore(sim, 0, FixedLatencyPort(sim, 50.0))
    for _ in range(n_threads):
        core.add_thread(iter(list(instrs)))
    core.start()
    sim.run()
    return sim, core


def test_alu_streams_cost_constant_events():
    """A pure-ALU thread consumes O(1) events, not O(instructions)."""
    n = 5000
    sim, core = run_core([CoreInstr("alu")] * n)
    assert core.instructions == n
    assert sim.events_executed < 20


def test_spm_hits_do_not_create_events():
    n = 2000
    instrs = [CoreInstr("load", addr=SPM_REGION_BASE + (i % 512) * 8, size=8)
              for i in range(n)]
    sim, core = run_core(instrs)
    assert core.instructions == n
    assert sim.events_executed < 20


def test_events_scale_with_memory_interactions_only():
    """Events track blocking/posted requests, not instruction count."""
    n = 3000
    mixed = []
    blocking = 0
    for i in range(n):
        if i % 100 == 0:
            mixed.append(CoreInstr("load", addr=UNCACHED_BASE + i * 4, size=4))
            blocking += 1
        else:
            mixed.append(CoreInstr("alu"))
    sim, core = run_core(mixed)
    assert core.instructions == n
    # a handful of events per memory interaction, far below one per instr
    assert sim.events_executed < blocking * 10
    assert sim.events_executed < n / 5


def test_full_chip_event_budget():
    """The chip memory path stays within a bounded event budget per
    memory request (NoC legs + MACT + DRAM + wakeups)."""
    from repro.chip import SmarCoChip
    from repro.config import smarco_scaled
    from repro.workloads import get_profile

    chip = SmarCoChip(smarco_scaled(1, 4), seed=1)
    chip.load_profile(get_profile("kmp"), threads_per_core=4,
                      instrs_per_thread=200)
    result = chip.run()
    requests = max(1, result.mem_requests)
    events_per_request = chip.sim.events_executed / requests
    assert events_per_request < 60
