"""Staged MapReduce-on-chip tests (paper Fig 15 executed end to end)."""

import pytest

from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.errors import ConfigError, WorkloadError
from repro.mapreduce import MapReduceJob, StagedMapReduce, slice_text
from repro.workloads import get_profile, wordcount
from repro.workloads.datasets import synthetic_text


def make_runner(sub_rings=2, cores=4, seed=0):
    chip = SmarCoChip(smarco_scaled(sub_rings, cores), seed=seed)
    runner = StagedMapReduce(chip, get_profile("wordcount"), seed=seed)
    return chip, runner


def wc_job():
    return MapReduceJob("wc", wordcount.map_fn, wordcount.reduce_fn)


class TestFunctionalOutput:
    def test_output_matches_reference(self):
        text = synthetic_text(200, seed=1)
        _, runner = make_runner()
        result = runner.run(wc_job(), slice_text(text, 8))
        assert result.output == wordcount.wordcount(text)

    def test_empty_input(self):
        _, runner = make_runner()
        result = runner.run(wc_job(), [])
        assert result.output == {} and result.total_cycles == 0


class TestStageOrdering:
    def test_stage_boundaries_monotone(self):
        text = synthetic_text(150, seed=2)
        _, runner = make_runner()
        result = runner.run(wc_job(), slice_text(text, 6))
        assert 0 < result.staging_done <= result.map_done
        assert result.map_done <= result.shuffle_done <= result.reduce_done

    def test_map_and_reduce_on_disjoint_rings(self):
        chip, runner = make_runner(sub_rings=4)
        assert set(runner.map_rings).isdisjoint(runner.reduce_rings)
        assert runner.map_rings and runner.reduce_rings

    def test_shuffle_moves_bytes(self):
        text = synthetic_text(150, seed=3)
        _, runner = make_runner()
        result = runner.run(wc_job(), slice_text(text, 6))
        assert result.shuffle_bytes > 0
        assert 0 < result.reduce_tasks <= len(result.output)

    def test_staging_charges_dma_time(self):
        """Map cores wait for their DMA: the staging boundary is at least
        one slice's transfer time, and the DMA engines moved the data."""
        chip, runner = make_runner()
        text = synthetic_text(100, seed=4)
        result = runner.run(wc_job(), slice_text(text, 4))
        min_transfer = chip.dmas[0].transfer_cycles(1)
        assert result.staging_done >= min_transfer
        assert sum(d.bytes_moved.value for d in chip.dmas) > 0


class TestValidation:
    def test_needs_two_sub_rings(self):
        chip = SmarCoChip(smarco_scaled(1, 4), seed=0)
        with pytest.raises(ConfigError):
            StagedMapReduce(chip, get_profile("wordcount"))

    def test_too_many_tasks_rejected(self):
        chip, runner = make_runner(sub_rings=2, cores=1)
        # map capacity: 1 core x 8 threads on the single map ring
        slices = [f"w{i}" for i in range(9)]
        with pytest.raises(WorkloadError):
            runner.run(wc_job(), slices)

    def test_chip_reuse_rejected(self):
        chip, runner = make_runner()
        runner.run(wc_job(), ["a b", "c d"])
        runner2 = StagedMapReduce(chip, get_profile("wordcount"))
        with pytest.raises(ConfigError):
            runner2.run(wc_job(), ["x"])


class TestScaling:
    def test_more_data_takes_longer(self):
        def cycles(words):
            _, runner = make_runner(seed=5)
            text = synthetic_text(words, seed=5)
            return runner.run(wc_job(), slice_text(text, 8)).total_cycles

        assert cycles(400) > cycles(50)

    def test_deterministic(self):
        def once():
            _, runner = make_runner(seed=6)
            text = synthetic_text(120, seed=6)
            return runner.run(wc_job(), slice_text(text, 6)).total_cycles

        assert once() == once()
