"""MapReduce framework tests (paper §3.6)."""

import pytest

from repro.config import smarco_scaled
from repro.errors import WorkloadError
from repro.mapreduce import (
    MapReduceJob,
    MapReduceRuntime,
    slice_sequence,
    slice_text,
    slices_for_chip,
)
from repro.workloads import kmeans, wordcount
from repro.workloads.datasets import clustered_points, synthetic_text


class TestSlicing:
    def test_sequence_even_split(self):
        out = slice_sequence(list(range(10)), 3)
        assert [len(c) for c in out] == [4, 3, 3]
        assert sum(out, []) == list(range(10))

    def test_sequence_more_slices_than_items(self):
        out = slice_sequence([1, 2], 5)
        assert out == [[1], [2]]

    def test_sequence_empty(self):
        assert slice_sequence([], 4) == []

    def test_sequence_bad_slices(self):
        with pytest.raises(WorkloadError):
            slice_sequence([1], 0)

    def test_text_preserves_words(self):
        text = synthetic_text(200, seed=0)
        chunks = slice_text(text, 8)
        assert " ".join(chunks).split() == text.split()
        assert all(not c[0].isspace() or True for c in chunks)

    def test_text_word_never_split(self):
        text = "alpha beta gamma delta epsilon zeta"
        for n in (2, 3, 4):
            words = []
            for chunk in slice_text(text, n):
                words.extend(chunk.split())
            assert words == text.split()

    def test_slices_for_chip(self):
        # 2 sub-rings x 4 cores x 4 threads = 32 max
        assert slices_for_chip(1000, 2, 4) == 32
        assert slices_for_chip(5, 2, 4) == 5
        assert slices_for_chip(0, 2, 4) == 1


class TestRuntimeConstruction:
    def test_default_ring_split(self):
        rt = MapReduceRuntime(smarco_scaled(4))
        assert rt.map_sub_rings == [0, 1, 2]
        assert rt.reduce_sub_rings == [3]

    def test_single_subring_shares(self):
        rt = MapReduceRuntime(smarco_scaled(1))
        assert rt.map_sub_rings == [0] and rt.reduce_sub_rings == [0]

    def test_invalid_rings_rejected(self):
        with pytest.raises(WorkloadError):
            MapReduceRuntime(smarco_scaled(2), map_sub_rings=[5])


class TestWordcountJob:
    def make_job(self):
        return MapReduceJob("wordcount", wordcount.map_fn, wordcount.reduce_fn)

    def test_output_matches_reference(self):
        text = synthetic_text(400, seed=3)
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False)
        result = rt.run(self.make_job(), slice_text(text, 16))
        assert result.output == wordcount.wordcount(text)

    def test_placements_cover_both_stages(self):
        text = synthetic_text(100, seed=4)
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False)
        result = rt.run(self.make_job(), slice_text(text, 8))
        stages = {p.stage for p in result.placements}
        assert stages == {"map", "reduce"}

    def test_map_tasks_on_map_rings_only(self):
        text = synthetic_text(100, seed=5)
        rt = MapReduceRuntime(smarco_scaled(4), simulate_timing=False)
        result = rt.run(self.make_job(), slice_text(text, 12))
        for p in result.placements:
            rings = rt.map_sub_rings if p.stage == "map" else rt.reduce_sub_rings
            assert p.sub_ring in rings

    def test_timing_present_when_enabled(self):
        text = synthetic_text(100, seed=6)
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=True)
        result = rt.run(self.make_job(), slice_text(text, 8))
        assert result.map_timing.cycles > 0
        assert result.reduce_timing.cycles > 0
        assert result.total_cycles == (result.map_timing.cycles
                                       + result.reduce_timing.cycles)

    def test_more_slices_do_not_change_answer(self):
        text = synthetic_text(300, seed=7)
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False)
        job = self.make_job()
        out4 = rt.run(job, slice_text(text, 4)).output
        out32 = rt.run(job, slice_text(text, 32)).output
        assert out4 == out32

    def test_empty_input(self):
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False)
        assert rt.run(self.make_job(), []).output == {}

    def test_shuffle_pairs_counted(self):
        text = "a b c a"
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False)
        result = rt.run(self.make_job(), slice_text(text, 2))
        assert result.shuffle_pairs == 4


class TestKmeansJob:
    def test_one_mapreduce_round_equals_lloyd_step(self):
        points = clustered_points(90, dim=2, clusters=3, seed=8)
        centroids = [[0.0, 0.0], [3.0, 3.0], [-3.0, 4.0]]
        job = MapReduceJob("kmeans", kmeans.map_fn, kmeans.reduce_fn)
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False)
        chunks = [(chunk, centroids)
                  for chunk in slice_sequence(points, 6)]
        result = rt.run(job, chunks)
        # reference step
        labels = [kmeans.assign(p, centroids) for p in points]
        for c, new_centroid in result.output.items():
            members = [points[i] for i, l in enumerate(labels) if l == c]
            ref = [sum(p[d] for p in members) / len(members) for d in range(2)]
            assert new_centroid == pytest.approx(ref)


class TestSpmResidency:
    def test_small_tasks_are_spm_resident(self):
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False,
                              bytes_per_item=64)
        job = MapReduceJob("wc", wordcount.map_fn, wordcount.reduce_fn)
        result = rt.run(job, ["tiny chunk"] * 4)
        assert all(p.spm_resident for p in result.placements
                   if p.stage == "map")

    def test_oversized_tasks_spill(self):
        rt = MapReduceRuntime(smarco_scaled(2), simulate_timing=False,
                              bytes_per_item=1 << 20)      # 1MB per item
        job = MapReduceJob("wc", wordcount.map_fn, wordcount.reduce_fn)
        result = rt.run(job, ["big big big chunk here now"])
        map_places = [p for p in result.placements if p.stage == "map"]
        assert any(not p.spm_resident for p in map_places)

    def test_spill_costs_more_time(self):
        job = MapReduceJob("wc", wordcount.map_fn, wordcount.reduce_fn)
        text_slices = ["word " * 50] * 8
        fast = MapReduceRuntime(smarco_scaled(2), bytes_per_item=8
                                ).run(job, text_slices)
        slow = MapReduceRuntime(smarco_scaled(2), bytes_per_item=1 << 20
                                ).run(job, text_slices)
        assert slow.map_timing.cycles > fast.map_timing.cycles
