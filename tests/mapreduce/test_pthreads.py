"""Tests for the pthread-style programming model (paper §3.6)."""

import pytest

from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.core import CoreInstr
from repro.errors import ConfigError, SchedulerError
from repro.mapreduce import ThreadApi
from repro.sim import RngTree
from repro.workloads import get_profile


def make_api(sub_rings=2, cores=4):
    chip = SmarCoChip(smarco_scaled(sub_rings, cores), seed=1)
    return chip, ThreadApi(chip)


def alu_body(n=50):
    return iter([CoreInstr("alu")] * n)


class TestCreate:
    def test_create_returns_handle(self):
        _, api = make_api()
        handle = api.create(alu_body())
        assert handle.thread_id == 0
        assert not handle.finished

    def test_threads_balance_across_cores(self):
        _, api = make_api(sub_rings=2, cores=4)       # 8 cores
        for _ in range(16):
            api.create(alu_body())
        counts = api.placement_counts()
        assert len(counts) == 8                        # every core used
        assert all(v == 2 for v in counts.values())

    def test_threads_balance_across_sub_rings_first(self):
        _, api = make_api(sub_rings=2, cores=4)
        a = api.create(alu_body())
        b = api.create(alu_body())
        # second thread goes to the other sub-ring, not the same one
        assert a.core_id // 4 != b.core_id // 4

    def test_capacity_limit(self):
        chip, api = make_api(sub_rings=1, cores=1)     # 1 core, 8 contexts
        for _ in range(8):
            api.create(alu_body())
        with pytest.raises(SchedulerError):
            api.create(alu_body())

    def test_create_after_start_rejected(self):
        _, api = make_api()
        api.create(alu_body())
        api.start()
        with pytest.raises(ConfigError):
            api.create(alu_body())


class TestJoin:
    def test_join_runs_to_thread_completion(self):
        _, api = make_api()
        handle = api.create(alu_body(100))
        finish = api.join(handle)
        assert handle.finished
        assert finish == handle.finish_time
        assert handle.instructions_retired == 100

    def test_join_all_returns_last_exit(self):
        _, api = make_api()
        short = api.create(alu_body(10))
        long = api.create(alu_body(500))
        last = api.join_all()
        assert short.finished and long.finished
        assert last == max(short.finish_time, long.finish_time)

    def test_join_without_threads_rejected(self):
        _, api = make_api()
        with pytest.raises(ConfigError):
            api.start()

    def test_join_horizon(self):
        _, api = make_api()
        profile = get_profile("kmp")
        handle = api.create(profile.stream(50_000, RngTree(0).stream("x")))
        with pytest.raises(SchedulerError, match="horizon"):
            api.join(handle, max_cycles=50)


class TestWorkloadThreads:
    def test_profile_threads_complete_with_memory_traffic(self):
        chip, api = make_api()
        profile = get_profile("wordcount")
        rng_tree = RngTree(7)
        handles = [api.create(profile.stream(150, rng_tree.stream(f"t{i}"),
                                             thread_id=i))
                   for i in range(8)]
        api.join_all()
        assert all(h.finished for h in handles)
        assert chip.memory.total_requests > 0      # traffic reached DRAM

    def test_deterministic(self):
        def once():
            chip, api = make_api()
            profile = get_profile("rnc")
            rng_tree = RngTree(3)
            for i in range(4):
                api.create(profile.stream(100, rng_tree.stream(f"t{i}"),
                                          thread_id=i))
            return api.join_all()

        assert once() == once()
