"""Transaction lifecycle tests: hop traces, completion rules, sampling."""

import pytest

from repro.errors import MemoryModelError
from repro.mem.request import Hop, HopTrace, MemRequest, TraceSampler


def make_request(**kw):
    defaults = dict(addr=0x100, size=8, is_write=False)
    defaults.update(kw)
    return MemRequest(**defaults)


class TestHopTrace:
    def test_advance_chain_tiles_the_lifetime(self):
        """advance() closes the open hop where the next one opens, so the
        chain partitions the lifetime with no gaps or overlaps."""
        trace = HopTrace()
        trace.advance("issue", "chip.core0", 0.0)
        trace.advance("router", "chip.noc.sub0", 3.0)
        trace.advance("dram", "chip.mem.mc0", 10.0)
        trace.close(50.0)
        recs = trace.records()
        assert recs == [
            ("issue", "chip.core0", 0.0, 3.0),
            ("router", "chip.noc.sub0", 3.0, 10.0),
            ("dram", "chip.mem.mc0", 10.0, 50.0),
        ]
        assert trace.total_cycles() == 50.0

    def test_open_hop_is_the_unclosed_tail(self):
        trace = HopTrace()
        assert trace.open_hop is None
        hop = trace.advance("issue", "c", 1.0)
        assert trace.open_hop is hop
        trace.close(2.0)
        assert trace.open_hop is None

    def test_advance_before_open_hop_entered_raises(self):
        trace = HopTrace()
        trace.advance("issue", "c", 10.0)
        with pytest.raises(MemoryModelError):
            trace.advance("router", "n", 5.0)

    def test_zero_width_hops_allowed(self):
        # same-cycle handoffs are legal (e.g. issue stamped at sim.now)
        trace = HopTrace()
        trace.advance("issue", "c", 4.0)
        trace.advance("collect", "m", 4.0)
        trace.close(4.0)
        assert trace.total_cycles() == 0.0

    def test_close_without_open_hop_is_noop(self):
        trace = HopTrace()
        trace.close(5.0)
        assert len(trace) == 0

    def test_annotate_targets_open_hop_only(self):
        trace = HopTrace()
        trace.advance("collect", "m", 0.0)
        trace.annotate("line_full")
        trace.close(8.0)
        trace.annotate("too late")
        assert trace.hops[0].note == "line_full"

    def test_stamp_appends_closed_out_of_chain_record(self):
        trace = HopTrace()
        trace.advance("issue", "c", 0.0)
        trace.close(10.0)
        trace.stamp("resume", "chip.core0", 10.0, 13.0)
        assert trace.hops[-1] == Hop("resume", "chip.core0", 10.0, 13.0)
        # a stamp never reopens the chain
        assert trace.open_hop is None

    def test_stamp_rejects_negative_duration(self):
        trace = HopTrace()
        with pytest.raises(MemoryModelError):
            trace.stamp("dma_xfer", "d", 5.0, 4.0)

    def test_open_hop_excluded_from_totals(self):
        trace = HopTrace()
        trace.advance("issue", "c", 0.0)
        trace.advance("dram", "m", 7.0)      # still open
        assert trace.total_cycles() == 7.0
        assert trace.stage_totals() == {"issue": 7.0}

    def test_stage_totals_merge_repeated_stages(self):
        trace = HopTrace()
        trace.advance("router", "a", 0.0)
        trace.advance("dram", "m", 2.0)
        trace.advance("router", "b", 5.0)
        trace.close(6.0)
        assert trace.stage_totals() == {"router": 3.0, "dram": 3.0}


class TestMemRequestLifecycle:
    def test_complete_sets_finish_and_fires_callback(self):
        seen = []
        req = make_request(issue_time=2.0,
                           on_complete=lambda r, t: seen.append((r, t)))
        req.complete(42.0)
        assert req.finish_time == 42.0
        assert req.latency == 40.0
        assert seen == [(req, 42.0)]

    def test_double_complete_raises(self):
        """Regression: a second complete() used to be silently swallowed,
        hiding real accounting bugs.  It is now a lifecycle error."""
        req = make_request()
        req.complete(5.0)
        with pytest.raises(MemoryModelError, match="completed twice"):
            req.complete(20.0)
        # the first completion stands untouched
        assert req.finish_time == 5.0

    def test_double_complete_does_not_refire_callback(self):
        calls = []
        req = make_request(on_complete=lambda r, t: calls.append(t))
        req.complete(5.0)
        with pytest.raises(MemoryModelError):
            req.complete(6.0)
        assert calls == [5.0]

    def test_complete_closes_the_trace(self):
        req = make_request(issue_time=0.0)
        trace = req.start_trace()
        trace.advance("issue", "chip.core0", 0.0)
        req.complete(9.0)
        assert trace.open_hop is None
        assert trace.total_cycles() == req.latency == 9.0

    def test_trace_helpers_are_noops_when_untraced(self):
        req = make_request()
        req.trace_advance("dram", "chip.mem.mc0", 3.0)
        req.trace_annotate("nothing")
        assert req.trace is None

    def test_trace_helpers_delegate_when_traced(self):
        req = make_request()
        req.start_trace()
        req.trace_advance("collect", "chip.subring0.mact", 1.0)
        req.trace_annotate("timeout")
        assert req.trace.hops[0].stage == "collect"
        assert req.trace.hops[0].note == "timeout"


class TestTraceSampler:
    def test_rate_bounds_validated(self):
        with pytest.raises(MemoryModelError):
            TraceSampler(-0.1)
        with pytest.raises(MemoryModelError):
            TraceSampler(1.5)

    def test_rate_zero_never_samples(self):
        sampler = TraceSampler(0.0)
        assert not any(sampler.sample() for _ in range(1000))

    def test_rate_one_always_samples(self):
        sampler = TraceSampler(1.0)
        assert all(sampler.sample() for _ in range(1000))

    @pytest.mark.parametrize("rate", [0.1, 0.25, 0.5, 0.75])
    def test_fractional_rate_hits_exact_count(self, rate):
        """The Bresenham accumulator spreads samples evenly: over n
        requests exactly round(n * rate) are chosen, with no RNG."""
        n = 1000
        sampler = TraceSampler(rate)
        picks = sum(sampler.sample() for _ in range(n))
        assert picks == round(n * rate)

    def test_sampling_is_deterministic(self):
        first, second = TraceSampler(0.3), TraceSampler(0.3)
        a = [first.sample() for _ in range(50)]
        b = [second.sample() for _ in range(50)]
        assert a == b
        assert any(a) and not all(a)
